//! The AMR hierarchy: a stack of refined levels with regridding,
//! coarse→fine interpolation and fine→coarse averaging.
//!
//! Mirrors the parts of Chombo's `AMR`/`AMRLevel` machinery that the paper's
//! workflow exercises: dynamic refinement driven by tags, proper nesting,
//! and conservative data transfer between levels.

use crate::balance::{assign_ranks, Balancer};
use crate::boxes::IBox;
use crate::cluster::{cluster_tags, make_disjoint, ClusterParams};
use crate::domain::ProblemDomain;
use crate::intvect::DIM;
use crate::layout::{BoxLayout, Grid};
use crate::level_data::LevelData;
use crate::tagging::IntVectSet;

/// Static configuration of an AMR hierarchy.
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// Maximum number of levels (≥ 1; level 0 is the base grid).
    pub max_levels: usize,
    /// Refinement ratio between consecutive levels.
    pub ref_ratio: i64,
    /// Grid-generation parameters.
    pub cluster: ClusterParams,
    /// Tags are grown by this many cells before clustering.
    pub tag_buffer: i64,
    /// Number of ranks the hierarchy is distributed over.
    pub nranks: usize,
    /// Rank-assignment strategy.
    pub balancer: Balancer,
    /// Components per cell.
    pub ncomp: usize,
    /// Ghost width of every level's data.
    pub nghost: i64,
    /// Max box side at level 0 decomposition.
    pub base_max_box: i64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            max_levels: 3,
            ref_ratio: 2,
            cluster: ClusterParams::default(),
            tag_buffer: 1,
            nranks: 1,
            balancer: Balancer::Knapsack,
            ncomp: 1,
            nghost: 1,
            base_max_box: 16,
        }
    }
}

/// A dynamic stack of refined grid levels carrying cell data.
#[derive(Debug)]
pub struct AmrHierarchy {
    config: HierarchyConfig,
    domains: Vec<ProblemDomain>,
    levels: Vec<LevelData>,
}

impl AmrHierarchy {
    /// Create a hierarchy with only the base level allocated.
    pub fn new(base_domain: ProblemDomain, config: HierarchyConfig) -> Self {
        assert!(config.max_levels >= 1);
        assert!(config.ref_ratio >= 2);
        let mut domains = vec![base_domain];
        for _ in 1..config.max_levels {
            domains.push(domains.last().expect("non-empty").refine(config.ref_ratio));
        }
        let base_boxes: Vec<IBox> = BoxLayout::decompose(&base_domain, config.base_max_box, 1)
            .grids()
            .iter()
            .map(|g| g.bx)
            .collect();
        let ranks = assign_ranks(&base_boxes, config.nranks, config.balancer);
        let layout = BoxLayout::new(
            base_boxes
                .into_iter()
                .zip(ranks)
                .map(|(bx, rank)| Grid { bx, rank })
                .collect(),
            config.nranks,
        );
        let base = LevelData::new(layout, base_domain, config.ncomp, config.nghost);
        AmrHierarchy {
            config,
            domains,
            levels: vec![base],
        }
    }

    /// Rebuild a hierarchy from existing level data (checkpoint restart):
    /// the base domain comes from `levels[0]`, finer domains are refined
    /// successively, and the config's `ncomp`/`nghost`/`max_levels` are
    /// forced consistent with the data.
    pub fn from_levels(mut config: HierarchyConfig, levels: Vec<LevelData>) -> Self {
        assert!(!levels.is_empty(), "need at least the base level");
        config.max_levels = config.max_levels.max(levels.len());
        config.ncomp = levels[0].ncomp();
        config.nghost = levels[0].nghost();
        let base_domain = *levels[0].domain();
        let mut domains = vec![base_domain];
        for _ in 1..config.max_levels {
            domains.push(domains.last().expect("non-empty").refine(config.ref_ratio));
        }
        for (l, ld) in levels.iter().enumerate() {
            assert_eq!(
                ld.domain().domain_box(),
                domains[l].domain_box(),
                "level {l} domain inconsistent with the refinement ratio"
            );
        }
        AmrHierarchy {
            config,
            domains,
            levels,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of currently allocated levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Refinement ratio between level `l` and `l+1`.
    pub fn ref_ratio(&self) -> i64 {
        self.config.ref_ratio
    }

    /// The problem domain of level `l`.
    pub fn domain(&self, l: usize) -> &ProblemDomain {
        &self.domains[l]
    }

    /// The data of level `l`.
    pub fn level(&self, l: usize) -> &LevelData {
        &self.levels[l]
    }

    /// Mutable data of level `l`.
    pub fn level_mut(&mut self, l: usize) -> &mut LevelData {
        &mut self.levels[l]
    }

    /// Total cells over all levels.
    pub fn total_cells(&self) -> u64 {
        self.levels.iter().map(|l| l.layout().total_cells()).sum()
    }

    /// Total payload bytes over all levels.
    pub fn total_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.bytes()).sum()
    }

    /// Payload bytes per rank, summed over levels.
    pub fn bytes_per_rank(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.config.nranks];
        for l in &self.levels {
            for (r, b) in l.bytes_per_rank().into_iter().enumerate() {
                v[r] += b;
            }
        }
        v
    }

    /// Regenerate levels 1..max from per-level tags (tags are in each
    /// *existing* level's own index space; `tags.len()` must equal
    /// `num_levels()`, tags on the finest allowed level are ignored).
    ///
    /// Data on re-gridded levels is interpolated from the coarser level and
    /// overwritten with old fine data where the old and new fine grids
    /// overlap (the standard Berger–Oliger regrid fill).
    pub fn regrid(&mut self, tags: &[IntVectSet]) {
        assert!(
            !tags.is_empty() && tags.len() <= self.levels.len(),
            "need 1..=num_levels tag sets, got {}",
            tags.len()
        );
        let max_new = self.config.max_levels;
        // Build new layouts top-down from level 1.
        let mut new_levels: Vec<Option<BoxLayout>> = vec![None; max_new];
        for l in 0..tags.len().min(max_new - 1) {
            let t = &tags[l];
            if t.is_empty() {
                break; // no finer levels beyond here
            }
            let buffered = t.grow(self.config.tag_buffer, &self.domains[l].domain_box());
            let coarse_boxes = cluster_tags(
                &buffered,
                &self.domains[l].domain_box(),
                &self.config.cluster,
            );
            // Proper nesting: fine grids must live inside the current level's
            // valid region (for l = 0 that's the whole domain).
            let nested = if l == 0 {
                coarse_boxes
            } else {
                // The cluster boxes and the parent level's grids are both in
                // level-l index space already.
                let parent_union: Vec<IBox> = match &new_levels[l] {
                    Some(layout) => layout.grids().iter().map(|g| g.bx).collect(),
                    None => self.levels[l]
                        .layout()
                        .grids()
                        .iter()
                        .map(|g| g.bx)
                        .collect(),
                };
                intersect_with_union(&coarse_boxes, &parent_union)
            };
            if nested.is_empty() {
                break;
            }
            let fine_boxes: Vec<IBox> = nested
                .iter()
                .map(|b| b.refine(self.config.ref_ratio))
                .collect();
            let ranks = assign_ranks(&fine_boxes, self.config.nranks, self.config.balancer);
            let layout = BoxLayout::new(
                fine_boxes
                    .into_iter()
                    .zip(ranks)
                    .map(|(bx, rank)| Grid { bx, rank })
                    .collect(),
                self.config.nranks,
            );
            new_levels[l + 1] = Some(layout);
        }

        // Allocate and fill new level data. Building fresh `LevelData`s is
        // also what invalidates each level's cached `ExchangeCopier`: the
        // cache lives inside the `LevelData` and dies with it. Level 0 is
        // moved, not rebuilt — its layout never changes across a regrid, so
        // its cached exchange schedule stays valid (and `exchange()`
        // revalidates against the layout on every call regardless).
        let mut rebuilt: Vec<LevelData> = Vec::with_capacity(max_new);
        rebuilt.push(std::mem::replace(
            &mut self.levels[0],
            LevelData::new(BoxLayout::default_empty(), self.domains[0], 1, 0),
        ));
        for (l, maybe_layout) in new_levels.into_iter().enumerate().skip(1) {
            let Some(layout) = maybe_layout else { break };
            let mut data = LevelData::new(
                layout,
                self.domains[l],
                self.config.ncomp,
                self.config.nghost,
            );
            // Fill by interpolation from the (already rebuilt) coarser level.
            interpolate_to_fine(&rebuilt[l - 1], &mut data, self.config.ref_ratio);
            // Overwrite with old data where available.
            if l < self.levels.len() {
                data.copy_from(&self.levels[l]);
            }
            rebuilt.push(data);
        }
        self.levels = rebuilt;
    }

    /// Conservatively average each fine level down onto its parent.
    pub fn average_down(&mut self) {
        for l in (1..self.levels.len()).rev() {
            let (coarse, fine) = split_pair(&mut self.levels, l - 1, l);
            average_to_coarse(fine, coarse, self.config.ref_ratio);
        }
    }

    /// Fill fine-level ghost cells: first from same-level neighbors, then
    /// remaining ghosts by interpolation from the coarser level.
    /// Returns cross-rank bytes moved by the same-level exchanges.
    pub fn fill_ghosts(&mut self) -> u64 {
        let mut moved = 0;
        for l in 0..self.levels.len() {
            moved += self.fill_level_ghosts(l);
        }
        moved
    }

    /// Fill one level's ghosts (same-level exchange + coarse-fine
    /// interpolation) — the per-level operation subcycled time stepping
    /// needs between fine sub-steps. Returns cross-rank bytes moved.
    pub fn fill_level_ghosts(&mut self, l: usize) -> u64 {
        let moved = self.levels[l].exchange();
        if l > 0 {
            let (coarse, fine) = split_pair(&mut self.levels, l - 1, l);
            interpolate_ghosts_from_coarse(coarse, fine, self.config.ref_ratio);
        }
        moved
    }

    /// Conservatively average level `l + 1` down onto level `l` only.
    pub fn average_down_level(&mut self, l: usize) {
        assert!(l + 1 < self.levels.len());
        let (coarse, fine) = split_pair(&mut self.levels, l, l + 1);
        average_to_coarse(fine, coarse, self.config.ref_ratio);
    }

    /// The sum of `comp` over the composite grid: coarse cells covered by a
    /// finer level are excluded (their mass is counted on the fine level,
    /// scaled by cell volume).
    pub fn composite_sum(&self, comp: usize) -> f64 {
        let mut total = 0.0;
        let r = self.config.ref_ratio;
        for l in 0..self.levels.len() {
            // Cell volume relative to level 0.
            let vol = 1.0 / (r.pow(l as u32 * DIM as u32) as f64);
            let finer: Option<Vec<IBox>> = self
                .levels
                .get(l + 1)
                .map(|f| f.layout().grids().iter().map(|g| g.bx.coarsen(r)).collect());
            for i in 0..self.levels[l].len() {
                let valid = self.levels[l].valid_box(i);
                let uncovered: Vec<IBox> = match &finer {
                    None => vec![valid],
                    Some(cover) => {
                        let mut rem = vec![valid];
                        for c in cover {
                            let mut next = Vec::new();
                            for piece in rem {
                                next.extend(piece.subtract(c));
                            }
                            rem = next;
                        }
                        rem
                    }
                };
                for b in uncovered {
                    total += self.levels[l].fab(i).sum_on(&b, comp) * vol;
                }
            }
        }
        total
    }
}

// Internal helper so regrid can temporarily take level 0 out.
trait EmptyLayout {
    fn default_empty() -> BoxLayout;
}
impl EmptyLayout for BoxLayout {
    fn default_empty() -> BoxLayout {
        BoxLayout::new(Vec::new(), 1)
    }
}

/// Intersect each box with a union of boxes, producing disjoint pieces.
fn intersect_with_union(boxes: &[IBox], union: &[IBox]) -> Vec<IBox> {
    let mut out = Vec::new();
    for b in boxes {
        for u in union {
            let i = b.intersect(u);
            if !i.is_empty() {
                out.push(i);
            }
        }
    }
    make_disjoint(out)
}

fn split_pair<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert!(a < b);
    let (lo, hi) = v.split_at_mut(b);
    (&mut lo[a], &mut hi[0])
}

/// Piecewise-constant interpolation of coarse data onto the whole fine level
/// (valid regions).
pub fn interpolate_to_fine(coarse: &LevelData, fine: &mut LevelData, ratio: i64) {
    assert_eq!(coarse.ncomp(), fine.ncomp());
    let ncomp = fine.ncomp();
    for fi in 0..fine.len() {
        let fvalid = fine.valid_box(fi);
        let cregion = fvalid.coarsen(ratio);
        for ci in 0..coarse.len() {
            let cvalid = coarse.valid_box(ci).intersect(&cregion);
            if cvalid.is_empty() {
                continue;
            }
            for comp in 0..ncomp {
                for civ in cvalid.cells() {
                    let v = coarse.fab(ci).get(civ, comp);
                    let fbox = IBox::single(civ).refine(ratio).intersect(&fvalid);
                    for fiv in fbox.cells() {
                        fine.fab_mut(fi).set(fiv, comp, v);
                    }
                }
            }
        }
    }
}

/// Fill fine ghost cells not covered by same-level data (including its
/// periodic images) with piecewise-constant coarse values — the
/// coarse–fine boundary interpolation. Periodic ghost cells read the
/// wrapped coarse cell.
pub fn interpolate_ghosts_from_coarse(coarse: &LevelData, fine: &mut LevelData, ratio: i64) {
    let ncomp = fine.ncomp();
    let nghost = fine.nghost();
    if nghost == 0 {
        return;
    }
    let fdomain = *fine.domain();
    // Region needing fill = grown valid minus (own valid ∪ all same-level
    // valid boxes ∪ their periodic images — those were filled by exchange).
    let same_level: Vec<IBox> = fine.layout().grids().iter().map(|g| g.bx).collect();
    for fi in 0..fine.len() {
        let valid = fine.valid_box(fi);
        let grown = fdomain.clip(&valid.grow(nghost));
        let mut ghost_regions = grown.subtract(&valid);
        for s in &same_level {
            let mut cover = vec![*s];
            for g in &ghost_regions {
                for shift in fdomain.periodic_shifts(s, g) {
                    cover.push(s.shift(shift));
                }
            }
            for c in cover {
                let mut next = Vec::new();
                for g in ghost_regions {
                    next.extend(g.subtract(&c));
                }
                ghost_regions = next;
            }
        }
        for region in ghost_regions {
            for fiv in region.cells() {
                let civ = fdomain.wrap(fiv).coarsen(ratio);
                for ci in 0..coarse.len() {
                    if coarse.valid_box(ci).contains(civ) {
                        for comp in 0..ncomp {
                            let v = coarse.fab(ci).get(civ, comp);
                            fine.fab_mut(fi).set(fiv, comp, v);
                        }
                        break;
                    }
                }
            }
        }
    }
}

/// Conservative averaging of fine data onto the coarse cells it covers.
pub fn average_to_coarse(fine: &LevelData, coarse: &mut LevelData, ratio: i64) {
    assert_eq!(coarse.ncomp(), fine.ncomp());
    let ncomp = fine.ncomp();
    let inv = 1.0 / (ratio.pow(DIM as u32) as f64);
    for ci in 0..coarse.len() {
        let cvalid = coarse.valid_box(ci);
        for fi in 0..fine.len() {
            let fvalid = fine.valid_box(fi);
            let covered = fvalid.coarsen(ratio).intersect(&cvalid);
            if covered.is_empty() {
                continue;
            }
            for comp in 0..ncomp {
                for civ in covered.cells() {
                    let fcells = IBox::single(civ).refine(ratio);
                    let mut acc = 0.0;
                    for fiv in fcells.cells() {
                        acc += fine.fab(fi).get(fiv, comp);
                    }
                    coarse.fab_mut(ci).set(civ, comp, acc * inv);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intvect::IntVect;
    use crate::tagging::IntVectSet;

    fn hier(max_levels: usize) -> AmrHierarchy {
        let dom = ProblemDomain::new(IBox::cube(16));
        AmrHierarchy::new(
            dom,
            HierarchyConfig {
                max_levels,
                ref_ratio: 2,
                base_max_box: 8,
                nghost: 1,
                ..Default::default()
            },
        )
    }

    fn tag_center(h: &AmrHierarchy, l: usize) -> IntVectSet {
        let mut t = IntVectSet::new();
        let db = h.domain(l).domain_box();
        let c = (db.lo() + db.hi()) * 1 / 2;
        t.insert_box(&IBox::single(IntVect::new(c[0], c[1], c[2])).grow(1));
        t
    }

    #[test]
    fn new_hierarchy_has_base_only() {
        let h = hier(3);
        assert_eq!(h.num_levels(), 1);
        assert_eq!(h.level(0).layout().total_cells(), 16 * 16 * 16);
    }

    #[test]
    fn regrid_creates_fine_level_covering_tags() {
        let mut h = hier(2);
        let tags = tag_center(&h, 0);
        h.regrid(std::slice::from_ref(&tags));
        assert_eq!(h.num_levels(), 2);
        // every tag, refined, is inside the fine level
        for iv in tags.iter() {
            let fine_box = IBox::single(*iv).refine(2);
            let covered = h
                .level(1)
                .layout()
                .grids()
                .iter()
                .any(|g| g.bx.contains_box(&fine_box));
            assert!(covered, "tag {iv:?} not covered by fine level");
        }
    }

    #[test]
    fn regrid_interpolates_coarse_data() {
        let mut h = hier(2);
        h.level_mut(0).fill(3.5);
        let tags = tag_center(&h, 0);
        h.regrid(&[tags]);
        // fine level should be constant 3.5 (piecewise-constant interp)
        for i in 0..h.level(1).len() {
            let vb = h.level(1).valid_box(i);
            for iv in vb.cells() {
                assert_eq!(h.level(1).fab(i).get(iv, 0), 3.5);
            }
        }
    }

    #[test]
    fn regrid_preserves_old_fine_data_on_overlap() {
        let mut h = hier(2);
        h.level_mut(0).fill(1.0);
        let tags = tag_center(&h, 0);
        h.regrid(std::slice::from_ref(&tags));
        // stamp the fine level
        h.level_mut(1).fill(9.0);
        // regrid to the same tags: fine data must survive
        h.regrid(&[tags]);
        assert_eq!(h.num_levels(), 2);
        for i in 0..h.level(1).len() {
            let vb = h.level(1).valid_box(i);
            for iv in vb.cells() {
                assert_eq!(
                    h.level(1).fab(i).get(iv, 0),
                    9.0,
                    "lost fine data at {iv:?}"
                );
            }
        }
    }

    #[test]
    fn regrid_empty_tags_drops_fine_levels() {
        let mut h = hier(2);
        h.regrid(&[tag_center(&h, 0)]);
        assert_eq!(h.num_levels(), 2);
        h.regrid(&[IntVectSet::new(), IntVectSet::new()]);
        assert_eq!(h.num_levels(), 1);
    }

    #[test]
    fn average_down_is_conservative() {
        let mut h = hier(2);
        h.level_mut(0).fill(1.0);
        h.regrid(&[tag_center(&h, 0)]);
        // Put a bump on the fine level.
        let fine = h.level_mut(1);
        let vb = fine.valid_box(0);
        let fab = fine.fab_mut(0);
        for iv in vb.cells() {
            fab.set(iv, 0, 2.0);
        }
        let before = h.composite_sum(0);
        h.average_down();
        let after = h.composite_sum(0);
        assert!(
            (before - after).abs() < 1e-9 * before.abs().max(1.0),
            "average_down changed the composite sum: {before} -> {after}"
        );
    }

    #[test]
    fn composite_sum_excludes_covered_cells() {
        let mut h = hier(2);
        h.level_mut(0).fill(1.0);
        // Without refinement: sum = #cells * 1.
        assert!((h.composite_sum(0) - 4096.0).abs() < 1e-9);
        h.regrid(&[tag_center(&h, 0)]);
        h.level_mut(1).fill(1.0);
        // Composite of a constant field is invariant to refinement:
        // fine cells carry 1/r^3 volume each.
        assert!((h.composite_sum(0) - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn fill_ghosts_interpolates_at_coarse_fine_boundary() {
        let mut h = hier(2);
        h.level_mut(0).fill(4.0);
        h.regrid(&[tag_center(&h, 0)]);
        h.level_mut(1).fill(4.0);
        h.fill_ghosts();
        // Every ghost cell of the fine level inside the domain should be 4.0.
        let fine = h.level(1);
        for i in 0..fine.len() {
            let fb = fine.fab(i);
            for iv in fb.ibox().cells() {
                assert_eq!(fb.get(iv, 0), 4.0, "ghost at {iv:?} not filled");
            }
        }
    }

    #[test]
    fn three_level_nesting() {
        let mut h = hier(3);
        h.level_mut(0).fill(1.0);
        let t0 = tag_center(&h, 0);
        h.regrid(std::slice::from_ref(&t0));
        let t1 = tag_center(&h, 1);
        h.regrid(&[t0, t1]);
        assert_eq!(h.num_levels(), 3);
        // level 2 boxes, coarsened, must be inside level 1's union.
        let l1: Vec<IBox> = h.level(1).layout().grids().iter().map(|g| g.bx).collect();
        for g in h.level(2).layout().grids() {
            let c = g.bx.coarsen(2);
            let mut rem = vec![c];
            for u in &l1 {
                let mut next = Vec::new();
                for piece in rem {
                    next.extend(piece.subtract(u));
                }
                rem = next;
            }
            assert!(rem.is_empty(), "level-2 box {:?} escapes level 1", g.bx);
        }
    }
}
