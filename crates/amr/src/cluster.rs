//! Berger–Rigoutsos point clustering: turn a set of tagged cells into a
//! small set of boxes that cover all tags with a minimum fill efficiency.
//!
//! This is the grid-generation algorithm Chombo uses (`BRMeshRefine`):
//! recursively split the bounding box of the tags at holes or inflection
//! points of the tag signatures until every box is efficient enough, then
//! enforce max box size and blocking-factor alignment.

use crate::boxes::IBox;
use crate::intvect::DIM;
use crate::tagging::IntVectSet;

/// Parameters controlling grid generation.
#[derive(Clone, Copy, Debug)]
pub struct ClusterParams {
    /// Minimum fraction of cells in each output box that must be tagged.
    pub fill_ratio: f64,
    /// Maximum side length of an output box.
    pub max_box_size: i64,
    /// Output boxes are refined by this; box corners snap to multiples of it
    /// so the refined grids align (Chombo's blocking factor).
    pub blocking_factor: i64,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            fill_ratio: 0.7,
            max_box_size: 32,
            blocking_factor: 4,
        }
    }
}

/// Cluster tags into covering boxes, clipped to `within`.
///
/// Guarantees:
/// * every tag is covered by exactly one output box,
/// * output boxes are disjoint,
/// * every output box side ≤ `max_box_size` (post-snap it may exceed by at
///   most one blocking factor),
/// * boxes are aligned to `blocking_factor`.
pub fn cluster_tags(tags: &IntVectSet, within: &IBox, params: &ClusterParams) -> Vec<IBox> {
    if tags.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let bbox = tags.bounding_box().intersect(within);
    let clipped = tags.clip(within);
    if clipped.is_empty() {
        return Vec::new();
    }
    split_recursive(&clipped, bbox, params, &mut out);
    // Snap to blocking factor and clip; subtract to keep disjointness after
    // snapping may re-introduce overlap, so merge via subtraction pass.
    let snapped: Vec<IBox> = out
        .into_iter()
        .map(|b| snap_to_blocking(b, params.blocking_factor, within))
        .collect();
    make_disjoint(snapped)
}

fn split_recursive(tags: &IntVectSet, bbox: IBox, params: &ClusterParams, out: &mut Vec<IBox>) {
    let bbox = tags.clip(&bbox).bounding_box();
    if bbox.is_empty() {
        return;
    }
    let ntags = tags.count_in(&bbox);
    if ntags == 0 {
        return;
    }
    let efficiency = ntags as f64 / bbox.num_cells() as f64;
    if efficiency >= params.fill_ratio && bbox.longest_side() <= params.max_box_size {
        out.push(bbox);
        return;
    }
    // Find a split plane. Priority: hole in signature > steepest inflection
    // > midpoint of longest direction.
    if let Some((d, at)) = find_split(tags, &bbox, params) {
        let (l, r) = bbox.split_at(d, at);
        split_recursive(tags, l, params, out);
        split_recursive(tags, r, params, out);
    } else {
        // Cannot split further (unit extent everywhere): accept as-is.
        out.push(bbox);
    }
}

/// Tag signature along direction `d`: number of tags in each index plane.
fn signature(tags: &IntVectSet, bbox: &IBox, d: usize) -> Vec<usize> {
    let lo = bbox.lo()[d];
    let n = bbox.size()[d] as usize;
    let mut sig = vec![0usize; n];
    for iv in tags.iter() {
        if bbox.contains(*iv) {
            sig[(iv[d] - lo) as usize] += 1;
        }
    }
    sig
}

/// Choose a split plane per Berger–Rigoutsos.
fn find_split(tags: &IntVectSet, bbox: &IBox, params: &ClusterParams) -> Option<(usize, i64)> {
    // If longer than max_box_size, just halve the longest direction —
    // splitting at holes first can generate slivers.
    let must_split = bbox.longest_side() > params.max_box_size;

    // 1. Look for holes (zero planes) in the signatures.
    let mut best_hole: Option<(usize, i64, i64)> = None; // (dir, at, dist from edge)
    for d in 0..DIM {
        if bbox.size()[d] < 2 {
            continue;
        }
        let sig = signature(tags, bbox, d);
        for (i, &s) in sig.iter().enumerate().skip(1) {
            // split so the plane i is the first of the right half
            if s == 0 || sig[i - 1] == 0 {
                let at = bbox.lo()[d] + i as i64;
                if at > bbox.lo()[d] && at <= bbox.hi()[d] {
                    let dist = (i as i64).min(sig.len() as i64 - i as i64);
                    if best_hole.is_none_or(|(_, _, bd)| dist > bd) {
                        best_hole = Some((d, at, dist));
                    }
                }
            }
        }
    }
    if let Some((d, at, _)) = best_hole {
        return Some((d, at));
    }

    // 2. Steepest second-derivative inflection of the signature.
    let mut best_infl: Option<(usize, i64, i64)> = None; // (dir, at, |delta|)
    for d in 0..DIM {
        let n = bbox.size()[d];
        if n < 4 {
            continue;
        }
        let sig = signature(tags, bbox, d);
        let lap: Vec<i64> = (1..sig.len() - 1)
            .map(|i| sig[i - 1] as i64 - 2 * sig[i] as i64 + sig[i + 1] as i64)
            .collect();
        for i in 0..lap.len() - 1 {
            if lap[i].signum() != lap[i + 1].signum() && lap[i] != 0 && lap[i + 1] != 0 {
                let delta = (lap[i] - lap[i + 1]).abs();
                let at = bbox.lo()[d] + i as i64 + 2;
                if at > bbox.lo()[d]
                    && at <= bbox.hi()[d]
                    && best_infl.is_none_or(|(_, _, bd)| delta > bd)
                {
                    best_infl = Some((d, at, delta));
                }
            }
        }
    }
    if let Some((d, at, _)) = best_infl {
        if !must_split {
            return Some((d, at));
        }
    }

    // 3. Halve the longest splittable direction.
    let d = bbox.longest_dir();
    if bbox.size()[d] >= 2 {
        return Some((d, bbox.lo()[d] + bbox.size()[d] / 2));
    }
    // Try any splittable direction.
    (0..DIM)
        .find(|&d| bbox.size()[d] >= 2)
        .map(|d| (d, bbox.lo()[d] + bbox.size()[d] / 2))
}

/// Expand `b` so its corners land on multiples of `bf`, clipped to `within`.
fn snap_to_blocking(b: IBox, bf: i64, within: &IBox) -> IBox {
    if bf <= 1 {
        return b.intersect(within);
    }
    let mut lo = b.lo();
    let mut hi = b.hi();
    for d in 0..DIM {
        lo[d] = lo[d].div_euclid(bf) * bf;
        hi[d] = (hi[d].div_euclid(bf) + 1) * bf - 1;
    }
    IBox::new(lo, hi).intersect(within)
}

/// Make a set of possibly overlapping boxes disjoint while preserving their
/// union (earlier boxes win; later boxes are trimmed around them).
pub fn make_disjoint(boxes: Vec<IBox>) -> Vec<IBox> {
    let mut out: Vec<IBox> = Vec::new();
    for b in boxes {
        let mut pieces = vec![b];
        for kept in &out {
            let mut next = Vec::new();
            for p in pieces {
                next.extend(p.subtract(kept));
            }
            pieces = next;
            if pieces.is_empty() {
                break;
            }
        }
        out.extend(pieces);
    }
    out.retain(|b| !b.is_empty());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intvect::IntVect;

    fn cover_check(tags: &IntVectSet, boxes: &[IBox]) {
        for iv in tags.iter() {
            assert!(
                boxes.iter().any(|b| b.contains(*iv)),
                "tag {iv:?} not covered"
            );
        }
        for (i, a) in boxes.iter().enumerate() {
            for b in &boxes[i + 1..] {
                assert!(!a.intersects(b), "boxes overlap: {a:?} {b:?}");
            }
        }
    }

    #[test]
    fn empty_tags_yield_no_boxes() {
        let tags = IntVectSet::new();
        let boxes = cluster_tags(&tags, &IBox::cube(32), &ClusterParams::default());
        assert!(boxes.is_empty());
    }

    #[test]
    fn single_cluster_tight_box() {
        let mut tags = IntVectSet::new();
        tags.insert_box(&IBox::new(IntVect::splat(4), IntVect::splat(7)));
        let params = ClusterParams {
            blocking_factor: 1,
            ..Default::default()
        };
        let boxes = cluster_tags(&tags, &IBox::cube(32), &params);
        cover_check(&tags, &boxes);
        assert_eq!(boxes.len(), 1);
        assert_eq!(boxes[0], IBox::new(IntVect::splat(4), IntVect::splat(7)));
    }

    #[test]
    fn two_separated_clusters_split_at_hole() {
        let mut tags = IntVectSet::new();
        tags.insert_box(&IBox::new(IntVect::splat(0), IntVect::splat(3)));
        tags.insert_box(&IBox::new(IntVect::splat(20), IntVect::splat(23)));
        let params = ClusterParams {
            blocking_factor: 1,
            ..Default::default()
        };
        let boxes = cluster_tags(&tags, &IBox::cube(32), &params);
        cover_check(&tags, &boxes);
        assert_eq!(boxes.len(), 2);
        let covered: u64 = boxes.iter().map(|b| b.num_cells()).sum();
        assert_eq!(covered, 2 * 64); // tight boxes, no waste
    }

    #[test]
    fn efficiency_respected() {
        // L-shaped tags force splitting to respect fill ratio.
        let mut tags = IntVectSet::new();
        tags.insert_box(&IBox::new(IntVect::new(0, 0, 0), IntVect::new(15, 3, 3)));
        tags.insert_box(&IBox::new(IntVect::new(0, 4, 0), IntVect::new(3, 15, 3)));
        let params = ClusterParams {
            fill_ratio: 0.85,
            max_box_size: 32,
            blocking_factor: 1,
        };
        let boxes = cluster_tags(&tags, &IBox::cube(32), &params);
        cover_check(&tags, &boxes);
        let covered: u64 = boxes.iter().map(|b| b.num_cells()).sum();
        let ntags = tags.len() as u64;
        assert!(
            covered as f64 <= ntags as f64 / 0.5,
            "covering too wasteful: {covered} cells for {ntags} tags"
        );
    }

    #[test]
    fn max_box_size_enforced() {
        let mut tags = IntVectSet::new();
        tags.insert_box(&IBox::cube(40));
        let params = ClusterParams {
            fill_ratio: 0.7,
            max_box_size: 16,
            blocking_factor: 1,
        };
        let boxes = cluster_tags(&tags, &IBox::cube(64), &params);
        cover_check(&tags, &boxes);
        for b in &boxes {
            assert!(b.longest_side() <= 16 + params.blocking_factor);
        }
    }

    #[test]
    fn blocking_factor_alignment() {
        let mut tags = IntVectSet::new();
        tags.insert(IntVect::new(5, 9, 13));
        let params = ClusterParams {
            fill_ratio: 0.7,
            max_box_size: 32,
            blocking_factor: 4,
        };
        let boxes = cluster_tags(&tags, &IBox::cube(32), &params);
        cover_check(&tags, &boxes);
        for b in &boxes {
            for d in 0..DIM {
                assert_eq!(b.lo()[d] % 4, 0);
                assert_eq!((b.hi()[d] + 1) % 4, 0);
            }
        }
    }

    #[test]
    fn make_disjoint_preserves_union() {
        let a = IBox::cube(8);
        let b = IBox::new(IntVect::splat(4), IntVect::splat(11));
        let dis = make_disjoint(vec![a, b]);
        // union volume = 8^3 + 8^3 - 4^3
        let total: u64 = dis.iter().map(|x| x.num_cells()).sum();
        assert_eq!(total, 512 + 512 - 64);
        for (i, x) in dis.iter().enumerate() {
            for y in &dis[i + 1..] {
                assert!(!x.intersects(y));
            }
        }
    }

    #[test]
    fn scattered_tags_all_covered() {
        // Pseudo-random scatter (deterministic LCG).
        let mut tags = IntVectSet::new();
        let mut state: u64 = 12345;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 33) % 32;
            let y = (state >> 23) % 32;
            let z = (state >> 13) % 32;
            tags.insert(IntVect::new(x as i64, y as i64, z as i64));
        }
        let boxes = cluster_tags(&tags, &IBox::cube(32), &ClusterParams::default());
        cover_check(&tags, &boxes);
    }
}
