//! Plotfile I/O: serializing AMR hierarchies to disk and back.
//!
//! The traditional post-processing pipeline the paper argues against
//! (§1, §6) writes every step's hierarchy to the parallel filesystem; this
//! module provides that path for the native workflow — a compact,
//! self-describing binary format (magic, version, per-level layouts,
//! Fortran-ordered fab payloads, checksum).

use crate::boxes::IBox;
use crate::domain::ProblemDomain;
use crate::hierarchy::{AmrHierarchy, HierarchyConfig};
use crate::intvect::{IntVect, DIM};
use crate::layout::{BoxLayout, Grid};
use crate::level_data::LevelData;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"XLAYERPF";
const VERSION: u32 = 1;

/// Errors from plotfile reading.
#[derive(Debug)]
pub enum PlotfileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a plotfile, or an unsupported version.
    Format(String),
    /// Payload checksum mismatch (corrupted file).
    Checksum,
}

impl From<io::Error> for PlotfileError {
    fn from(e: io::Error) -> Self {
        PlotfileError::Io(e)
    }
}

impl std::fmt::Display for PlotfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlotfileError::Io(e) => write!(f, "plotfile I/O error: {e}"),
            PlotfileError::Format(m) => write!(f, "plotfile format error: {m}"),
            PlotfileError::Checksum => write!(f, "plotfile checksum mismatch"),
        }
    }
}

impl std::error::Error for PlotfileError {}

/// A deserialized plotfile: per-level data plus metadata.
#[derive(Debug)]
pub struct Plotfile {
    /// Simulation step the file captures.
    pub step: u64,
    /// Simulated time.
    pub time: f64,
    /// Refinement ratio between levels.
    pub ref_ratio: i64,
    /// Level data, coarsest first.
    pub levels: Vec<LevelData>,
}

fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_i64(w: &mut impl Write, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn r_i64(r: &mut impl Read) -> io::Result<i64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}
fn r_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn w_ivec(w: &mut impl Write, v: IntVect) -> io::Result<()> {
    for d in 0..DIM {
        w_i64(w, v[d])?;
    }
    Ok(())
}
fn r_ivec(r: &mut impl Read) -> io::Result<IntVect> {
    let mut v = IntVect::ZERO;
    for d in 0..DIM {
        v[d] = r_i64(r)?;
    }
    Ok(v)
}

/// FNV-1a over the payload doubles, for corruption detection.
fn checksum_update(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// Write a hierarchy snapshot. Returns bytes written.
pub fn write_plotfile(
    w: &mut impl Write,
    h: &AmrHierarchy,
    step: u64,
    time: f64,
) -> io::Result<u64> {
    let mut written = 0u64;
    let mut track = |n: usize| written += n as u64;

    w.write_all(MAGIC)?;
    track(8);
    w_u32(w, VERSION)?;
    track(4);
    w_u64(w, step)?;
    track(8);
    w_f64(w, time)?;
    track(8);
    w_i64(w, h.ref_ratio())?;
    track(8);
    w_u32(w, h.num_levels() as u32)?;
    track(4);

    let mut hash: u64 = 0xcbf29ce484222325;
    for l in 0..h.num_levels() {
        let ld = h.level(l);
        let dom = h.domain(l);
        w_ivec(w, dom.domain_box().lo())?;
        w_ivec(w, dom.domain_box().hi())?;
        track(48);
        let mut periodic = 0u32;
        for d in 0..DIM {
            if dom.is_periodic(d) {
                periodic |= 1 << d;
            }
        }
        w_u32(w, periodic)?;
        track(4);
        w_u32(w, ld.ncomp() as u32)?;
        w_i64(w, ld.nghost())?;
        w_u32(w, ld.len() as u32)?;
        w_u32(w, ld.layout().nranks() as u32)?;
        track(20);
        for i in 0..ld.len() {
            let vb = ld.valid_box(i);
            w_ivec(w, vb.lo())?;
            w_ivec(w, vb.hi())?;
            w_u32(w, ld.layout().rank(i) as u32)?;
            track(52);
            // Valid-region payload only (ghosts are re-derivable).
            for comp in 0..ld.ncomp() {
                for iv in vb.cells() {
                    let bytes = ld.fab(i).get(iv, comp).to_le_bytes();
                    checksum_update(&mut hash, &bytes);
                    w.write_all(&bytes)?;
                    track(8);
                }
            }
        }
    }
    w_u64(w, hash)?;
    track(8);
    Ok(written)
}

/// Read a hierarchy snapshot.
pub fn read_plotfile(r: &mut impl Read) -> Result<Plotfile, PlotfileError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PlotfileError::Format("bad magic".into()));
    }
    let version = r_u32(r)?;
    if version != VERSION {
        return Err(PlotfileError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let step = r_u64(r)?;
    let time = r_f64(r)?;
    let ref_ratio = r_i64(r)?;
    let nlevels = r_u32(r)? as usize;
    if nlevels == 0 || nlevels > 64 {
        return Err(PlotfileError::Format(format!("bad level count {nlevels}")));
    }

    let mut hash: u64 = 0xcbf29ce484222325;
    let mut levels = Vec::with_capacity(nlevels);
    for _ in 0..nlevels {
        let lo = r_ivec(r)?;
        let hi = r_ivec(r)?;
        let periodic_bits = r_u32(r)?;
        let mut periodic = [false; DIM];
        for (d, p) in periodic.iter_mut().enumerate() {
            *p = periodic_bits & (1 << d) != 0;
        }
        let domain = ProblemDomain::with_periodicity(IBox::new(lo, hi), periodic);
        let ncomp = r_u32(r)? as usize;
        let nghost = r_i64(r)?;
        let ngrids = r_u32(r)? as usize;
        let nranks = r_u32(r)? as usize;
        if ncomp == 0 || ngrids > 1 << 24 || nranks == 0 {
            return Err(PlotfileError::Format("implausible level header".into()));
        }
        let mut grids = Vec::with_capacity(ngrids);
        let mut payload: Vec<Vec<f64>> = Vec::with_capacity(ngrids);
        for _ in 0..ngrids {
            let glo = r_ivec(r)?;
            let ghi = r_ivec(r)?;
            let rank = r_u32(r)? as usize;
            let bx = IBox::new(glo, ghi);
            if bx.is_empty() {
                return Err(PlotfileError::Format("empty grid box".into()));
            }
            let n = bx.num_cells() as usize * ncomp;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                let mut b = [0u8; 8];
                r.read_exact(&mut b)?;
                checksum_update(&mut hash, &b);
                vals.push(f64::from_le_bytes(b));
            }
            grids.push(Grid { bx, rank });
            payload.push(vals);
        }
        let layout = BoxLayout::new(grids, nranks);
        let mut ld = LevelData::new(layout, domain, ncomp, nghost);
        for (i, vals) in payload.iter().enumerate() {
            let vb = ld.valid_box(i);
            let mut at = 0usize;
            for comp in 0..ncomp {
                for iv in vb.cells() {
                    ld.fab_mut(i).set(iv, comp, vals[at]);
                    at += 1;
                }
            }
        }
        levels.push(ld);
    }
    let expect = r_u64(r)?;
    if expect != hash {
        return Err(PlotfileError::Checksum);
    }
    Ok(Plotfile {
        step,
        time,
        ref_ratio,
        levels,
    })
}

/// Rebuild an [`AmrHierarchy`]-equivalent from a plotfile for further
/// analysis (the post-processing reader). The hierarchy config is inferred.
pub fn plotfile_config(p: &Plotfile) -> HierarchyConfig {
    HierarchyConfig {
        max_levels: p.levels.len().max(1),
        ref_ratio: p.ref_ratio,
        ncomp: p.levels.first().map_or(1, |l| l.ncomp()),
        nghost: p.levels.first().map_or(0, |l| l.nghost()),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterParams;
    use crate::tagging::IntVectSet;

    fn sample_hierarchy() -> AmrHierarchy {
        let dom = ProblemDomain::periodic(IBox::cube(16));
        let mut h = AmrHierarchy::new(
            dom,
            HierarchyConfig {
                max_levels: 2,
                base_max_box: 8,
                ncomp: 2,
                nghost: 1,
                nranks: 3,
                cluster: ClusterParams {
                    blocking_factor: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        // distinctive data
        for i in 0..h.level(0).len() {
            let vb = h.level(0).valid_box(i);
            for iv in vb.cells() {
                h.level_mut(0)
                    .fab_mut(i)
                    .set(iv, 0, (iv[0] * 100 + iv[1] * 10 + iv[2]) as f64);
                h.level_mut(0).fab_mut(i).set(iv, 1, -(iv[0] as f64));
            }
        }
        let mut tags = IntVectSet::new();
        tags.insert_box(&IBox::new(IntVect::splat(6), IntVect::splat(9)));
        h.regrid(&[tags]);
        h
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let h = sample_hierarchy();
        let mut buf = Vec::new();
        let written = write_plotfile(&mut buf, &h, 17, 3.25).expect("write");
        assert_eq!(written as usize, buf.len());

        let p = read_plotfile(&mut buf.as_slice()).expect("read");
        assert_eq!(p.step, 17);
        assert_eq!(p.time, 3.25);
        assert_eq!(p.ref_ratio, h.ref_ratio());
        assert_eq!(p.levels.len(), h.num_levels());
        for l in 0..h.num_levels() {
            let a = h.level(l);
            let b = &p.levels[l];
            assert_eq!(a.len(), b.len());
            assert_eq!(a.ncomp(), b.ncomp());
            for i in 0..a.len() {
                assert_eq!(a.valid_box(i), b.valid_box(i));
                assert_eq!(a.layout().rank(i), b.layout().rank(i));
                for comp in 0..a.ncomp() {
                    for iv in a.valid_box(i).cells() {
                        assert_eq!(a.fab(i).get(iv, comp), b.fab(i).get(iv, comp));
                    }
                }
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let h = sample_hierarchy();
        let mut buf = Vec::new();
        write_plotfile(&mut buf, &h, 1, 0.0).expect("write");
        // flip a payload byte somewhere in the middle
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        match read_plotfile(&mut buf.as_slice()) {
            Err(PlotfileError::Checksum) | Err(PlotfileError::Format(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTAPLOT00000000".to_vec();
        assert!(matches!(
            read_plotfile(&mut buf.as_slice()),
            Err(PlotfileError::Format(_))
        ));
    }

    #[test]
    fn truncated_file_rejected() {
        let h = sample_hierarchy();
        let mut buf = Vec::new();
        write_plotfile(&mut buf, &h, 1, 0.0).expect("write");
        buf.truncate(buf.len() / 3);
        assert!(matches!(
            read_plotfile(&mut buf.as_slice()),
            Err(PlotfileError::Io(_))
        ));
    }

    #[test]
    fn config_inference() {
        let h = sample_hierarchy();
        let mut buf = Vec::new();
        write_plotfile(&mut buf, &h, 1, 0.0).expect("write");
        let p = read_plotfile(&mut buf.as_slice()).expect("read");
        let cfg = plotfile_config(&p);
        assert_eq!(cfg.max_levels, 2);
        assert_eq!(cfg.ncomp, 2);
        assert_eq!(cfg.ref_ratio, 2);
    }
}
