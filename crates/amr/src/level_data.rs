//! `LevelData`: distributed data over a `BoxLayout` with ghost cells and a
//! ghost-exchange operation (Chombo's `LevelData<FArrayBox>` + `exchange()`).

use crate::boxes::IBox;
use crate::copier::{self, ExchangeCopier};
use crate::domain::ProblemDomain;
use crate::fab::Fab;
use crate::layout::{BoxLayout, CopyOp};

/// Cell data on every grid of a layout, each fab grown by `nghost` cells.
#[derive(Debug)]
pub struct LevelData {
    layout: BoxLayout,
    domain: ProblemDomain,
    nghost: i64,
    ncomp: usize,
    fabs: Vec<Fab>,
    /// Cached exchange schedule, built lazily on the first [`Self::exchange`]
    /// and revalidated against (layout, domain, nghost, ncomp) on every use.
    /// Regridding replaces the whole `LevelData`, which drops the cache.
    copier: Option<ExchangeCopier>,
}

impl LevelData {
    /// Allocate zero-initialized data for every grid of `layout`.
    pub fn new(layout: BoxLayout, domain: ProblemDomain, ncomp: usize, nghost: i64) -> Self {
        assert!(nghost >= 0);
        let fabs = layout
            .grids()
            .iter()
            .map(|g| Fab::new(domain.clip(&g.bx.grow(nghost)), ncomp))
            .collect();
        LevelData {
            layout,
            domain,
            nghost,
            ncomp,
            fabs,
            copier: None,
        }
    }

    /// The underlying layout.
    pub fn layout(&self) -> &BoxLayout {
        &self.layout
    }

    /// The level's problem domain.
    pub fn domain(&self) -> &ProblemDomain {
        &self.domain
    }

    /// Ghost width.
    pub fn nghost(&self) -> i64 {
        self.nghost
    }

    /// Components per cell.
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Number of grids.
    pub fn len(&self) -> usize {
        self.fabs.len()
    }

    /// True if there are no grids.
    pub fn is_empty(&self) -> bool {
        self.fabs.is_empty()
    }

    /// The fab of grid `i` (covers the grown, domain-clipped box).
    pub fn fab(&self, i: usize) -> &Fab {
        &self.fabs[i]
    }

    /// Mutable fab of grid `i`.
    pub fn fab_mut(&mut self, i: usize) -> &mut Fab {
        &mut self.fabs[i]
    }

    /// The valid (un-grown) region of grid `i`.
    pub fn valid_box(&self, i: usize) -> IBox {
        self.layout.ibox(i)
    }

    /// Total payload bytes across all fabs.
    pub fn bytes(&self) -> u64 {
        self.fabs.iter().map(|f| f.bytes()).sum()
    }

    /// Payload bytes held by each rank.
    pub fn bytes_per_rank(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.layout.nranks()];
        for (i, f) in self.fabs.iter().enumerate() {
            v[self.layout.rank(i)] += f.bytes();
        }
        v
    }

    /// Fill all fabs (valid + ghost) with `v`.
    pub fn fill(&mut self, v: f64) {
        for f in &mut self.fabs {
            f.fill(v);
        }
    }

    /// Apply `f(valid_box, fab)` to every grid, mutably.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(IBox, &mut Fab)) {
        for i in 0..self.fabs.len() {
            let vb = self.layout.ibox(i);
            f(vb, &mut self.fabs[i]);
        }
    }

    /// Apply `f(grid_index, valid_box, fab)` to every grid in parallel.
    ///
    /// Grids are disjoint, so per-grid kernels (solver sweeps, extraction,
    /// reduction) are embarrassingly parallel; this is the in-node
    /// parallelism of the native execution mode.
    pub fn par_for_each_mut(&mut self, f: impl Fn(usize, IBox, &mut Fab) + Sync)
    where
        Self: Sized,
    {
        use rayon::prelude::*;
        let boxes: Vec<IBox> = self.layout.grids().iter().map(|g| g.bx).collect();
        self.fabs
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, fab)| f(i, boxes[i], fab));
    }

    /// Apply `f(grid_index, valid_box, fab)` to every grid in parallel,
    /// collecting each grid's result in grid order.
    ///
    /// This is the indexed parallel fab access behind the solvers'
    /// flux-capturing advance: each grid's kernel returns a value (its
    /// face-flux fabs) that the caller keeps, so the serial
    /// `for i in 0..len` walk of the capture path parallelizes exactly
    /// like [`Self::par_for_each_mut`] without giving up the results.
    pub fn par_map_mut<R: Send>(
        &mut self,
        f: impl Fn(usize, IBox, &mut Fab) -> R + Sync,
    ) -> Vec<R> {
        use rayon::prelude::*;
        let boxes: Vec<IBox> = self.layout.grids().iter().map(|g| g.bx).collect();
        // Pair each fab with an output slot so one mutable slice drives the
        // parallel walk (the vendored rayon has no indexed collect-into).
        let mut slots: Vec<(Option<R>, &mut Fab)> =
            self.fabs.iter_mut().map(|fab| (None, fab)).collect();
        slots
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| slot.0 = Some(f(i, boxes[i], slot.1)));
        slots
            .into_iter()
            .map(|(r, _)| r.expect("every grid produced a result"))
            .collect()
    }

    /// Compute the list of copies needed to fill every grid's ghost region
    /// from other grids' valid regions, including periodic images.
    pub fn exchange_plan(&self) -> Vec<CopyOp> {
        copier::exchange_plan(&self.layout, &self.domain, self.nghost)
    }

    /// Fill ghost cells from neighboring grids' valid data (and periodic
    /// images). Returns the number of bytes logically moved between ranks
    /// (copies whose src and dst grids live on different ranks), which the
    /// platform model charges as network traffic.
    ///
    /// The exchange schedule is cached: the first call builds an
    /// [`ExchangeCopier`] and later calls reuse it as long as the
    /// (layout, domain, nghost, ncomp) configuration is unchanged, skipping
    /// the O(n_grids²) replanning entirely. See [`Self::exchange_uncached`]
    /// for the replanning baseline.
    pub fn exchange(&mut self) -> u64 {
        let mut copier = match self.copier.take() {
            Some(c) if c.matches(&self.layout, &self.domain, self.nghost, self.ncomp) => c,
            _ => ExchangeCopier::build(&self.layout, &self.domain, self.nghost, self.ncomp),
        };
        let cross_rank_bytes = copier.apply(&mut self.fabs);
        self.copier = Some(copier);
        cross_rank_bytes
    }

    /// [`Self::exchange`] without the cached schedule: replans on every call
    /// and applies the ops one by one. Kept as the reference implementation
    /// (property tests compare the cached path against it) and as the
    /// baseline for the ghost-exchange benchmarks.
    pub fn exchange_uncached(&mut self) -> u64 {
        let plan = self.exchange_plan();
        let mut cross_rank_bytes = 0u64;
        // Region-sized staging buffer for periodic self-copies (ghost and
        // valid regions of one fab are disjoint, but borrowck can't see
        // that). Reused across ops; never clones the whole fab.
        let mut scratch: Vec<f64> = Vec::new();
        for op in plan {
            if op.src == op.dst {
                let n = op.region.num_cells() as usize * self.ncomp;
                scratch.resize(n.max(scratch.len()), 0.0);
                self.fabs[op.src].pack_region(&op.region, op.shift, &mut scratch[..n]);
                self.fabs[op.dst].unpack_region(&op.region, &scratch[..n]);
            } else {
                let (a, b) = split_two(&mut self.fabs, op.src, op.dst);
                b.copy_from_shifted(a, &op.region, op.shift);
            }
            if self.layout.rank(op.src) != self.layout.rank(op.dst) {
                cross_rank_bytes +=
                    op.region.num_cells() * self.ncomp as u64 * std::mem::size_of::<f64>() as u64;
            }
        }
        cross_rank_bytes
    }

    /// Copy valid-region data from another `LevelData` on a (possibly
    /// different) layout over the same domain index space.
    pub fn copy_from(&mut self, other: &LevelData) {
        assert_eq!(self.ncomp, other.ncomp);
        for i in 0..self.fabs.len() {
            let dst_valid = self.layout.ibox(i);
            for j in 0..other.fabs.len() {
                let src_valid = other.layout.ibox(j);
                let overlap = dst_valid.intersect(&src_valid);
                if !overlap.is_empty() {
                    self.fabs[i].copy_from(&other.fabs[j], &overlap);
                }
            }
        }
    }

    /// Max of a component over all valid regions.
    pub fn max(&self, comp: usize) -> f64 {
        (0..self.len())
            .map(|i| self.fabs[i].max_on(&self.layout.ibox(i), comp))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Min of a component over all valid regions.
    pub fn min(&self, comp: usize) -> f64 {
        (0..self.len())
            .map(|i| self.fabs[i].min_on(&self.layout.ibox(i), comp))
            .fold(f64::INFINITY, f64::min)
    }

    /// Sum of a component over all valid regions (a conserved total).
    pub fn sum(&self, comp: usize) -> f64 {
        (0..self.len())
            .map(|i| self.fabs[i].sum_on(&self.layout.ibox(i), comp))
            .sum()
    }
}

/// Split a mutable slice into two distinct element references.
fn split_two<T>(v: &mut [T], a: usize, b: usize) -> (&T, &mut T) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intvect::IntVect;
    use crate::layout::Grid;

    fn two_grid_level(periodic: bool) -> LevelData {
        // Domain [0,8)^3 split into x-halves.
        let dom_box = IBox::cube(8);
        let domain = if periodic {
            ProblemDomain::periodic(dom_box)
        } else {
            ProblemDomain::new(dom_box)
        };
        let layout = BoxLayout::new(
            vec![
                Grid {
                    bx: IBox::new(IntVect::ZERO, IntVect::new(3, 7, 7)),
                    rank: 0,
                },
                Grid {
                    bx: IBox::new(IntVect::new(4, 0, 0), IntVect::new(7, 7, 7)),
                    rank: 1,
                },
            ],
            2,
        );
        LevelData::new(layout, domain, 1, 1)
    }

    /// Fill each grid's valid region with a function of the global index.
    fn fill_coords(ld: &mut LevelData) {
        ld.for_each_mut(|vb, fab| {
            for iv in vb.cells() {
                fab.set(iv, 0, (iv[0] * 100 + iv[1] * 10 + iv[2]) as f64);
            }
        });
    }

    fn coord_value(iv: IntVect) -> f64 {
        (iv[0] * 100 + iv[1] * 10 + iv[2]) as f64
    }

    #[test]
    fn exchange_fills_interior_ghosts() {
        let mut ld = two_grid_level(false);
        fill_coords(&mut ld);
        let moved = ld.exchange();
        assert!(moved > 0);
        // Grid 0's ghost layer at x=4 should hold grid 1's values.
        let ghost = IBox::new(IntVect::new(4, 0, 0), IntVect::new(4, 7, 7));
        for iv in ghost.cells() {
            assert_eq!(ld.fab(0).get(iv, 0), coord_value(iv), "at {iv:?}");
        }
        // And vice versa at x=3 for grid 1.
        let ghost = IBox::new(IntVect::new(3, 0, 0), IntVect::new(3, 7, 7));
        for iv in ghost.cells() {
            assert_eq!(ld.fab(1).get(iv, 0), coord_value(iv), "at {iv:?}");
        }
    }

    #[test]
    fn nonperiodic_fabs_are_clipped_at_domain() {
        let ld = two_grid_level(false);
        // Grid 0's fab shouldn't extend below the domain.
        assert_eq!(ld.fab(0).ibox().lo(), IntVect::ZERO);
        // But extends one ghost into grid 1.
        assert_eq!(ld.fab(0).ibox().hi(), IntVect::new(4, 7, 7));
    }

    #[test]
    fn periodic_exchange_wraps() {
        let mut ld = two_grid_level(true);
        fill_coords(&mut ld);
        ld.exchange();
        // Grid 0's ghost at x=-1 should hold wrapped values from x=7 (grid 1).
        let ghost = IBox::new(IntVect::new(-1, 0, 0), IntVect::new(-1, 7, 7));
        for iv in ghost.cells() {
            let wrapped = IntVect::new(7, iv[1], iv[2]);
            assert_eq!(ld.fab(0).get(iv, 0), coord_value(wrapped), "at {iv:?}");
        }
        // y ghosts of grid 0 wrap within... grid 0 itself (self periodic copy).
        let ghost = IBox::new(IntVect::new(0, -1, 0), IntVect::new(3, -1, 7));
        for iv in ghost.cells() {
            let wrapped = IntVect::new(iv[0], 7, iv[2]);
            assert_eq!(ld.fab(0).get(iv, 0), coord_value(wrapped), "at {iv:?}");
        }
    }

    #[test]
    fn exchange_reports_cross_rank_traffic_only() {
        // Same layout but both grids on one rank => zero reported bytes.
        let dom_box = IBox::cube(8);
        let domain = ProblemDomain::new(dom_box);
        let layout = BoxLayout::new(
            vec![
                Grid {
                    bx: IBox::new(IntVect::ZERO, IntVect::new(3, 7, 7)),
                    rank: 0,
                },
                Grid {
                    bx: IBox::new(IntVect::new(4, 0, 0), IntVect::new(7, 7, 7)),
                    rank: 0,
                },
            ],
            1,
        );
        let mut ld = LevelData::new(layout, domain, 1, 1);
        fill_coords(&mut ld);
        assert_eq!(ld.exchange(), 0);
    }

    #[test]
    fn copy_between_layouts() {
        let dom_box = IBox::cube(8);
        let domain = ProblemDomain::new(dom_box);
        let mut a = LevelData::new(BoxLayout::decompose(&domain, 4, 1), domain, 1, 0);
        fill_coords(&mut a);
        let mut b = LevelData::new(BoxLayout::decompose(&domain, 8, 1), domain, 1, 0);
        b.copy_from(&a);
        for i in 0..b.len() {
            let vb = b.valid_box(i);
            for iv in vb.cells() {
                assert_eq!(b.fab(i).get(iv, 0), coord_value(iv));
            }
        }
    }

    #[test]
    fn reductions_over_valid_regions() {
        let mut ld = two_grid_level(false);
        ld.fill(2.0);
        assert_eq!(ld.sum(0), 2.0 * 8.0 * 8.0 * 8.0);
        assert_eq!(ld.max(0), 2.0);
        assert_eq!(ld.min(0), 2.0);
    }

    #[test]
    fn bytes_accounting_per_rank() {
        let ld = two_grid_level(false);
        let per = ld.bytes_per_rank();
        assert_eq!(per.len(), 2);
        assert_eq!(per.iter().sum::<u64>(), ld.bytes());
        // both fabs are 5x8x8 after clipping
        assert_eq!(per[0], per[1]);
    }
}
