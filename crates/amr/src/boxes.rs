//! Box calculus: axis-aligned rectangular regions of index space.
//!
//! `IBox` is the workhorse of block-structured AMR (Chombo's `Box`): a
//! cell-centered region `[lo, hi]` with *inclusive* bounds. The empty box is
//! represented canonically with `lo = (0,0,0)`, `hi = (-1,-1,-1)`.

use crate::intvect::{IntVect, DIM};
use std::fmt;

/// A cell-centered rectangular region of index space with inclusive bounds.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct IBox {
    lo: IntVect,
    hi: IntVect,
}

impl IBox {
    /// The canonical empty box.
    pub const EMPTY: IBox = IBox {
        lo: IntVect([0; DIM]),
        hi: IntVect([-1; DIM]),
    };

    /// Construct from inclusive corners. Returns the canonical empty box if
    /// any component of `lo` exceeds the matching component of `hi`.
    #[inline]
    pub fn new(lo: IntVect, hi: IntVect) -> Self {
        if lo.all_le(hi) {
            IBox { lo, hi }
        } else {
            IBox::EMPTY
        }
    }

    /// A box spanning `[0, size)` in each direction.
    #[inline]
    pub fn from_size(size: IntVect) -> Self {
        IBox::new(IntVect::ZERO, size - IntVect::UNIT)
    }

    /// A cube `[0, n)^3`.
    #[inline]
    pub fn cube(n: i64) -> Self {
        IBox::from_size(IntVect::splat(n))
    }

    /// A box containing the single cell `iv`.
    #[inline]
    pub fn single(iv: IntVect) -> Self {
        IBox { lo: iv, hi: iv }
    }

    /// Low (inclusive) corner.
    #[inline]
    pub fn lo(&self) -> IntVect {
        self.lo
    }

    /// High (inclusive) corner.
    #[inline]
    pub fn hi(&self) -> IntVect {
        self.hi
    }

    /// Number of cells along each direction (zero vector for the empty box).
    #[inline]
    pub fn size(&self) -> IntVect {
        if self.is_empty() {
            IntVect::ZERO
        } else {
            self.hi - self.lo + IntVect::UNIT
        }
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.size().product() as u64
        }
    }

    /// True if the box contains no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        !self.lo.all_le(self.hi)
    }

    /// True if cell `iv` lies inside the box.
    #[inline]
    pub fn contains(&self, iv: IntVect) -> bool {
        self.lo.all_le(iv) && iv.all_le(self.hi)
    }

    /// True if `other` is entirely inside `self`. The empty box is contained
    /// in every box.
    #[inline]
    pub fn contains_box(&self, other: &IBox) -> bool {
        other.is_empty() || (self.contains(other.lo) && self.contains(other.hi))
    }

    /// Intersection of two boxes (possibly empty).
    #[inline]
    pub fn intersect(&self, other: &IBox) -> IBox {
        if self.is_empty() || other.is_empty() {
            return IBox::EMPTY;
        }
        IBox::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// True if the two boxes share at least one cell.
    #[inline]
    pub fn intersects(&self, other: &IBox) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Grow (or shrink, for negative `n`) by `n` cells in every direction.
    #[inline]
    pub fn grow(&self, n: i64) -> IBox {
        if self.is_empty() {
            return IBox::EMPTY;
        }
        IBox::new(self.lo - IntVect::splat(n), self.hi + IntVect::splat(n))
    }

    /// Grow by `n` cells in direction `d` only (both sides).
    #[inline]
    pub fn grow_dir(&self, d: usize, n: i64) -> IBox {
        if self.is_empty() {
            return IBox::EMPTY;
        }
        let mut lo = self.lo;
        let mut hi = self.hi;
        lo[d] -= n;
        hi[d] += n;
        IBox::new(lo, hi)
    }

    /// Translate by `shift`.
    #[inline]
    pub fn shift(&self, shift: IntVect) -> IBox {
        if self.is_empty() {
            return IBox::EMPTY;
        }
        IBox {
            lo: self.lo + shift,
            hi: self.hi + shift,
        }
    }

    /// Refine by a positive ratio: each cell becomes `ratio^DIM` cells.
    #[inline]
    pub fn refine(&self, ratio: i64) -> IBox {
        if self.is_empty() {
            return IBox::EMPTY;
        }
        IBox {
            lo: self.lo.refine(ratio),
            hi: (self.hi + IntVect::UNIT).refine(ratio) - IntVect::UNIT,
        }
    }

    /// Coarsen by a positive ratio: the image is the smallest box containing
    /// the coarsened cells.
    #[inline]
    pub fn coarsen(&self, ratio: i64) -> IBox {
        if self.is_empty() {
            return IBox::EMPTY;
        }
        IBox {
            lo: self.lo.coarsen(ratio),
            hi: self.hi.coarsen(ratio),
        }
    }

    /// True if coarsening then refining by `ratio` reproduces the box, i.e.
    /// the box aligns with the coarser lattice.
    #[inline]
    pub fn is_aligned(&self, ratio: i64) -> bool {
        self.is_empty() || self.coarsen(ratio).refine(ratio) == *self
    }

    /// The smallest box containing both operands.
    #[inline]
    pub fn hull(&self, other: &IBox) -> IBox {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        IBox {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The length of the longest edge.
    #[inline]
    pub fn longest_side(&self) -> i64 {
        self.size().max_component()
    }

    /// The direction index of the longest edge (ties broken low).
    #[inline]
    pub fn longest_dir(&self) -> usize {
        let s = self.size();
        let mut best = 0;
        for d in 1..DIM {
            if s[d] > s[best] {
                best = d;
            }
        }
        best
    }

    /// Split the box into two at plane `at` along direction `d`:
    /// cells with index `< at` go left, the rest go right.
    pub fn split_at(&self, d: usize, at: i64) -> (IBox, IBox) {
        debug_assert!(at > self.lo[d] && at <= self.hi[d]);
        let mut left_hi = self.hi;
        left_hi[d] = at - 1;
        let mut right_lo = self.lo;
        right_lo[d] = at;
        (IBox::new(self.lo, left_hi), IBox::new(right_lo, self.hi))
    }

    /// Iterate over every cell in the box in Fortran (x-fastest) order.
    pub fn cells(&self) -> CellIter {
        CellIter {
            b: *self,
            cur: self.lo,
            done: self.is_empty(),
        }
    }

    /// The linear offset of cell `iv` in Fortran order within this box.
    #[inline]
    pub fn offset(&self, iv: IntVect) -> usize {
        debug_assert!(self.contains(iv), "cell {iv:?} outside box {self:?}");
        let s = self.size();
        let r = iv - self.lo;
        (r[0] + s[0] * (r[1] + s[1] * r[2])) as usize
    }

    /// Subtract `other` from `self`, producing up to 6 disjoint boxes whose
    /// union is `self \ other`.
    pub fn subtract(&self, other: &IBox) -> Vec<IBox> {
        let inter = self.intersect(other);
        if inter.is_empty() {
            return vec![*self];
        }
        if inter == *self {
            return Vec::new();
        }
        let mut pieces = Vec::new();
        let mut rest = *self;
        // Slab decomposition: peel off the part below/above the intersection
        // in each direction in turn.
        for d in 0..DIM {
            if rest.lo[d] < inter.lo[d] {
                let (below, keep) = rest.split_at(d, inter.lo[d]);
                pieces.push(below);
                rest = keep;
            }
            if rest.hi[d] > inter.hi[d] {
                let (keep, above) = rest.split_at(d, inter.hi[d] + 1);
                pieces.push(above);
                rest = keep;
            }
        }
        debug_assert_eq!(rest, inter);
        pieces
    }
}

impl fmt::Debug for IBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[empty]")
        } else {
            write!(f, "[{:?}..{:?}]", self.lo, self.hi)
        }
    }
}

impl fmt::Display for IBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over cells of a box in Fortran (x-fastest) order.
pub struct CellIter {
    b: IBox,
    cur: IntVect,
    done: bool,
}

impl Iterator for CellIter {
    type Item = IntVect;

    fn next(&mut self) -> Option<IntVect> {
        if self.done {
            return None;
        }
        let out = self.cur;
        // advance
        let mut d = 0;
        loop {
            self.cur[d] += 1;
            if self.cur[d] <= self.b.hi()[d] {
                break;
            }
            self.cur[d] = self.b.lo()[d];
            d += 1;
            if d == DIM {
                self.done = true;
                break;
            }
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        // Remaining count in Fortran order.
        let s = self.b.size();
        let r = self.cur - self.b.lo();
        let consumed = (r[0] + s[0] * (r[1] + s[1] * r[2])) as usize;
        let total = self.b.num_cells() as usize;
        let rem = total - consumed;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for CellIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_size() {
        let b = IBox::new(IntVect::new(0, 0, 0), IntVect::new(3, 1, 0));
        assert_eq!(b.size(), IntVect::new(4, 2, 1));
        assert_eq!(b.num_cells(), 8);
        assert!(!b.is_empty());
    }

    #[test]
    fn inverted_bounds_are_empty() {
        let b = IBox::new(IntVect::new(2, 0, 0), IntVect::new(1, 5, 5));
        assert!(b.is_empty());
        assert_eq!(b, IBox::EMPTY);
        assert_eq!(b.num_cells(), 0);
    }

    #[test]
    fn intersection() {
        let a = IBox::cube(8);
        let b = IBox::new(IntVect::splat(4), IntVect::splat(11));
        let i = a.intersect(&b);
        assert_eq!(i, IBox::new(IntVect::splat(4), IntVect::splat(7)));
        assert!(a.intersects(&b));
        let c = IBox::new(IntVect::splat(100), IntVect::splat(101));
        assert!(!a.intersects(&c));
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn grow_and_shrink() {
        let b = IBox::cube(4);
        assert_eq!(b.grow(2), IBox::new(IntVect::splat(-2), IntVect::splat(5)));
        assert_eq!(b.grow(2).grow(-2), b);
        // Shrinking past empty yields empty.
        assert!(IBox::cube(2).grow(-2).is_empty());
    }

    #[test]
    fn refine_coarsen_roundtrip() {
        let b = IBox::new(IntVect::new(-4, 0, 2), IntVect::new(3, 7, 5));
        let r = b.refine(2);
        assert_eq!(r.num_cells(), b.num_cells() * 8);
        assert_eq!(r.coarsen(2), b);
        assert!(r.is_aligned(2));
    }

    #[test]
    fn coarsen_covers() {
        // Coarsening always produces a box whose refinement covers the original.
        let b = IBox::new(IntVect::new(1, 3, 5), IntVect::new(6, 9, 11));
        let c = b.coarsen(4);
        assert!(c.refine(4).contains_box(&b));
    }

    #[test]
    fn split() {
        let b = IBox::cube(8);
        let (l, r) = b.split_at(0, 3);
        assert_eq!(l.num_cells() + r.num_cells(), b.num_cells());
        assert!(!l.intersects(&r));
        assert_eq!(l.hull(&r), b);
    }

    #[test]
    fn cell_iteration_order_and_offsets() {
        let b = IBox::new(IntVect::new(1, 2, 3), IntVect::new(2, 3, 4));
        let cells: Vec<_> = b.cells().collect();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0], IntVect::new(1, 2, 3));
        assert_eq!(cells[1], IntVect::new(2, 2, 3)); // x fastest
        assert_eq!(cells[2], IntVect::new(1, 3, 3));
        for (n, c) in cells.iter().enumerate() {
            assert_eq!(b.offset(*c), n);
        }
    }

    #[test]
    fn subtract_disjoint_union() {
        let a = IBox::cube(8);
        let b = IBox::new(IntVect::splat(2), IntVect::splat(5));
        let pieces = a.subtract(&b);
        let total: u64 = pieces.iter().map(|p| p.num_cells()).sum();
        assert_eq!(total, a.num_cells() - b.num_cells());
        for (i, p) in pieces.iter().enumerate() {
            assert!(!p.intersects(&b));
            for q in &pieces[i + 1..] {
                assert!(!p.intersects(q));
            }
        }
    }

    #[test]
    fn subtract_no_overlap_returns_self() {
        let a = IBox::cube(4);
        let b = IBox::new(IntVect::splat(10), IntVect::splat(12));
        assert_eq!(a.subtract(&b), vec![a]);
    }

    #[test]
    fn subtract_total_overlap_returns_empty() {
        let a = IBox::cube(4);
        assert!(a.subtract(&a.grow(1)).is_empty());
    }

    #[test]
    fn longest_side_and_dir() {
        let b = IBox::new(IntVect::ZERO, IntVect::new(3, 9, 5));
        assert_eq!(b.longest_side(), 10);
        assert_eq!(b.longest_dir(), 1);
    }

    #[test]
    fn exact_size_iterator() {
        let b = IBox::cube(3);
        let mut it = b.cells();
        assert_eq!(it.len(), 27);
        it.next();
        assert_eq!(it.len(), 26);
    }
}
