//! # xlayer-amr — block-structured adaptive mesh refinement
//!
//! A from-scratch, Chombo-like AMR substrate: the dynamic simulation side of
//! the coupled workflow in *Jin et al., "Using Cross-Layer Adaptations for
//! Dynamic Data Management in Large Scale Coupled Scientific Workflows"*
//! (SC '13).
//!
//! The crate provides:
//! * box calculus over 3-D index space ([`boxes::IBox`], [`intvect::IntVect`]),
//! * distributed level data with ghost exchange ([`level_data::LevelData`]),
//!   scheduled through a cached, parallel copier ([`copier::ExchangeCopier`]),
//! * tag-driven grid generation (Berger–Rigoutsos, [`cluster`]),
//! * a dynamic level hierarchy with regridding ([`hierarchy::AmrHierarchy`]),
//! * load balancing strategies ([`balance`]),
//! * the per-rank memory observables the adaptation runtime monitors
//!   ([`memory`], with real allocation accounting in [`fab`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod boxes;
pub mod cluster;
pub mod copier;
pub mod domain;
pub mod fab;
pub mod flux_register;
pub mod hierarchy;
pub mod intvect;
pub mod layout;
pub mod level_data;
pub mod memory;
pub mod plotfile;
pub mod tagging;

pub use boxes::IBox;
pub use copier::ExchangeCopier;
pub use domain::ProblemDomain;
pub use fab::Fab;
pub use flux_register::FluxRegister;
pub use hierarchy::{AmrHierarchy, HierarchyConfig};
pub use intvect::{IntVect, DIM};
pub use layout::BoxLayout;
pub use level_data::LevelData;
pub use tagging::IntVectSet;
