//! Problem domains: the index-space extent of a level, with periodicity.

use crate::boxes::IBox;
use crate::intvect::{IntVect, DIM};

/// The computational domain of one AMR level: a box plus periodic flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProblemDomain {
    domain_box: IBox,
    periodic: [bool; DIM],
}

impl ProblemDomain {
    /// A non-periodic domain covering `domain_box`.
    pub fn new(domain_box: IBox) -> Self {
        ProblemDomain {
            domain_box,
            periodic: [false; DIM],
        }
    }

    /// A domain with per-direction periodicity.
    pub fn with_periodicity(domain_box: IBox, periodic: [bool; DIM]) -> Self {
        ProblemDomain {
            domain_box,
            periodic,
        }
    }

    /// A fully periodic domain.
    pub fn periodic(domain_box: IBox) -> Self {
        ProblemDomain {
            domain_box,
            periodic: [true; DIM],
        }
    }

    /// The covering box.
    #[inline]
    pub fn domain_box(&self) -> IBox {
        self.domain_box
    }

    /// Whether direction `d` is periodic.
    #[inline]
    pub fn is_periodic(&self, d: usize) -> bool {
        self.periodic[d]
    }

    /// Whether any direction is periodic.
    #[inline]
    pub fn is_any_periodic(&self) -> bool {
        self.periodic.iter().any(|&p| p)
    }

    /// Refine the domain to the next finer level.
    pub fn refine(&self, ratio: i64) -> ProblemDomain {
        ProblemDomain {
            domain_box: self.domain_box.refine(ratio),
            periodic: self.periodic,
        }
    }

    /// Coarsen the domain to the next coarser level.
    pub fn coarsen(&self, ratio: i64) -> ProblemDomain {
        ProblemDomain {
            domain_box: self.domain_box.coarsen(ratio),
            periodic: self.periodic,
        }
    }

    /// Clip `b` against the domain in non-periodic directions only.
    /// In periodic directions the box is allowed to extend beyond the
    /// domain (ghost cells wrap around).
    pub fn clip(&self, b: &IBox) -> IBox {
        if b.is_empty() {
            return IBox::EMPTY;
        }
        let mut lo = b.lo();
        let mut hi = b.hi();
        for d in 0..DIM {
            if !self.periodic[d] {
                lo[d] = lo[d].max(self.domain_box.lo()[d]);
                hi[d] = hi[d].min(self.domain_box.hi()[d]);
            }
        }
        IBox::new(lo, hi)
    }

    /// True if `b` (after periodic wrapping) lies within the domain.
    pub fn contains_box(&self, b: &IBox) -> bool {
        self.clip(b) == *b
    }

    /// The periodic shift vectors under which `b` images intersect `target`.
    ///
    /// Returns the set of shifts `s` (multiples of the domain size in the
    /// periodic directions, including the zero shift *only if nonzero images
    /// exist is irrelevant — zero is excluded*) such that `b.shift(s)`
    /// intersects `target`. Used during ghost exchange to find wrapped
    /// neighbor copies.
    pub fn periodic_shifts(&self, b: &IBox, target: &IBox) -> Vec<IntVect> {
        if !self.is_any_periodic() || b.is_empty() || target.is_empty() {
            return Vec::new();
        }
        let size = self.domain_box.size();
        let mut shifts = Vec::new();
        // In each periodic direction the image may be shifted by -1, 0 or +1
        // domain lengths (ghost regions never exceed one domain width).
        let range = |d: usize| -> Vec<i64> {
            if self.periodic[d] {
                vec![-1, 0, 1]
            } else {
                vec![0]
            }
        };
        for sx in range(0) {
            for sy in range(1) {
                for sz in range(2) {
                    if sx == 0 && sy == 0 && sz == 0 {
                        continue;
                    }
                    let s = IntVect::new(sx * size[0], sy * size[1], sz * size[2]);
                    if b.shift(s).intersects(target) {
                        shifts.push(s);
                    }
                }
            }
        }
        shifts
    }

    /// Map a cell index into the domain by periodic wrapping. Non-periodic
    /// components are returned unchanged.
    pub fn wrap(&self, iv: IntVect) -> IntVect {
        let mut out = iv;
        let lo = self.domain_box.lo();
        let size = self.domain_box.size();
        for d in 0..DIM {
            if self.periodic[d] {
                out[d] = lo[d] + (iv[d] - lo[d]).rem_euclid(size[d]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_non_periodic() {
        let dom = ProblemDomain::new(IBox::cube(8));
        let b = IBox::new(IntVect::splat(-2), IntVect::splat(9));
        assert_eq!(dom.clip(&b), IBox::cube(8));
    }

    #[test]
    fn clip_periodic_leaves_ghosts() {
        let dom = ProblemDomain::periodic(IBox::cube(8));
        let b = IBox::new(IntVect::splat(-2), IntVect::splat(9));
        assert_eq!(dom.clip(&b), b);
    }

    #[test]
    fn mixed_periodicity() {
        let dom = ProblemDomain::with_periodicity(IBox::cube(8), [true, false, false]);
        let b = IBox::new(IntVect::new(-2, -2, 0), IntVect::new(9, 9, 7));
        let c = dom.clip(&b);
        assert_eq!(c.lo(), IntVect::new(-2, 0, 0));
        assert_eq!(c.hi(), IntVect::new(9, 7, 7));
    }

    #[test]
    fn wrap_indices() {
        let dom = ProblemDomain::periodic(IBox::cube(8));
        assert_eq!(dom.wrap(IntVect::new(-1, 8, 3)), IntVect::new(7, 0, 3));
        assert_eq!(dom.wrap(IntVect::new(16, -9, 0)), IntVect::new(0, 7, 0));
    }

    #[test]
    fn periodic_shifts_found() {
        let dom = ProblemDomain::periodic(IBox::cube(8));
        // Box at low edge; target is ghost region hanging off the high edge.
        let b = IBox::new(IntVect::new(0, 0, 0), IntVect::new(1, 7, 7));
        let target = IBox::new(IntVect::new(8, 0, 0), IntVect::new(9, 7, 7));
        let shifts = dom.periodic_shifts(&b, &target);
        assert_eq!(shifts, vec![IntVect::new(8, 0, 0)]);
    }

    #[test]
    fn no_shifts_without_periodicity() {
        let dom = ProblemDomain::new(IBox::cube(8));
        let b = IBox::cube(8);
        let t = b.shift(IntVect::new(8, 0, 0));
        assert!(dom.periodic_shifts(&b, &t).is_empty());
    }

    #[test]
    fn refine_coarsen() {
        let dom = ProblemDomain::periodic(IBox::cube(8));
        let f = dom.refine(2);
        assert_eq!(f.domain_box(), IBox::cube(16));
        assert!(f.is_periodic(0));
        assert_eq!(f.coarsen(2), dom);
    }
}
