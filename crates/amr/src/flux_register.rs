//! Flux registers: conservative refluxing at coarse–fine boundaries
//! (Chombo's `LevelFluxRegister`).
//!
//! A finite-volume update on the composite grid is conservative only if the
//! coarse cells bordering a fine level are updated with the *fine* fluxes
//! through the shared faces. The register accumulates the defect
//! `D = <F_fine> − F_coarse` on every coarse–fine boundary face during the
//! level advances, and [`FluxRegister::reflux`] applies the correction
//! `±dt/dx · D` to the adjacent uncovered coarse cells afterwards.

use crate::boxes::IBox;
use crate::fab::Fab;
use crate::intvect::{IntVect, DIM};
use crate::layout::BoxLayout;
use crate::level_data::LevelData;
use std::collections::BTreeMap;

/// Face key: `(direction, cell on the face's high side)` — the face lies
/// between `iv - e_d` and `iv`.
type FaceKey = (usize, IntVect);

/// A coarse–fine flux register for one level pair.
#[derive(Debug)]
pub struct FluxRegister {
    ratio: i64,
    ncomp: usize,
    /// Defect per registered boundary face. A `BTreeMap` so iteration —
    /// and therefore the order corrections are applied to a coarse cell
    /// touched by several boundary faces — is deterministic; with a hash
    /// map, refluxed sums differed by an ulp between otherwise identical
    /// runs.
    defects: BTreeMap<FaceKey, Vec<f64>>,
    /// Coarsened fine-level boxes (the covered region).
    covered: Vec<IBox>,
}

impl FluxRegister {
    /// Build a register for the boundary of `fine_layout` (coarsened by
    /// `ratio`) inside the coarse level.
    pub fn new(fine_layout: &BoxLayout, ratio: i64, ncomp: usize) -> Self {
        let covered: Vec<IBox> = fine_layout
            .grids()
            .iter()
            .map(|g| g.bx.coarsen(ratio))
            .collect();
        let in_union = |iv: IntVect| covered.iter().any(|b| b.contains(iv));
        let mut defects = BTreeMap::new();
        for cb in &covered {
            for d in 0..DIM {
                let e = IntVect::basis(d);
                // Low-side faces of cb: keyed by the inside cell at lo.
                let lo_plane = IBox::new(cb.lo(), {
                    let mut hi = cb.hi();
                    hi[d] = cb.lo()[d];
                    hi
                });
                for iv in lo_plane.cells() {
                    if !in_union(iv - e) {
                        defects.insert((d, iv), vec![0.0; ncomp]);
                    }
                }
                // High-side faces: keyed by the outside cell just above hi.
                let hi_plane = IBox::new(
                    {
                        let mut lo = cb.lo();
                        lo[d] = cb.hi()[d] + 1;
                        lo
                    },
                    {
                        let mut hi = cb.hi();
                        hi[d] += 1;
                        hi
                    },
                );
                for iv in hi_plane.cells() {
                    if !in_union(iv) {
                        defects.insert((d, iv), vec![0.0; ncomp]);
                    }
                }
            }
        }
        FluxRegister {
            ratio,
            ncomp,
            defects,
            covered,
        }
    }

    /// Number of registered boundary faces.
    pub fn num_faces(&self) -> usize {
        self.defects.len()
    }

    /// Reset accumulated defects.
    pub fn set_to_zero(&mut self) {
        for v in self.defects.values_mut() {
            v.fill(0.0);
        }
    }

    /// Subtract the coarse flux through every registered face covered by
    /// `flux` (a coarse face fab for direction `d`: value at `iv` is the
    /// flux through the face between `iv - e_d` and `iv`).
    pub fn increment_coarse(&mut self, flux: &Fab, d: usize) {
        self.increment_coarse_scaled(flux, d, 1.0);
    }

    /// [`Self::increment_coarse`] weighted by `w` — subcycled Berger–Oliger
    /// refluxing accumulates time-weighted defects
    /// `D = Σ_k dt_f ⟨F_f⟩ − dt_c F_c` and refluxes with scale `1/dx`.
    pub fn increment_coarse_scaled(&mut self, flux: &Fab, d: usize, w: f64) {
        assert_eq!(flux.ncomp(), self.ncomp);
        let avail = flux.ibox();
        for ((fd, iv), defect) in self.defects.iter_mut() {
            if *fd == d && avail.contains(*iv) {
                for (comp, dv) in defect.iter_mut().enumerate() {
                    *dv -= w * flux.get(*iv, comp);
                }
            }
        }
    }

    /// Add the area-averaged fine fluxes overlying each registered face.
    /// `flux` is a fine face fab for direction `d` (same convention, fine
    /// index space).
    pub fn increment_fine(&mut self, flux: &Fab, d: usize) {
        self.increment_fine_scaled(flux, d, 1.0);
    }

    /// [`Self::increment_fine`] weighted by `w` (the fine sub-step `dt_f`
    /// in subcycled refluxing).
    pub fn increment_fine_scaled(&mut self, flux: &Fab, d: usize, w: f64) {
        assert_eq!(flux.ncomp(), self.ncomp);
        let r = self.ratio;
        let inv_area = 1.0 / (r.pow(DIM as u32 - 1) as f64);
        let avail = flux.ibox();
        for ((fd, civ), defect) in self.defects.iter_mut() {
            if *fd != d {
                continue;
            }
            // Fine faces overlying coarse face (d, civ): normal index is
            // exactly civ[d] * r; transverse indices span the r × r patch.
            let mut lo = civ.refine(r);
            let mut hi = lo + IntVect::splat(r - 1);
            lo[d] = civ[d] * r;
            hi[d] = civ[d] * r;
            let patch = IBox::new(lo, hi);
            if !avail.contains_box(&patch) {
                continue;
            }
            for fiv in patch.cells() {
                for (comp, dv) in defect.iter_mut().enumerate() {
                    *dv += w * flux.get(fiv, comp) * inv_area;
                }
            }
        }
    }

    /// Apply the correction `±dtdx · D` to the uncovered coarse cells
    /// adjacent to each registered face.
    pub fn reflux(&self, coarse: &mut LevelData, dtdx: f64) {
        assert_eq!(coarse.ncomp(), self.ncomp);
        let in_union = |iv: IntVect| self.covered.iter().any(|b| b.contains(iv));
        for ((d, iv), defect) in &self.defects {
            let e = IntVect::basis(*d);
            let low_cell = *iv - e;
            // Exactly one side of a boundary face is uncovered.
            let (target, sign) = if in_union(low_cell) {
                (*iv, 1.0)
            } else {
                (low_cell, -1.0)
            };
            for i in 0..coarse.len() {
                if coarse.valid_box(i).contains(target) {
                    let fab = coarse.fab_mut(i);
                    for (comp, dv) in defect.iter().enumerate() {
                        let u = fab.get(target, comp);
                        fab.set(target, comp, u + sign * dtdx * dv);
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::ProblemDomain;
    use crate::layout::Grid;

    fn fine_layout_one_box() -> BoxLayout {
        // Fine box [8,15]^3 (coarse [4,7]^3) inside a 16^3 coarse domain.
        BoxLayout::new(
            vec![Grid {
                bx: IBox::new(IntVect::splat(8), IntVect::splat(15)),
                rank: 0,
            }],
            1,
        )
    }

    #[test]
    fn face_count_of_a_cube() {
        let reg = FluxRegister::new(&fine_layout_one_box(), 2, 1);
        // A 4^3 coarse cube has 6 × 16 boundary faces.
        assert_eq!(reg.num_faces(), 96);
    }

    #[test]
    fn adjacent_fine_boxes_share_no_interior_faces() {
        // Two fine boxes sharing a face: the shared face is interior and
        // must not be registered.
        let layout = BoxLayout::new(
            vec![
                Grid {
                    bx: IBox::new(IntVect::new(8, 8, 8), IntVect::new(11, 15, 15)),
                    rank: 0,
                },
                Grid {
                    bx: IBox::new(IntVect::new(12, 8, 8), IntVect::new(15, 15, 15)),
                    rank: 0,
                },
            ],
            1,
        );
        let reg = FluxRegister::new(&layout, 2, 1);
        // Union coarse box is still [4,7]^3 → same 96 boundary faces.
        assert_eq!(reg.num_faces(), 96);
    }

    #[test]
    fn matching_fluxes_cancel() {
        // If the averaged fine flux equals the coarse flux, refluxing is a
        // no-op.
        let mut reg = FluxRegister::new(&fine_layout_one_box(), 2, 1);
        // Coarse flux = 3.0 everywhere (faces keyed over the whole domain).
        let cflux = Fab::filled(IBox::cube(17).grow(1), 1, 3.0);
        for d in 0..DIM {
            reg.increment_coarse(&cflux, d);
        }
        let fflux = Fab::filled(IBox::cube(34).grow(2), 1, 3.0);
        for d in 0..DIM {
            reg.increment_fine(&fflux, d);
        }
        let domain = ProblemDomain::new(IBox::cube(16));
        let layout = BoxLayout::decompose(&domain, 16, 1);
        let mut coarse = LevelData::new(layout, domain, 1, 0);
        coarse.fill(1.0);
        reg.reflux(&mut coarse, 0.5);
        assert!((coarse.sum(0) - 4096.0).abs() < 1e-9);
        for i in 0..coarse.len() {
            let vb = coarse.valid_box(i);
            for iv in vb.cells() {
                assert!((coarse.fab(i).get(iv, 0) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn defect_moves_mass_to_the_right_side() {
        // Fine flux exceeds coarse flux by 1 on the low-x boundary faces
        // only: the uncovered cell at x=3 (low side) loses dtdx·D, matching
        // the sign convention u_i -= dt/dx (F_hi − F_lo) with F_hi now F̄.
        let mut reg = FluxRegister::new(&fine_layout_one_box(), 2, 1);
        // Coarse flux zero; fine flux 1 only on faces at fine x-index 8.
        let mut fflux = Fab::new(IBox::new(IntVect::new(8, 8, 8), IntVect::new(8, 15, 15)), 1);
        fflux.fill(1.0);
        reg.increment_fine(&fflux, 0);

        let domain = ProblemDomain::new(IBox::cube(16));
        let layout = BoxLayout::decompose(&domain, 16, 1);
        let mut coarse = LevelData::new(layout, domain, 1, 0);
        let before = coarse.sum(0);
        reg.reflux(&mut coarse, 0.25);
        // Only the 16 cells at coarse x=3 adjacent to the fine low face
        // changed, each by −0.25·1.
        let mut changed = 0;
        for iv in IBox::cube(16).cells() {
            let v = coarse.fab(0).get(iv, 0);
            if v != 0.0 {
                changed += 1;
                assert_eq!(iv[0], 3, "unexpected cell {iv:?}");
                assert!((4..8).contains(&iv[1]) && (4..8).contains(&iv[2]));
                assert!((v + 0.25).abs() < 1e-12, "correction {v}");
            }
        }
        assert_eq!(changed, 16);
        assert!((coarse.sum(0) - before + 4.0).abs() < 1e-12);
    }

    #[test]
    fn set_to_zero_clears() {
        let mut reg = FluxRegister::new(&fine_layout_one_box(), 2, 1);
        let fflux = Fab::filled(IBox::cube(34).grow(2), 1, 1.0);
        reg.increment_fine(&fflux, 0);
        reg.set_to_zero();
        let domain = ProblemDomain::new(IBox::cube(16));
        let layout = BoxLayout::decompose(&domain, 16, 1);
        let mut coarse = LevelData::new(layout, domain, 1, 0);
        reg.reflux(&mut coarse, 1.0);
        assert_eq!(coarse.sum(0), 0.0);
    }
}
