//! Load balancing: assign grids to ranks.
//!
//! The paper's workloads suffer erratic, imbalanced memory and compute loads
//! (Fig. 1) precisely because balancing cell counts cannot capture dynamic
//! refinement. We provide the three balancers ablated in DESIGN.md: knapsack
//! (Chombo's default, longest-processing-time), Morton space-filling-curve,
//! and naive round-robin.

use crate::boxes::IBox;
use crate::layout::BoxLayout;

/// Strategy for assigning grids to ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Balancer {
    /// Longest-processing-time-first greedy knapsack on cell counts.
    Knapsack,
    /// Sort grids along a Morton (Z-order) curve and cut into equal-load
    /// contiguous chunks — preserves locality.
    MortonSfc,
    /// Grid `i` goes to rank `i % nranks`.
    RoundRobin,
}

/// Assign each box a rank using `balancer`; returns one rank per box.
pub fn assign_ranks(boxes: &[IBox], nranks: usize, balancer: Balancer) -> Vec<usize> {
    assert!(nranks > 0);
    match balancer {
        Balancer::RoundRobin => (0..boxes.len()).map(|i| i % nranks).collect(),
        Balancer::Knapsack => knapsack(boxes, nranks),
        Balancer::MortonSfc => morton(boxes, nranks),
    }
}

/// Rebalance an existing layout in place (same boxes, new ranks).
pub fn rebalance(layout: &BoxLayout, nranks: usize, balancer: Balancer) -> BoxLayout {
    let boxes: Vec<IBox> = layout.grids().iter().map(|g| g.bx).collect();
    let ranks = assign_ranks(&boxes, nranks, balancer);
    layout.with_ranks(&ranks, nranks)
}

fn knapsack(boxes: &[IBox], nranks: usize) -> Vec<usize> {
    // LPT: sort by descending load, place each on the least-loaded rank.
    let mut order: Vec<usize> = (0..boxes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(boxes[i].num_cells()));
    let mut load = vec![0u64; nranks];
    let mut assign = vec![0usize; boxes.len()];
    for i in order {
        let r = load
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .map(|(r, _)| r)
            .expect("nranks > 0");
        assign[i] = r;
        load[r] += boxes[i].num_cells();
    }
    assign
}

fn morton(boxes: &[IBox], nranks: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..boxes.len()).collect();
    order.sort_by_key(|&i| {
        let c = boxes[i].lo() + boxes[i].size() / 2;
        morton_key(c[0], c[1], c[2])
    });
    // Cut the curve into nranks chunks of roughly equal cell count.
    let total: u64 = boxes.iter().map(|b| b.num_cells()).sum();
    let target = total.div_ceil(nranks as u64).max(1);
    let mut assign = vec![0usize; boxes.len()];
    let mut rank = 0usize;
    let mut acc = 0u64;
    for &i in &order {
        if acc >= target && rank + 1 < nranks {
            rank += 1;
            acc = 0;
        }
        assign[i] = rank;
        acc += boxes[i].num_cells();
    }
    assign
}

/// Interleave the low 21 bits of three coordinates into a Morton key.
/// Coordinates are offset to be non-negative first.
fn morton_key(x: i64, y: i64, z: i64) -> u64 {
    const BIAS: i64 = 1 << 20;
    let (x, y, z) = (
        (x + BIAS).max(0) as u64,
        (y + BIAS).max(0) as u64,
        (z + BIAS).max(0) as u64,
    );
    part1by2(x) | (part1by2(y) << 1) | (part1by2(z) << 2)
}

/// Spread the low 21 bits of `v` so consecutive bits are 3 apart.
fn part1by2(mut v: u64) -> u64 {
    v &= 0x1f_ffff;
    v = (v | (v << 32)) & 0x1f00000000ffff;
    v = (v | (v << 16)) & 0x1f0000ff0000ff;
    v = (v | (v << 8)) & 0x100f00f00f00f00f;
    v = (v | (v << 4)) & 0x10c30c30c30c30c3;
    v = (v | (v << 2)) & 0x1249249249249249;
    v
}

/// Max-over-mean load (cells) produced by an assignment.
pub fn imbalance_of(boxes: &[IBox], assign: &[usize], nranks: usize) -> f64 {
    let mut load = vec![0u64; nranks];
    for (b, &r) in boxes.iter().zip(assign) {
        load[r] += b.num_cells();
    }
    let max = *load.iter().max().unwrap_or(&0) as f64;
    let mean = boxes.iter().map(|b| b.num_cells()).sum::<u64>() as f64 / nranks as f64;
    // xlint: allow(F) -- exact zero guard: mean is 0.0 iff there are no cells
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intvect::IntVect;
    use crate::layout::split_box;

    fn mixed_boxes() -> Vec<IBox> {
        // Boxes of very different sizes.
        let mut v = Vec::new();
        for i in 0..16i64 {
            let side = 2 + (i % 5) * 3;
            let lo = IntVect::new(i * 32, 0, 0);
            v.push(IBox::new(lo, lo + IntVect::splat(side - 1)));
        }
        v
    }

    #[test]
    fn knapsack_beats_round_robin_on_skewed_loads() {
        let boxes = mixed_boxes();
        let k = assign_ranks(&boxes, 4, Balancer::Knapsack);
        let rr = assign_ranks(&boxes, 4, Balancer::RoundRobin);
        assert!(imbalance_of(&boxes, &k, 4) <= imbalance_of(&boxes, &rr, 4) + 1e-12);
    }

    #[test]
    fn all_ranks_in_range() {
        let boxes = mixed_boxes();
        for bal in [
            Balancer::Knapsack,
            Balancer::MortonSfc,
            Balancer::RoundRobin,
        ] {
            let a = assign_ranks(&boxes, 3, bal);
            assert_eq!(a.len(), boxes.len());
            assert!(a.iter().all(|&r| r < 3));
        }
    }

    #[test]
    fn knapsack_near_optimal_on_equal_boxes() {
        let boxes = split_box(IBox::cube(32), 8); // 64 equal boxes
        let a = assign_ranks(&boxes, 8, Balancer::Knapsack);
        assert!((imbalance_of(&boxes, &a, 8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn morton_preserves_locality() {
        // Boxes along x should map to contiguous rank blocks.
        let boxes: Vec<IBox> = (0..8)
            .map(|i| IBox::cube(4).shift(IntVect::new(4 * i, 0, 0)))
            .collect();
        let a = assign_ranks(&boxes, 4, Balancer::MortonSfc);
        // Each rank owns a contiguous run.
        let mut seen_last = a[0];
        let mut transitions = 0;
        for &r in &a[1..] {
            if r != seen_last {
                transitions += 1;
                seen_last = r;
            }
        }
        assert_eq!(
            transitions, 3,
            "ranks not contiguous along the curve: {a:?}"
        );
    }

    #[test]
    fn morton_key_orders_quadrants() {
        // (0,0,0) quadrant keys < keys of points far along any axis.
        assert!(morton_key(0, 0, 0) < morton_key(100, 0, 0));
        assert!(morton_key(1, 1, 1) < morton_key(64, 64, 64));
    }

    #[test]
    fn single_rank_degenerate() {
        let boxes = mixed_boxes();
        for bal in [
            Balancer::Knapsack,
            Balancer::MortonSfc,
            Balancer::RoundRobin,
        ] {
            let a = assign_ranks(&boxes, 1, bal);
            assert!(a.iter().all(|&r| r == 0));
        }
    }
}
