//! Integer vectors indexing cells of a 3-D structured grid.
//!
//! `IntVect` is the fundamental index type of the AMR substrate, playing the
//! same role as Chombo's `IntVect`: it names a cell (or node) of a uniform
//! lattice at some refinement level.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// Number of spatial dimensions. The paper's workloads are 3-D.
pub const DIM: usize = 3;

/// An integer point in `DIM`-dimensional index space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct IntVect(pub [i64; DIM]);

impl IntVect {
    /// The zero vector.
    pub const ZERO: IntVect = IntVect([0; DIM]);
    /// The unit vector (1, 1, 1).
    pub const UNIT: IntVect = IntVect([1; DIM]);

    /// Construct from components.
    #[inline]
    pub const fn new(i: i64, j: i64, k: i64) -> Self {
        IntVect([i, j, k])
    }

    /// A vector with every component equal to `v`.
    #[inline]
    pub const fn splat(v: i64) -> Self {
        IntVect([v; DIM])
    }

    /// The basis vector along direction `d` (0 ≤ d < DIM).
    #[inline]
    pub fn basis(d: usize) -> Self {
        let mut iv = IntVect::ZERO;
        iv.0[d] = 1;
        iv
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        let mut r = self;
        for d in 0..DIM {
            r.0[d] = r.0[d].min(other.0[d]);
        }
        r
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        let mut r = self;
        for d in 0..DIM {
            r.0[d] = r.0[d].max(other.0[d]);
        }
        r
    }

    /// Floor division by a positive refinement ratio, component-wise.
    ///
    /// This is the *coarsening* map: it rounds toward negative infinity so
    /// that cells with negative indices coarsen correctly (Chombo's
    /// `coarsen` semantics).
    #[inline]
    pub fn coarsen(self, ratio: i64) -> Self {
        debug_assert!(ratio > 0);
        let mut r = self;
        for d in 0..DIM {
            r.0[d] = r.0[d].div_euclid(ratio);
        }
        r
    }

    /// Multiplication by a positive refinement ratio, component-wise.
    #[inline]
    pub fn refine(self, ratio: i64) -> Self {
        debug_assert!(ratio > 0);
        let mut r = self;
        for d in 0..DIM {
            r.0[d] *= ratio;
        }
        r
    }

    /// Sum of all components.
    #[inline]
    pub fn sum(self) -> i64 {
        self.0.iter().sum()
    }

    /// Product of all components.
    #[inline]
    pub fn product(self) -> i64 {
        self.0.iter().product()
    }

    /// True if every component of `self` is ≤ the matching component of `other`.
    #[inline]
    pub fn all_le(self, other: Self) -> bool {
        (0..DIM).all(|d| self.0[d] <= other.0[d])
    }

    /// True if every component of `self` is ≥ the matching component of `other`.
    #[inline]
    pub fn all_ge(self, other: Self) -> bool {
        (0..DIM).all(|d| self.0[d] >= other.0[d])
    }

    /// The maximum component value.
    #[inline]
    pub fn max_component(self) -> i64 {
        *self.0.iter().max().expect("DIM > 0")
    }

    /// The minimum component value.
    #[inline]
    pub fn min_component(self) -> i64 {
        *self.0.iter().min().expect("DIM > 0")
    }
}

impl Index<usize> for IntVect {
    type Output = i64;
    #[inline]
    fn index(&self, d: usize) -> &i64 {
        &self.0[d]
    }
}

impl IndexMut<usize> for IntVect {
    #[inline]
    fn index_mut(&mut self, d: usize) -> &mut i64 {
        &mut self.0[d]
    }
}

impl Add for IntVect {
    type Output = IntVect;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut r = self;
        for d in 0..DIM {
            r.0[d] += rhs.0[d];
        }
        r
    }
}

impl AddAssign for IntVect {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        for d in 0..DIM {
            self.0[d] += rhs.0[d];
        }
    }
}

impl Sub for IntVect {
    type Output = IntVect;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let mut r = self;
        for d in 0..DIM {
            r.0[d] -= rhs.0[d];
        }
        r
    }
}

impl SubAssign for IntVect {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        for d in 0..DIM {
            self.0[d] -= rhs.0[d];
        }
    }
}

impl Mul<i64> for IntVect {
    type Output = IntVect;
    #[inline]
    fn mul(self, s: i64) -> Self {
        let mut r = self;
        for d in 0..DIM {
            r.0[d] *= s;
        }
        r
    }
}

impl Div<i64> for IntVect {
    type Output = IntVect;
    /// Truncating division (like integer `/`). For coarsening use
    /// [`IntVect::coarsen`], which floors.
    #[inline]
    fn div(self, s: i64) -> Self {
        let mut r = self;
        for d in 0..DIM {
            r.0[d] /= s;
        }
        r
    }
}

impl Neg for IntVect {
    type Output = IntVect;
    #[inline]
    fn neg(self) -> Self {
        let mut r = self;
        for d in 0..DIM {
            r.0[d] = -r.0[d];
        }
        r
    }
}

impl fmt::Debug for IntVect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.0[0], self.0[1], self.0[2])
    }
}

impl fmt::Display for IntVect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<[i64; DIM]> for IntVect {
    fn from(a: [i64; DIM]) -> Self {
        IntVect(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = IntVect::new(1, 2, 3);
        let b = IntVect::new(4, 5, 6);
        assert_eq!(a + b, IntVect::new(5, 7, 9));
        assert_eq!(b - a, IntVect::new(3, 3, 3));
        assert_eq!(a * 2, IntVect::new(2, 4, 6));
        assert_eq!(-a, IntVect::new(-1, -2, -3));
    }

    #[test]
    fn min_max() {
        let a = IntVect::new(1, 5, 3);
        let b = IntVect::new(4, 2, 6);
        assert_eq!(a.min(b), IntVect::new(1, 2, 3));
        assert_eq!(a.max(b), IntVect::new(4, 5, 6));
        assert_eq!(a.max_component(), 5);
        assert_eq!(a.min_component(), 1);
    }

    #[test]
    fn coarsen_floors_toward_negative_infinity() {
        assert_eq!(
            IntVect::new(-1, -2, -4).coarsen(2),
            IntVect::new(-1, -1, -2)
        );
        assert_eq!(IntVect::new(3, 4, 5).coarsen(2), IntVect::new(1, 2, 2));
        assert_eq!(IntVect::new(-3, 0, 7).coarsen(4), IntVect::new(-1, 0, 1));
    }

    #[test]
    fn refine_then_coarsen_is_identity() {
        for r in [2, 4, 8] {
            for v in [-7i64, -1, 0, 1, 13] {
                let iv = IntVect::splat(v);
                assert_eq!(iv.refine(r).coarsen(r), iv);
            }
        }
    }

    #[test]
    fn basis_vectors() {
        assert_eq!(IntVect::basis(0), IntVect::new(1, 0, 0));
        assert_eq!(IntVect::basis(1), IntVect::new(0, 1, 0));
        assert_eq!(IntVect::basis(2), IntVect::new(0, 0, 1));
    }

    #[test]
    fn reductions_and_comparisons() {
        let a = IntVect::new(2, 3, 4);
        assert_eq!(a.sum(), 9);
        assert_eq!(a.product(), 24);
        assert!(a.all_le(IntVect::splat(4)));
        assert!(!a.all_le(IntVect::splat(3)));
        assert!(a.all_ge(IntVect::splat(2)));
    }
}
