//! Per-rank memory profiling of an AMR hierarchy.
//!
//! The paper's Fig. 1 plots the distribution of peak memory per process for
//! a Chombo Polytropic Gas run: erratic growth over time and strong
//! imbalance across ranks. This module extracts exactly those observables
//! from a hierarchy, and they feed the Monitor (`xlayer-core`).

use crate::hierarchy::AmrHierarchy;

/// Snapshot of memory usage across ranks at one time step.
#[derive(Clone, Debug, PartialEq)]
pub struct MemoryProfile {
    /// Simulation time step the snapshot was taken at.
    pub step: u64,
    /// Payload bytes held by each rank (grid data incl. ghosts).
    pub bytes_per_rank: Vec<u64>,
}

impl MemoryProfile {
    /// Capture the current per-rank memory of `h`.
    pub fn capture(step: u64, h: &AmrHierarchy) -> Self {
        MemoryProfile {
            step,
            bytes_per_rank: h.bytes_per_rank(),
        }
    }

    /// Total bytes across all ranks.
    pub fn total(&self) -> u64 {
        self.bytes_per_rank.iter().sum()
    }

    /// Max bytes on any rank.
    pub fn max(&self) -> u64 {
        *self.bytes_per_rank.iter().max().unwrap_or(&0)
    }

    /// Min bytes on any rank.
    pub fn min(&self) -> u64 {
        *self.bytes_per_rank.iter().min().unwrap_or(&0)
    }

    /// Mean bytes per rank.
    pub fn mean(&self) -> f64 {
        if self.bytes_per_rank.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.bytes_per_rank.len() as f64
        }
    }

    /// Max-over-mean imbalance (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        let m = self.mean();
        // xlint: allow(F) -- exact zero guard against division by an empty mean
        if m == 0.0 {
            1.0
        } else {
            self.max() as f64 / m
        }
    }

    /// Percentile (0–100) of the per-rank distribution, nearest-rank method.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.bytes_per_rank.is_empty() {
            return 0;
        }
        let mut v = self.bytes_per_rank.clone();
        v.sort_unstable();
        let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
        v[rank.clamp(1, v.len()) - 1]
    }
}

/// A time series of memory profiles — the raw material of Fig. 1.
#[derive(Clone, Debug, Default)]
pub struct MemoryHistory {
    profiles: Vec<MemoryProfile>,
}

impl MemoryHistory {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a snapshot.
    pub fn record(&mut self, p: MemoryProfile) {
        self.profiles.push(p);
    }

    /// All snapshots in order.
    pub fn profiles(&self) -> &[MemoryProfile] {
        &self.profiles
    }

    /// Peak memory observed on each rank over the whole history.
    pub fn peak_per_rank(&self) -> Vec<u64> {
        let Some(first) = self.profiles.first() else {
            return Vec::new();
        };
        let n = first.bytes_per_rank.len();
        let mut peak = vec![0u64; n];
        for p in &self.profiles {
            for (i, &b) in p.bytes_per_rank.iter().enumerate() {
                peak[i] = peak[i].max(b);
            }
        }
        peak
    }

    /// Step-over-step growth of total memory (bytes; may be negative after
    /// coarsening).
    pub fn growth(&self) -> Vec<i64> {
        self.profiles
            .windows(2)
            .map(|w| w[1].total() as i64 - w[0].total() as i64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(step: u64, bytes: &[u64]) -> MemoryProfile {
        MemoryProfile {
            step,
            bytes_per_rank: bytes.to_vec(),
        }
    }

    #[test]
    fn stats() {
        let p = profile(0, &[10, 20, 30, 40]);
        assert_eq!(p.total(), 100);
        assert_eq!(p.max(), 40);
        assert_eq!(p.min(), 10);
        assert_eq!(p.mean(), 25.0);
        assert_eq!(p.imbalance(), 1.6);
    }

    #[test]
    fn percentiles() {
        let p = profile(0, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(p.percentile(50.0), 5);
        assert_eq!(p.percentile(100.0), 10);
        assert_eq!(p.percentile(10.0), 1);
    }

    #[test]
    fn history_peaks_and_growth() {
        let mut h = MemoryHistory::new();
        h.record(profile(0, &[10, 50]));
        h.record(profile(1, &[30, 20]));
        h.record(profile(2, &[25, 60]));
        assert_eq!(h.peak_per_rank(), vec![30, 60]);
        assert_eq!(h.growth(), vec![-10, 35]);
    }

    #[test]
    fn empty_history() {
        let h = MemoryHistory::new();
        assert!(h.peak_per_rank().is_empty());
        assert!(h.growth().is_empty());
    }
}
