//! `ExchangeCopier`: a cached, reusable ghost-exchange plan.
//!
//! Building an exchange plan is O(n_grids²) box calculus (every grid's ghost
//! regions intersected against every other grid's valid region plus its
//! periodic images). The plan only depends on (layout, domain, nghost,
//! ncomp) — none of which change between solver steps — so recomputing it on
//! every [`crate::level_data::LevelData::exchange`] call dominates the cost
//! of the exchange itself once a level has more than a handful of grids.
//!
//! The copier caches the op list together with everything derived from it:
//!
//! * ops grouped by destination grid, so the scatter phase can run in
//!   parallel over fabs (distinct destination fabs are disjoint storage);
//! * per-op offsets into a single reusable pack buffer, so the pack phase
//!   writes disjoint slices of one scratch `Vec<f64>` (no per-op allocation,
//!   and in particular no full-fab clone for periodic self-copies);
//! * the pre-summed cross-rank byte count, which must equal the op-by-op
//!   accounting of the uncached path exactly.
//!
//! Execution is two-phase — pack every source region into the scratch
//! buffer, then scatter each slice into its destination fab. Every ghost
//! cell is written by exactly one op (ghost regions are disjoint by
//! construction, source valid boxes are disjoint, and the periodic preimage
//! of a cell is unique), so the phases are order-independent and the result
//! is bit-identical to the sequential direct-copy path. Both phases go
//! parallel only above a volume threshold: the vendored `rayon` stand-in
//! spawns scoped threads per call, which would swamp a small exchange.

use crate::domain::ProblemDomain;
use crate::fab::Fab;
use crate::intvect::IntVect;
use crate::layout::{BoxLayout, CopyOp, Grid};

/// Minimum total copy volume (in `f64` values) before the pack and scatter
/// phases use the thread pool. Below this, thread-spawn overhead of the
/// vendored rayon stand-in exceeds the copy cost.
const PAR_THRESHOLD: usize = 1 << 16;

/// Compute the list of copies needed to fill every grid's ghost region from
/// other grids' valid regions, including periodic images.
///
/// This is the uncached planning primitive; [`ExchangeCopier::build`] caches
/// its result along with the derived execution schedule.
pub fn exchange_plan(layout: &BoxLayout, domain: &ProblemDomain, nghost: i64) -> Vec<CopyOp> {
    let mut ops = Vec::new();
    let n = layout.len();
    for dst in 0..n {
        let valid = layout.ibox(dst);
        let grown = domain.clip(&valid.grow(nghost));
        if grown == valid {
            continue;
        }
        let ghost_regions = grown.subtract(&valid);
        for src in 0..n {
            let src_valid = layout.ibox(src);
            for region in &ghost_regions {
                if src != dst {
                    // direct overlap
                    let direct = src_valid.intersect(region);
                    if !direct.is_empty() {
                        ops.push(CopyOp {
                            src,
                            dst,
                            region: direct,
                            shift: IntVect::ZERO,
                        });
                    }
                }
                // periodic images (a grid can feed its own ghosts via wrap)
                for s in domain.periodic_shifts(&src_valid, region) {
                    let img = src_valid.shift(s).intersect(region);
                    if !img.is_empty() {
                        ops.push(CopyOp {
                            src,
                            dst,
                            region: img,
                            shift: -s,
                        });
                    }
                }
            }
        }
    }
    ops
}

/// A cached ghost-exchange schedule for one (layout, domain, nghost, ncomp)
/// configuration, plus the reusable pack buffer that executes it.
#[derive(Debug, Default)]
pub struct ExchangeCopier {
    // Validity key: an exchange plan is a pure function of these four.
    grids: Vec<Grid>,
    nranks: usize,
    domain: Option<ProblemDomain>,
    nghost: i64,
    ncomp: usize,
    // The plan and its derived execution schedule.
    ops: Vec<CopyOp>,
    /// `op_offsets[k]..op_offsets[k + 1]` is op `k`'s slice of the scratch
    /// buffer, in `f64` units.
    op_offsets: Vec<usize>,
    /// Op indices grouped by destination grid (`per_dst[g]` writes fab `g`).
    per_dst: Vec<Vec<usize>>,
    cross_rank_bytes: u64,
    scratch: Vec<f64>,
}

impl ExchangeCopier {
    /// Build the schedule for the given configuration.
    pub fn build(
        layout: &BoxLayout,
        domain: &ProblemDomain,
        nghost: i64,
        ncomp: usize,
    ) -> ExchangeCopier {
        let ops = exchange_plan(layout, domain, nghost);
        let mut op_offsets = Vec::with_capacity(ops.len() + 1);
        let mut per_dst: Vec<Vec<usize>> = vec![Vec::new(); layout.len()];
        let mut cross_rank_bytes = 0u64;
        let mut total = 0usize;
        for (k, op) in ops.iter().enumerate() {
            op_offsets.push(total);
            total += op.region.num_cells() as usize * ncomp;
            per_dst[op.dst].push(k);
            if layout.rank(op.src) != layout.rank(op.dst) {
                cross_rank_bytes +=
                    op.region.num_cells() * ncomp as u64 * std::mem::size_of::<f64>() as u64;
            }
        }
        op_offsets.push(total);
        ExchangeCopier {
            grids: layout.grids().to_vec(),
            nranks: layout.nranks(),
            domain: Some(*domain),
            nghost,
            ncomp,
            ops,
            op_offsets,
            per_dst,
            cross_rank_bytes,
            scratch: Vec::new(),
        }
    }

    /// True if this copier was built for exactly this configuration.
    ///
    /// The check is exact (grid-by-grid), not a hash: it is O(n_grids)
    /// against the O(n_grids²) rebuild it guards, and false sharing of a
    /// stale plan would silently corrupt ghost data.
    pub fn matches(
        &self,
        layout: &BoxLayout,
        domain: &ProblemDomain,
        nghost: i64,
        ncomp: usize,
    ) -> bool {
        self.domain == Some(*domain)
            && self.nghost == nghost
            && self.ncomp == ncomp
            && self.nranks == layout.nranks()
            && self.grids == layout.grids()
    }

    /// The cached copy operations.
    pub fn ops(&self) -> &[CopyOp] {
        &self.ops
    }

    /// Bytes moved between distinct ranks per application of this plan.
    pub fn cross_rank_bytes(&self) -> u64 {
        self.cross_rank_bytes
    }

    /// Execute the cached plan against `fabs` (one fab per grid, in layout
    /// order), returning the cross-rank traffic in bytes.
    pub fn apply(&mut self, fabs: &mut [Fab]) -> u64 {
        assert_eq!(fabs.len(), self.grids.len(), "fab count != grid count");
        let total = *self.op_offsets.last().unwrap_or(&0);
        if total == 0 {
            return self.cross_rank_bytes;
        }
        if self.scratch.len() < total {
            self.scratch.resize(total, 0.0);
        }

        let ops = &self.ops;
        let op_offsets = &self.op_offsets;
        let ncomp = self.ncomp;
        let parallel = total >= PAR_THRESHOLD;

        // Phase 1: pack every source region into its disjoint scratch slice.
        {
            let sources: &[Fab] = fabs;
            let mut parts: Vec<(usize, &mut [f64])> = Vec::with_capacity(ops.len());
            let mut rest = &mut self.scratch[..total];
            for k in 0..ops.len() {
                let (head, tail) = rest.split_at_mut(op_offsets[k + 1] - op_offsets[k]);
                parts.push((k, head));
                rest = tail;
            }
            let pack = |(k, out): &mut (usize, &mut [f64])| {
                let op = &ops[*k];
                sources[op.src].pack_region(&op.region, op.shift, out);
            };
            if parallel {
                use rayon::prelude::*;
                parts.par_iter_mut().for_each(pack);
            } else {
                parts.iter_mut().for_each(pack);
            }
        }

        // Phase 2: scatter each slice into its destination fab. Distinct
        // fabs are disjoint, so destinations proceed independently.
        let scratch = &self.scratch;
        let per_dst = &self.per_dst;
        let scatter = |i: usize, fab: &mut Fab| {
            for &k in &per_dst[i] {
                let op = &ops[k];
                debug_assert_eq!(
                    op_offsets[k + 1] - op_offsets[k],
                    op.region.num_cells() as usize * ncomp
                );
                fab.unpack_region(&op.region, &scratch[op_offsets[k]..op_offsets[k + 1]]);
            }
        };
        if parallel {
            use rayon::prelude::*;
            fabs.par_iter_mut()
                .enumerate()
                .for_each(|(i, fab)| scatter(i, fab));
        } else {
            for (i, fab) in fabs.iter_mut().enumerate() {
                scatter(i, fab);
            }
        }

        self.cross_rank_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::IBox;

    fn layout_16(periodic: bool) -> (BoxLayout, ProblemDomain) {
        let domain = if periodic {
            ProblemDomain::periodic(IBox::cube(16))
        } else {
            ProblemDomain::new(IBox::cube(16))
        };
        (BoxLayout::decompose(&domain, 8, 4), domain)
    }

    #[test]
    fn plan_matches_freshly_built() {
        for periodic in [false, true] {
            let (layout, domain) = layout_16(periodic);
            let copier = ExchangeCopier::build(&layout, &domain, 2, 3);
            assert_eq!(copier.ops(), exchange_plan(&layout, &domain, 2));
            assert!(copier.matches(&layout, &domain, 2, 3));
            assert!(!copier.matches(&layout, &domain, 1, 3));
            assert!(!copier.matches(&layout, &domain, 2, 1));
        }
    }

    #[test]
    fn stale_after_layout_change() {
        let (layout, domain) = layout_16(true);
        let copier = ExchangeCopier::build(&layout, &domain, 1, 1);
        let other = BoxLayout::decompose(&domain, 4, 4);
        assert!(!copier.matches(&other, &domain, 1, 1));
    }

    #[test]
    fn cross_rank_bytes_equals_op_sum() {
        let (layout, domain) = layout_16(true);
        let ncomp = 2;
        let copier = ExchangeCopier::build(&layout, &domain, 1, ncomp);
        let expect: u64 = copier
            .ops()
            .iter()
            .filter(|op| layout.rank(op.src) != layout.rank(op.dst))
            .map(|op| op.region.num_cells() * ncomp as u64 * 8)
            .sum();
        assert!(expect > 0);
        assert_eq!(copier.cross_rank_bytes(), expect);
    }

    #[test]
    fn ghost_cells_written_by_exactly_one_op() {
        // The two-phase executor relies on this: no dst cell is covered by
        // two ops, so pack/scatter order cannot change the result.
        for periodic in [false, true] {
            let (layout, domain) = layout_16(periodic);
            let ops = exchange_plan(&layout, &domain, 2);
            for dst in 0..layout.len() {
                let mut seen: Vec<IBox> = Vec::new();
                for op in ops.iter().filter(|op| op.dst == dst) {
                    for prev in &seen {
                        assert!(
                            !prev.intersects(&op.region),
                            "overlapping dst regions {prev:?} and {:?}",
                            op.region
                        );
                    }
                    seen.push(op.region);
                }
            }
        }
    }
}
