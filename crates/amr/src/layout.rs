//! `BoxLayout`: a disjoint decomposition of a level's grid into boxes, each
//! assigned to an owning rank (Chombo's `DisjointBoxLayout`).

use crate::boxes::IBox;
use crate::domain::ProblemDomain;
use crate::intvect::IntVect;

/// One grid of a layout: a box plus its owning rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    /// The region this grid covers.
    pub bx: IBox,
    /// Owning rank (process index).
    pub rank: usize,
}

/// A disjoint set of boxes covering part of a level, with rank assignments.
#[derive(Clone, Debug, Default)]
pub struct BoxLayout {
    grids: Vec<Grid>,
    nranks: usize,
}

impl BoxLayout {
    /// Build from `(box, rank)` pairs. Panics in debug builds if the boxes
    /// overlap or a rank is out of range.
    pub fn new(grids: Vec<Grid>, nranks: usize) -> Self {
        debug_assert!(nranks > 0);
        #[cfg(debug_assertions)]
        {
            for (i, a) in grids.iter().enumerate() {
                assert!(a.rank < nranks, "rank {} out of range", a.rank);
                assert!(!a.bx.is_empty(), "empty box in layout");
                for b in &grids[i + 1..] {
                    assert!(
                        !a.bx.intersects(&b.bx),
                        "layout boxes overlap: {:?} vs {:?}",
                        a.bx,
                        b.bx
                    );
                }
            }
        }
        BoxLayout { grids, nranks }
    }

    /// Decompose `domain` into boxes of at most `max_size` cells per side and
    /// assign them round-robin over `nranks` ranks.
    pub fn decompose(domain: &ProblemDomain, max_size: i64, nranks: usize) -> Self {
        let boxes = split_box(domain.domain_box(), max_size);
        let grids = boxes
            .into_iter()
            .enumerate()
            .map(|(i, bx)| Grid {
                bx,
                rank: i % nranks,
            })
            .collect();
        BoxLayout::new(grids, nranks)
    }

    /// Build from bare boxes with all grids on rank 0 (useful for serial tests).
    pub fn from_boxes(boxes: Vec<IBox>) -> Self {
        BoxLayout::new(
            boxes.into_iter().map(|bx| Grid { bx, rank: 0 }).collect(),
            1,
        )
    }

    /// The grids in index order.
    pub fn grids(&self) -> &[Grid] {
        &self.grids
    }

    /// Number of grids.
    pub fn len(&self) -> usize {
        self.grids.len()
    }

    /// True if the layout has no grids.
    pub fn is_empty(&self) -> bool {
        self.grids.is_empty()
    }

    /// Number of ranks this layout is distributed over.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The box of grid `i`.
    pub fn ibox(&self, i: usize) -> IBox {
        self.grids[i].bx
    }

    /// The owning rank of grid `i`.
    pub fn rank(&self, i: usize) -> usize {
        self.grids[i].rank
    }

    /// Total cells across all grids.
    pub fn total_cells(&self) -> u64 {
        self.grids.iter().map(|g| g.bx.num_cells()).sum()
    }

    /// Cells owned by each rank.
    pub fn cells_per_rank(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.nranks];
        for g in &self.grids {
            v[g.rank] += g.bx.num_cells();
        }
        v
    }

    /// Load imbalance: max over mean cells per rank (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        let per = self.cells_per_rank();
        let max = *per.iter().max().unwrap_or(&0) as f64;
        let mean = self.total_cells() as f64 / self.nranks as f64;
        // xlint: allow(F) -- exact zero guard: mean is 0.0 iff the layout is empty
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Indices of grids whose box intersects `region`.
    pub fn intersecting(&self, region: &IBox) -> Vec<usize> {
        self.grids
            .iter()
            .enumerate()
            .filter(|(_, g)| g.bx.intersects(region))
            .map(|(i, _)| i)
            .collect()
    }

    /// The smallest box covering every grid.
    pub fn bounding_box(&self) -> IBox {
        self.grids
            .iter()
            .fold(IBox::EMPTY, |acc, g| acc.hull(&g.bx))
    }

    /// True if the union of grids covers `region` completely.
    pub fn covers(&self, region: &IBox) -> bool {
        let mut remaining = vec![*region];
        for g in &self.grids {
            let mut next = Vec::new();
            for r in remaining {
                next.extend(r.subtract(&g.bx));
            }
            remaining = next;
            if remaining.is_empty() {
                return true;
            }
        }
        remaining.is_empty()
    }

    /// Reassign ranks according to `assignment` (one entry per grid).
    pub fn with_ranks(&self, assignment: &[usize], nranks: usize) -> BoxLayout {
        assert_eq!(assignment.len(), self.grids.len());
        BoxLayout::new(
            self.grids
                .iter()
                .zip(assignment)
                .map(|(g, &rank)| Grid { bx: g.bx, rank })
                .collect(),
            nranks,
        )
    }

    /// Coarsen every box (used to compare against a coarser level).
    pub fn coarsen(&self, ratio: i64) -> BoxLayout {
        BoxLayout {
            grids: self
                .grids
                .iter()
                .map(|g| Grid {
                    bx: g.bx.coarsen(ratio),
                    rank: g.rank,
                })
                .collect(),
            nranks: self.nranks,
        }
    }
}

/// Split a box into pieces with every side ≤ `max_size`, by recursive
/// halving along the longest direction.
pub fn split_box(bx: IBox, max_size: i64) -> Vec<IBox> {
    assert!(max_size > 0);
    let mut out = Vec::new();
    let mut stack = vec![bx];
    while let Some(b) = stack.pop() {
        if b.is_empty() {
            continue;
        }
        if b.longest_side() <= max_size {
            out.push(b);
            continue;
        }
        let d = b.longest_dir();
        let mid = b.lo()[d] + b.size()[d] / 2;
        let (l, r) = b.split_at(d, mid);
        stack.push(l);
        stack.push(r);
    }
    // Deterministic order: sort by lo corner.
    out.sort_by_key(|b| (b.lo()[2], b.lo()[1], b.lo()[0]));
    out
}

/// Split a box targeting a given number of pieces (for N-rank decomposition),
/// halving the longest direction until at least `pieces` boxes exist.
pub fn split_into(bx: IBox, pieces: usize) -> Vec<IBox> {
    assert!(pieces > 0);
    let mut out = vec![bx];
    while out.len() < pieces {
        // Split the largest box.
        let (idx, _) = out
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.num_cells())
            .expect("non-empty");
        let b = out.swap_remove(idx);
        if b.longest_side() < 2 {
            out.push(b);
            break; // cannot split further
        }
        let d = b.longest_dir();
        let mid = b.lo()[d] + b.size()[d] / 2;
        let (l, r) = b.split_at(d, mid);
        out.push(l);
        out.push(r);
    }
    out.sort_by_key(|b| (b.lo()[2], b.lo()[1], b.lo()[0]));
    out
}

/// A shift-annotated copy operation between two grids: destination grid
/// `dst` receives data over `region` read from grid `src` at `+shift`
/// (nonzero only for periodic wrapping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CopyOp {
    /// Index of the source grid in the source layout.
    pub src: usize,
    /// Index of the destination grid in the destination layout.
    pub dst: usize,
    /// Destination-index region to fill.
    pub region: IBox,
    /// Source is read at `cell + shift`.
    pub shift: IntVect,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(n: i64) -> ProblemDomain {
        ProblemDomain::new(IBox::cube(n))
    }

    #[test]
    fn decompose_covers_domain_disjointly() {
        let d = dom(32);
        let l = BoxLayout::decompose(&d, 8, 4);
        assert_eq!(l.total_cells(), 32 * 32 * 32);
        assert!(l.covers(&d.domain_box()));
        assert_eq!(l.len(), 64); // (32/8)^3
        for g in l.grids() {
            assert!(g.bx.longest_side() <= 8);
        }
    }

    #[test]
    fn decompose_nondivisible() {
        let d = dom(20);
        let l = BoxLayout::decompose(&d, 8, 3);
        assert_eq!(l.total_cells(), 20 * 20 * 20);
        assert!(l.covers(&d.domain_box()));
    }

    #[test]
    fn split_into_reaches_count() {
        let pieces = split_into(IBox::cube(16), 10);
        assert!(pieces.len() >= 10);
        let total: u64 = pieces.iter().map(|b| b.num_cells()).sum();
        assert_eq!(total, 16 * 16 * 16);
    }

    #[test]
    fn rank_accounting() {
        let d = dom(16);
        let l = BoxLayout::decompose(&d, 8, 2);
        let per = l.cells_per_rank();
        assert_eq!(per.iter().sum::<u64>(), l.total_cells());
        assert_eq!(per.len(), 2);
        assert!((l.imbalance() - 1.0).abs() < 1e-12); // 8 equal boxes over 2 ranks
    }

    #[test]
    fn intersecting_query() {
        let d = dom(16);
        let l = BoxLayout::decompose(&d, 8, 1);
        let probe = IBox::new(IntVect::splat(7), IntVect::splat(8));
        let hits = l.intersecting(&probe);
        assert_eq!(hits.len(), 8); // probe straddles all 8 octants
    }

    #[test]
    fn covers_detects_holes() {
        let l = BoxLayout::from_boxes(vec![
            IBox::new(IntVect::ZERO, IntVect::new(7, 15, 15)),
            // hole: x in [8,9]
            IBox::new(IntVect::new(10, 0, 0), IntVect::new(15, 15, 15)),
        ]);
        assert!(!l.covers(&IBox::cube(16)));
        assert!(l.covers(&IBox::new(IntVect::ZERO, IntVect::new(7, 15, 15))));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn overlapping_layout_panics() {
        BoxLayout::from_boxes(vec![IBox::cube(4), IBox::cube(2)]);
    }

    #[test]
    fn with_ranks_reassigns() {
        let l = BoxLayout::from_boxes(vec![IBox::cube(4), IBox::cube(4).shift(IntVect::splat(4))]);
        let l2 = l.with_ranks(&[1, 0], 2);
        assert_eq!(l2.rank(0), 1);
        assert_eq!(l2.rank(1), 0);
    }
}
