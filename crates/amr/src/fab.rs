//! `Fab`: multi-component cell-centered array data on a box (Chombo's
//! `FArrayBox`), with process-wide allocation accounting.
//!
//! The accounting feeds the Monitor (paper §3): the adaptation policies need
//! real, per-rank memory observations (Fig. 1), so every `Fab` registers its
//! heap footprint with a global counter on construction and deregisters on
//! drop.

use crate::boxes::IBox;
use crate::intvect::IntVect;
use std::ops::{Index, IndexMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes of `Fab` payload currently allocated in this process.
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// High-water mark of [`allocated_bytes`] since the last
/// [`reset_peak_allocated`] call.
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Bytes of `Fab` payload currently live in this process.
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Peak bytes of `Fab` payload observed since the last reset.
pub fn peak_allocated_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Reset the peak tracker to the current live allocation.
pub fn reset_peak_allocated() {
    PEAK_BYTES.store(ALLOCATED_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn track_alloc(bytes: u64) {
    let now = ALLOCATED_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
}

fn track_free(bytes: u64) {
    ALLOCATED_BYTES.fetch_sub(bytes, Ordering::Relaxed);
}

/// Multi-component `f64` data over the cells of a box, Fortran-ordered
/// (x fastest, component slowest).
#[derive(Debug)]
pub struct Fab {
    bx: IBox,
    ncomp: usize,
    data: Vec<f64>,
}

impl Fab {
    /// Allocate a fab over `bx` with `ncomp` components, zero-initialized.
    pub fn new(bx: IBox, ncomp: usize) -> Self {
        assert!(ncomp > 0, "Fab needs at least one component");
        let n = bx.num_cells() as usize * ncomp;
        track_alloc((n * std::mem::size_of::<f64>()) as u64);
        Fab {
            bx,
            ncomp,
            data: vec![0.0; n],
        }
    }

    /// Allocate with every entry set to `value`.
    pub fn filled(bx: IBox, ncomp: usize, value: f64) -> Self {
        let mut f = Fab::new(bx, ncomp);
        f.data.fill(value);
        f
    }

    /// Build a zero-initialized fab over `bx` reusing `storage` as the
    /// backing buffer (it is cleared and resized; its capacity is what is
    /// being recycled). Bit-identical to [`Fab::new`], but skips the heap
    /// allocation when the storage already has capacity — the basis of the
    /// solver scratch arenas. Accounting-wise this counts as a fresh
    /// allocation so it stays symmetric with `Drop`/[`Fab::into_storage`].
    pub fn with_storage(bx: IBox, ncomp: usize, mut storage: Vec<f64>) -> Self {
        assert!(ncomp > 0, "Fab needs at least one component");
        let n = bx.num_cells() as usize * ncomp;
        storage.clear();
        storage.resize(n, 0.0);
        track_alloc((n * std::mem::size_of::<f64>()) as u64);
        Fab {
            bx,
            ncomp,
            data: storage,
        }
    }

    /// Copy of `self` whose payload lives in `storage` (cleared/resized as
    /// in [`Fab::with_storage`]). A `clone()` that recycles a buffer.
    pub fn clone_with_storage(&self, mut storage: Vec<f64>) -> Self {
        storage.clear();
        storage.extend_from_slice(&self.data);
        track_alloc(self.bytes());
        Fab {
            bx: self.bx,
            ncomp: self.ncomp,
            data: storage,
        }
    }

    /// Consume the fab, handing back its backing buffer for reuse (the
    /// accounting sees the payload freed, exactly as if it were dropped).
    pub fn into_storage(mut self) -> Vec<f64> {
        let data = std::mem::take(&mut self.data);
        // `Drop` will now see an empty payload and free 0 bytes; release
        // the real footprint here instead.
        track_free((data.len() * std::mem::size_of::<f64>()) as u64);
        data
    }

    /// The box this fab covers.
    #[inline]
    pub fn ibox(&self) -> IBox {
        self.bx
    }

    /// Number of components.
    #[inline]
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Heap footprint of the payload in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Linear index of `(iv, comp)`.
    #[inline]
    fn idx(&self, iv: IntVect, comp: usize) -> usize {
        debug_assert!(comp < self.ncomp);
        self.bx.offset(iv) + comp * self.bx.num_cells() as usize
    }

    /// Flat offset of cell `iv` within component 0's slab. Together with
    /// [`Fab::comp_stride`] this lets stencil loops address all components
    /// of a cell from one offset computation:
    /// `as_slice()[cell_offset(iv) + comp * comp_stride()]`.
    #[inline]
    pub fn cell_offset(&self, iv: IntVect) -> usize {
        self.bx.offset(iv)
    }

    /// Distance in the flat payload between the same cell in consecutive
    /// components.
    #[inline]
    pub fn comp_stride(&self) -> usize {
        self.bx.num_cells() as usize
    }

    /// Read one value.
    #[inline]
    pub fn get(&self, iv: IntVect, comp: usize) -> f64 {
        self.data[self.idx(iv, comp)]
    }

    /// Write one value.
    #[inline]
    pub fn set(&mut self, iv: IntVect, comp: usize, v: f64) {
        let i = self.idx(iv, comp);
        self.data[i] = v;
    }

    /// The raw slice for component `comp`, Fortran-ordered over the box.
    pub fn comp_slice(&self, comp: usize) -> &[f64] {
        let n = self.bx.num_cells() as usize;
        &self.data[comp * n..(comp + 1) * n]
    }

    /// Mutable slice for component `comp`.
    pub fn comp_slice_mut(&mut self, comp: usize) -> &mut [f64] {
        let n = self.bx.num_cells() as usize;
        &mut self.data[comp * n..(comp + 1) * n]
    }

    /// Entire payload.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Entire payload, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill every component of every cell with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Copy values on `region ∩ self.box ∩ src.box` from `src` (same
    /// component count required), with `src` read at `iv + shift`.
    ///
    /// `shift` supports periodic wrapping: destination cell `iv` receives
    /// `src[iv + shift]`. Rows contiguous in x are moved with
    /// `copy_from_slice` rather than per-cell index arithmetic.
    pub fn copy_from_shifted(&mut self, src: &Fab, region: &IBox, shift: IntVect) {
        assert_eq!(self.ncomp, src.ncomp, "component count mismatch");
        let dst_region = region.intersect(&self.bx);
        let src_avail = src.bx.shift(-shift);
        let r = dst_region.intersect(&src_avail);
        if r.is_empty() {
            return;
        }
        let nx = r.size()[0] as usize;
        let dst_cells = self.bx.num_cells() as usize;
        let src_cells = src.bx.num_cells() as usize;
        for comp in 0..self.ncomp {
            for z in r.lo()[2]..=r.hi()[2] {
                for y in r.lo()[1]..=r.hi()[1] {
                    let row = IntVect::new(r.lo()[0], y, z);
                    let d0 = self.bx.offset(row) + comp * dst_cells;
                    let s0 = src.bx.offset(row + shift) + comp * src_cells;
                    self.data[d0..d0 + nx].copy_from_slice(&src.data[s0..s0 + nx]);
                }
            }
        }
    }

    /// Pack `self`'s values over `region` (read at `iv + shift`) into `out`,
    /// component-major and Fortran-ordered over the region's cells.
    ///
    /// The shifted region must lie inside this fab's box; `out` must hold
    /// exactly `region.num_cells() * ncomp` values. Paired with
    /// [`Fab::unpack_region`], this moves a copy-op's payload through a flat
    /// staging buffer instead of cloning whole fabs.
    pub fn pack_region(&self, region: &IBox, shift: IntVect, out: &mut [f64]) {
        let cells = region.num_cells() as usize;
        assert_eq!(out.len(), cells * self.ncomp, "pack buffer size mismatch");
        debug_assert!(
            self.bx.contains_box(&region.shift(shift)),
            "pack source {:?}+{shift:?} escapes fab box {:?}",
            region,
            self.bx
        );
        let nx = region.size()[0] as usize;
        let src_cells = self.bx.num_cells() as usize;
        let mut o = 0;
        for comp in 0..self.ncomp {
            for z in region.lo()[2]..=region.hi()[2] {
                for y in region.lo()[1]..=region.hi()[1] {
                    let row = IntVect::new(region.lo()[0], y, z) + shift;
                    let s0 = self.bx.offset(row) + comp * src_cells;
                    out[o..o + nx].copy_from_slice(&self.data[s0..s0 + nx]);
                    o += nx;
                }
            }
        }
    }

    /// Unpack values produced by [`Fab::pack_region`] into `region` of this
    /// fab. `region` must lie inside the fab's box.
    pub fn unpack_region(&mut self, region: &IBox, data: &[f64]) {
        let cells = region.num_cells() as usize;
        assert_eq!(data.len(), cells * self.ncomp, "pack buffer size mismatch");
        debug_assert!(
            self.bx.contains_box(region),
            "unpack target {:?} escapes fab box {:?}",
            region,
            self.bx
        );
        let nx = region.size()[0] as usize;
        let dst_cells = self.bx.num_cells() as usize;
        let mut o = 0;
        for comp in 0..self.ncomp {
            for z in region.lo()[2]..=region.hi()[2] {
                for y in region.lo()[1]..=region.hi()[1] {
                    let row = IntVect::new(region.lo()[0], y, z);
                    let d0 = self.bx.offset(row) + comp * dst_cells;
                    self.data[d0..d0 + nx].copy_from_slice(&data[o..o + nx]);
                    o += nx;
                }
            }
        }
    }

    /// Copy values on `region` from `src` with identical indexing.
    pub fn copy_from(&mut self, src: &Fab, region: &IBox) {
        self.copy_from_shifted(src, region, IntVect::ZERO);
    }

    /// Component-wise minimum over a region.
    pub fn min_on(&self, region: &IBox, comp: usize) -> f64 {
        let r = region.intersect(&self.bx);
        r.cells()
            .map(|iv| self.get(iv, comp))
            .fold(f64::INFINITY, f64::min)
    }

    /// Component-wise maximum over a region.
    pub fn max_on(&self, region: &IBox, comp: usize) -> f64 {
        let r = region.intersect(&self.bx);
        r.cells()
            .map(|iv| self.get(iv, comp))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sum of a component over a region.
    pub fn sum_on(&self, region: &IBox, comp: usize) -> f64 {
        let r = region.intersect(&self.bx);
        r.cells().map(|iv| self.get(iv, comp)).sum()
    }

    /// L∞ norm over the whole fab, one component.
    pub fn norm_inf(&self, comp: usize) -> f64 {
        self.comp_slice(comp)
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
    }
}

impl Clone for Fab {
    fn clone(&self) -> Self {
        track_alloc(self.bytes());
        Fab {
            bx: self.bx,
            ncomp: self.ncomp,
            data: self.data.clone(),
        }
    }
}

impl Drop for Fab {
    fn drop(&mut self) {
        track_free(self.bytes());
    }
}

/// Convenience indexing: `fab[(iv, comp)]`.
impl Index<(IntVect, usize)> for Fab {
    type Output = f64;
    #[inline]
    fn index(&self, (iv, c): (IntVect, usize)) -> &f64 {
        &self.data[self.idx(iv, c)]
    }
}

impl IndexMut<(IntVect, usize)> for Fab {
    #[inline]
    fn index_mut(&mut self, (iv, c): (IntVect, usize)) -> &mut f64 {
        let i = self.idx(iv, c);
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized_and_indexable() {
        let b = IBox::cube(4);
        let mut f = Fab::new(b, 2);
        assert_eq!(f.get(IntVect::new(1, 2, 3), 0), 0.0);
        f.set(IntVect::new(1, 2, 3), 1, 7.5);
        assert_eq!(f[(IntVect::new(1, 2, 3), 1)], 7.5);
        f[(IntVect::new(0, 0, 0), 0)] = -1.0;
        assert_eq!(f.get(IntVect::new(0, 0, 0), 0), -1.0);
    }

    #[test]
    fn component_slices_are_disjoint() {
        let b = IBox::cube(2);
        let mut f = Fab::new(b, 3);
        f.comp_slice_mut(1).fill(4.0);
        assert!(f.comp_slice(0).iter().all(|&v| v == 0.0));
        assert!(f.comp_slice(1).iter().all(|&v| v == 4.0));
        assert!(f.comp_slice(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn copy_on_overlap_only() {
        let a_box = IBox::cube(4);
        let b_box = IBox::new(IntVect::splat(2), IntVect::splat(5));
        let src = Fab::filled(b_box, 1, 9.0);
        let mut dst = Fab::new(a_box, 1);
        dst.copy_from(&src, &a_box);
        for iv in a_box.cells() {
            let expect = if b_box.contains(iv) { 9.0 } else { 0.0 };
            assert_eq!(dst.get(iv, 0), expect);
        }
    }

    #[test]
    fn shifted_copy_wraps() {
        // src covers [0,3]^3, dst ghost cell at -1 should read src at 3 via shift +4.
        let src_box = IBox::cube(4);
        let mut src = Fab::new(src_box, 1);
        src.set(IntVect::new(3, 0, 0), 0, 5.0);
        let dst_box = IBox::new(IntVect::new(-1, 0, 0), IntVect::new(-1, 0, 0));
        let mut dst = Fab::new(dst_box, 1);
        dst.copy_from_shifted(&src, &dst_box, IntVect::new(4, 0, 0));
        assert_eq!(dst.get(IntVect::new(-1, 0, 0), 0), 5.0);
    }

    #[test]
    fn allocation_accounting() {
        let before = allocated_bytes();
        {
            let f = Fab::new(IBox::cube(8), 2);
            assert_eq!(allocated_bytes(), before + f.bytes());
            let g = f.clone();
            assert_eq!(allocated_bytes(), before + f.bytes() + g.bytes());
        }
        assert_eq!(allocated_bytes(), before);
    }

    #[test]
    fn storage_reuse_roundtrip() {
        let f = Fab::filled(IBox::cube(4), 2, 3.0);
        let g = f.clone_with_storage(Vec::new());
        assert_eq!(g.ibox(), f.ibox());
        assert_eq!(g.as_slice(), f.as_slice());
        let live_with_g = allocated_bytes();
        let buf = g.into_storage();
        assert_eq!(allocated_bytes(), live_with_g - f.bytes());
        let cap = buf.capacity();
        // Reusing the buffer for a smaller fab must not reallocate.
        let h = Fab::with_storage(IBox::cube(3), 1, buf);
        assert!(h.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(h.ibox(), IBox::cube(3));
        assert_eq!(h.into_storage().capacity(), cap);
    }

    #[test]
    fn pack_unpack_roundtrip_with_shift() {
        let src_box = IBox::cube(4);
        let mut src = Fab::new(src_box, 2);
        for c in 0..2 {
            for iv in src_box.cells() {
                src.set(
                    iv,
                    c,
                    (iv[0] * 100 + iv[1] * 10 + iv[2] + c as i64 * 10_000) as f64,
                );
            }
        }
        // Ghost slab left of the box, wrapped from the far side (shift +4).
        let region = IBox::new(IntVect::new(-1, 0, 0), IntVect::new(-1, 3, 3));
        let shift = IntVect::new(4, 0, 0);
        let mut buf = vec![0.0; region.num_cells() as usize * 2];
        src.pack_region(&region, shift, &mut buf);
        let dst_box = IBox::new(IntVect::new(-1, 0, 0), IntVect::new(3, 3, 3));
        let mut dst = Fab::new(dst_box, 2);
        dst.unpack_region(&region, &buf);
        let mut reference = Fab::new(dst_box, 2);
        reference.copy_from_shifted(&src, &region, shift);
        assert_eq!(dst.as_slice(), reference.as_slice());
        for c in 0..2 {
            for iv in region.cells() {
                assert_eq!(dst.get(iv, c), src.get(iv + shift, c));
            }
        }
    }

    #[test]
    fn peak_tracking() {
        reset_peak_allocated();
        let base = peak_allocated_bytes();
        let f = Fab::new(IBox::cube(16), 1);
        assert!(peak_allocated_bytes() >= base + f.bytes());
        drop(f);
        // peak survives the drop
        assert!(peak_allocated_bytes() >= base + 16 * 16 * 16 * 8);
    }

    #[test]
    fn reductions() {
        let b = IBox::cube(2);
        let mut f = Fab::new(b, 1);
        let vals = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, -8.0];
        for (iv, v) in b.cells().zip(vals) {
            f.set(iv, 0, v);
        }
        assert_eq!(f.min_on(&b, 0), -8.0);
        assert_eq!(f.max_on(&b, 0), 7.0);
        assert_eq!(f.sum_on(&b, 0), -4.0);
        assert_eq!(f.norm_inf(0), 8.0);
    }
}
