//! Dependency-free fuzz tests for the disk log's open-time scan.
//!
//! The log is the only durable artifact the staging tier owns, so the
//! scan that rebuilds its index after a crash must treat the file as
//! hostile: random truncation (torn tail writes) and random bit flips
//! (corruption at rest) must surface as recovery entries or typed
//! [`TierError`]s — never a panic, never an abort. A deterministic LCG
//! drives the mutations so any failure replays from the printed seed.

use std::path::PathBuf;
use std::sync::Arc;
use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;
use xlayer_amr::intvect::IntVect;
use xlayer_staging::{BufferPool, DataObject, DiskLog, ObjectKey};

/// A 64-bit linear congruential generator (Knuth's MMIX constants) —
/// deterministic, seedable, and free of any RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform-enough draw in `[0, bound)` for fuzz positioning.
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            (self.next() >> 11) % bound
        }
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("xlayer-disklog-fuzz-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn obj(name: &str, version: u64, lo: i64, n: i64) -> DataObject {
    let b = IBox::cube(n).shift(IntVect::splat(lo));
    let mut fab = Fab::new(b, 1);
    for iv in b.cells() {
        fab.set(
            iv,
            0,
            (iv[0] * 100 + iv[1] * 10 + iv[2] + version as i64) as f64,
        );
    }
    DataObject::from_fab(name, version, &fab, 0, &b, 3).with_dx(0.5)
}

/// Build a log with a handful of records and return its file path.
fn seeded_log(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("fuzz.log");
    let mut log = DiskLog::open(&path, 1 << 22, 256, Arc::new(BufferPool::new())).unwrap();
    for v in 1..=4u64 {
        log.append(&obj("rho", v, 0, 4)).unwrap();
        log.append(&obj("vel", v, 8, 3)).unwrap();
    }
    drop(log);
    path
}

/// Reopen the (possibly mangled) log and exercise every read path. The
/// contract under test: no panic, and errors are typed. Any object the
/// scan did index must still read back or fail with a typed error.
fn reopen_and_probe(path: &std::path::Path) {
    let mut log = match DiskLog::open(path, 1 << 22, 256, Arc::new(BufferPool::new())) {
        Ok(log) => log,
        Err(e) => {
            // Typed failure is an acceptable outcome — render it to make
            // sure the Display path can't panic either.
            let _ = e.to_string();
            return;
        }
    };
    for e in log.recovery() {
        let _ = e.to_string();
    }
    for key in log.keys() {
        let _ = log.extents_for(&key);
        if let Err(e) = log.read(&key, None) {
            let _ = e.to_string();
        }
    }
    let _ = log.read(&ObjectKey::new("rho", 1), None);
}

#[test]
fn fuzz_truncation_never_panics() {
    let dir = tmpdir("trunc");
    let path = seeded_log(&dir);
    let whole = std::fs::read(&path).unwrap();
    let mut rng = Lcg(0x5eed_0001);
    for round in 0..64 {
        let cut = rng.below(whole.len() as u64 + 1) as usize;
        std::fs::write(&path, &whole[..cut])
            .unwrap_or_else(|e| panic!("round {round}: rewrite: {e}"));
        reopen_and_probe(&path);
    }
}

#[test]
fn fuzz_bit_flips_never_panic() {
    let dir = tmpdir("flip");
    let path = seeded_log(&dir);
    let whole = std::fs::read(&path).unwrap();
    let mut rng = Lcg(0x5eed_0002);
    for round in 0..64 {
        let mut mangled = whole.clone();
        // 1–8 single-bit flips anywhere in the file, headers included.
        let flips = 1 + rng.below(8) as usize;
        for _ in 0..flips {
            let at = rng.below(mangled.len() as u64) as usize;
            mangled[at] ^= 1 << rng.below(8);
        }
        std::fs::write(&path, &mangled).unwrap_or_else(|e| panic!("round {round}: rewrite: {e}"));
        reopen_and_probe(&path);
    }
}

#[test]
fn fuzz_truncation_plus_flips_never_panic() {
    let dir = tmpdir("both");
    let path = seeded_log(&dir);
    let whole = std::fs::read(&path).unwrap();
    let mut rng = Lcg(0x5eed_0003);
    for round in 0..64 {
        let cut = rng.below(whole.len() as u64 + 1) as usize;
        let mut mangled = whole[..cut].to_vec();
        if !mangled.is_empty() {
            let at = rng.below(mangled.len() as u64) as usize;
            mangled[at] ^= 1 << rng.below(8);
        }
        std::fs::write(&path, &mangled).unwrap_or_else(|e| panic!("round {round}: rewrite: {e}"));
        reopen_and_probe(&path);
    }
}

/// An untouched log must reopen with a full index and no recovery
/// entries — the fuzz baseline, so a scan regression can't hide behind
/// "errors are acceptable".
#[test]
fn untouched_log_reopens_complete() {
    let dir = tmpdir("clean");
    let path = seeded_log(&dir);
    let mut log = DiskLog::open(&path, 1 << 22, 256, Arc::new(BufferPool::new())).unwrap();
    assert!(log.recovery().is_empty());
    assert_eq!(log.keys().len(), 8);
    let back = log.read(&ObjectKey::new("rho", 2), None).unwrap();
    assert_eq!(back.len(), 1);
}
