//! Property-based tests of the staging substrate: payload fidelity, memory
//! accounting, and query correctness over arbitrary object streams.

use proptest::prelude::*;
use xlayer_amr::{Fab, IBox, IntVect};
use xlayer_staging::{DataObject, DataSpace, ObjectKey, Sharding, StagingServer};

fn arb_box() -> impl Strategy<Value = IBox> {
    ((-8i64..8, -8i64..8, -8i64..8), (1i64..6, 1i64..6, 1i64..6)).prop_map(
        |((x, y, z), (a, b, c))| {
            let lo = IntVect::new(x, y, z);
            IBox::new(lo, lo + IntVect::new(a, b, c))
        },
    )
}

fn coord_fab(b: IBox) -> Fab {
    let mut f = Fab::new(b, 1);
    for iv in b.cells() {
        f.set(iv, 0, (iv[0] * 10007 + iv[1] * 101 + iv[2]) as f64);
    }
    f
}

proptest! {
    #[test]
    fn object_roundtrip_is_exact(b in arb_box(), version in 0u64..100) {
        let fab = coord_fab(b);
        let obj = DataObject::from_fab("u", version, &fab, 0, &b, 3);
        prop_assert_eq!(obj.desc.bytes, b.num_cells() * 8);
        prop_assert_eq!(obj.desc.key.version, version);
        let back = obj.to_fab();
        for iv in b.cells() {
            prop_assert_eq!(back.get(iv, 0), fab.get(iv, 0));
        }
    }

    #[test]
    fn server_memory_accounting_balances(
        boxes in proptest::collection::vec(arb_box(), 1..12),
    ) {
        let server = StagingServer::new(0, u64::MAX / 2);
        let mut expect = 0u64;
        for (v, b) in boxes.iter().enumerate() {
            let fab = coord_fab(*b);
            server.put(DataObject::from_fab("u", v as u64, &fab, 0, b, 0)).unwrap();
            expect += b.num_cells() * 8;
        }
        prop_assert_eq!(server.used(), expect);
        prop_assert_eq!(server.peak(), expect);
        // evicting everything returns to zero
        let freed = server.evict_before("u", u64::MAX);
        prop_assert_eq!(freed, expect);
        prop_assert_eq!(server.used(), 0);
    }

    #[test]
    fn space_query_equals_linear_scan(
        boxes in proptest::collection::vec(arb_box(), 1..16),
        probe in arb_box(),
    ) {
        let space = DataSpace::new(4, u64::MAX / 8, Sharding::BboxHash);
        for b in &boxes {
            let fab = coord_fab(*b);
            space.put(DataObject::from_fab("u", 1, &fab, 0, b, 0)).unwrap();
        }
        let hits = space.get("u", 1, Some(&probe));
        let expect = boxes.iter().filter(|b| b.intersects(&probe)).count();
        prop_assert_eq!(hits.len(), expect);
        for h in hits {
            prop_assert!(h.desc.bbox.intersects(&probe));
        }
    }

    #[test]
    fn get_region_reassembles_disjoint_pieces(
        split_at in 1i64..7,
    ) {
        // Two disjoint x-slabs tile a box: every covered cell reassembles.
        let whole = IBox::cube(8);
        let (lo, hi) = whole.split_at(0, split_at);
        let fab = coord_fab(whole);
        let space = DataSpace::new(3, u64::MAX / 8, Sharding::BboxHash);
        space.put(DataObject::from_fab("u", 1, &fab, 0, &lo, 0)).unwrap();
        space.put(DataObject::from_fab("u", 1, &fab, 0, &hi, 0)).unwrap();
        let (out, bytes) = space.get_region("u", 1, &whole);
        prop_assert_eq!(bytes, whole.num_cells() * 8);
        for iv in whole.cells() {
            prop_assert_eq!(out.get(iv, 0), fab.get(iv, 0));
        }
    }

    #[test]
    fn sharding_preserves_every_object(
        boxes in proptest::collection::vec(arb_box(), 1..20),
        sharding in prop_oneof![Just(Sharding::BboxHash), Just(Sharding::RoundRobin)],
    ) {
        let space = DataSpace::new(5, u64::MAX / 8, Sharding::BboxHash);
        let _ = sharding;
        let mut total = 0u64;
        for (v, b) in boxes.iter().enumerate() {
            let fab = coord_fab(*b);
            space.put(DataObject::from_fab("u", v as u64, &fab, 0, b, 0)).unwrap();
            total += b.num_cells() * 8;
        }
        prop_assert_eq!(space.used(), total);
        prop_assert_eq!(space.used_per_server().iter().sum::<u64>(), total);
        for v in 0..boxes.len() as u64 {
            prop_assert_eq!(space.get("u", v, None).len(), 1);
        }
    }

    #[test]
    fn eviction_is_exactly_by_version(
        cutoff in 0u64..12,
    ) {
        let space = DataSpace::new(2, u64::MAX / 8, Sharding::RoundRobin);
        let b = IBox::cube(4);
        for v in 0..12u64 {
            let fab = coord_fab(b);
            space.put(DataObject::from_fab("u", v, &fab, 0, &b, 0)).unwrap();
        }
        space.evict_before("u", cutoff);
        for v in 0..12u64 {
            let found = !space.get("u", v, None).is_empty();
            prop_assert_eq!(found, v >= cutoff, "version {}", v);
        }
    }

    #[test]
    fn describe_matches_contents(
        boxes in proptest::collection::vec(arb_box(), 1..10),
    ) {
        let space = DataSpace::new(3, u64::MAX / 8, Sharding::BboxHash);
        for b in &boxes {
            let fab = coord_fab(*b);
            space.put(DataObject::from_fab("u", 7, &fab, 0, b, 0)).unwrap();
        }
        let descs = space.describe("u", 7);
        prop_assert_eq!(descs.len(), boxes.len());
        let total: u64 = descs.iter().map(|d| d.bytes).sum();
        prop_assert_eq!(total, boxes.iter().map(|b| b.num_cells() * 8).sum::<u64>());
        for d in &descs {
            prop_assert_eq!(&d.key, &ObjectKey::new("u", 7));
        }
    }
}

/// Satellite coverage: spill → get (promote) → get must be bit-identical
/// for arbitrary object sizes straddling the tier's chunk boundary — the
/// payload survives a round trip through chunked, checksummed disk extents
/// and back into memory unchanged.
mod tier_identity {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use xlayer_staging::{BufferPool, DiskTier, StagingServer, TierConfig};

    static SEQ: AtomicU64 = AtomicU64::new(0);

    proptest! {
        #[test]
        fn spill_get_promote_get_is_bit_identical(
            boxes in proptest::collection::vec(arb_box(), 1..8),
            chunk in 1u32..600,
        ) {
            let dir = std::env::temp_dir().join(format!(
                "xlayer-tierprop-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let total: u64 = boxes.iter().map(|b| b.num_cells() * 8).sum();
            let cfg = TierConfig::new(&dir).with_chunk_size(chunk);
            let tier = DiskTier::open(
                dir.join("t.log"),
                &cfg,
                Arc::new(BufferPool::new()),
            ).unwrap();
            // Half the working set fits in memory: some versions spill,
            // gets promote them back (or serve from disk when oversized).
            let server = StagingServer::with_tier(0, total / 2 + 1, Arc::new(tier));
            let mut want = Vec::new();
            for (v, b) in boxes.iter().enumerate() {
                let fab = coord_fab(*b);
                let obj = DataObject::from_fab("u", v as u64, &fab, 0, b, 0);
                want.push(obj.payload.clone());
                server.put(obj).unwrap();
            }
            for (v, payload) in want.iter().enumerate() {
                // First get may promote from disk; second reads the
                // promoted copy. Both must match the original bytes.
                for round in 0..2 {
                    let got = server.get(&ObjectKey::new("u", v as u64), None);
                    prop_assert_eq!(got.len(), 1, "v{} round {}", v, round);
                    prop_assert_eq!(&got[0].payload, payload, "v{} round {}", v, round);
                }
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
