//! Property tests for the deterministic shard placement map: every object
//! routes to exactly one shard, placement is stable across map instances,
//! and region-query routing covers every fitting object that intersects.

use proptest::prelude::*;
use xlayer_amr::boxes::IBox;
use xlayer_amr::intvect::IntVect;
use xlayer_staging::ShardMap;

fn boxes() -> impl Strategy<Value = IBox> {
    (
        -200i64..200,
        -200i64..200,
        -200i64..200,
        1i64..16,
        1i64..16,
        1i64..16,
    )
        .prop_map(|(x, y, z, sx, sy, sz)| {
            IBox::new(
                IntVect::new(x, y, z),
                IntVect::new(x + sx - 1, y + sy - 1, z + sz - 1),
            )
        })
}

proptest! {
    /// Every object routes to exactly one shard: the placement is total,
    /// in range, and identical across independently constructed maps.
    #[test]
    fn routes_to_exactly_one_shard(b in boxes(), n in 1usize..9, span in 1i64..65) {
        let map = ShardMap::new(n, span);
        let twin = ShardMap::new(n, span);
        let s = map.shard_of(&b);
        prop_assert!(s < n);
        prop_assert_eq!(s, map.shard_of(&b));
        prop_assert_eq!(s, twin.shard_of(&b));
    }

    /// A fitting object intersecting a query is always reachable through
    /// the query's routed shard set (scatter/gather completeness).
    #[test]
    fn query_routing_covers_intersecting_objects(
        obj in boxes(),
        q in boxes(),
        n in 1usize..9,
    ) {
        let map = ShardMap::new(n, 16);
        prop_assert!(map.fits(&obj));
        if obj.intersects(&q) {
            let routed = map.query_shards(&q);
            prop_assert!(
                routed.contains(&map.shard_of(&obj)),
                "object {:?} not covered by query {:?} -> {:?}", obj, q, routed
            );
        }
    }

    /// Routed shard sets are ascending, deduped, and within range.
    #[test]
    fn query_shards_is_canonical(q in boxes(), n in 1usize..9, span in 1i64..33) {
        let map = ShardMap::new(n, span);
        let routed = map.query_shards(&q);
        let mut canon = routed.clone();
        canon.sort_unstable();
        canon.dedup();
        prop_assert_eq!(&routed, &canon);
        prop_assert!(routed.iter().all(|&s| s < n));
    }
}
