//! Version coordination between coupled producers and consumers.
//!
//! DataSpaces coordinates coupled codes through versioned publication: a
//! reader of version `v` blocks until the writer publishes `v`. This is the
//! "interaction and coordination" service of the substrate (paper §5.1).

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// A monotone version gate: writers `publish(v)`, readers `wait_for(v)`.
#[derive(Debug, Default)]
pub struct VersionGate {
    state: Mutex<u64>,
    cv: Condvar,
}

impl VersionGate {
    /// A gate with nothing published (version 0 means "none").
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish version `v` (and implicitly all versions below it).
    /// Versions are monotone: publishing an older version is a no-op.
    pub fn publish(&self, v: u64) {
        let mut cur = self.state.lock();
        if v > *cur {
            *cur = v;
            self.cv.notify_all();
        }
    }

    /// The newest published version (0 if none).
    pub fn current(&self) -> u64 {
        *self.state.lock()
    }

    /// Block until version `v` (or newer) is published.
    pub fn wait_for(&self, v: u64) {
        // xlint: allow(L) -- the condvar wait releases this guard while blocked
        let mut cur = self.state.lock();
        while *cur < v {
            self.cv.wait(&mut cur);
        }
    }

    /// Block until version `v` is published or `timeout` elapses.
    /// Returns `true` if the version arrived.
    pub fn wait_for_timeout(&self, v: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut cur = self.state.lock();
        while *cur < v {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            if self.cv.wait_until(&mut cur, deadline).timed_out() {
                return *cur >= v;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_then_wait_is_immediate() {
        let g = VersionGate::new();
        g.publish(3);
        g.wait_for(2);
        g.wait_for(3);
        assert_eq!(g.current(), 3);
    }

    #[test]
    fn versions_are_monotone() {
        let g = VersionGate::new();
        g.publish(5);
        g.publish(2);
        assert_eq!(g.current(), 5);
    }

    #[test]
    fn reader_blocks_until_writer_publishes() {
        let g = Arc::new(VersionGate::new());
        let g2 = Arc::clone(&g);
        let reader = std::thread::spawn(move || {
            g2.wait_for(7);
            g2.current()
        });
        std::thread::sleep(Duration::from_millis(20));
        g.publish(7);
        assert_eq!(reader.join().unwrap(), 7);
    }

    #[test]
    fn timeout_fires_when_never_published() {
        let g = VersionGate::new();
        assert!(!g.wait_for_timeout(1, Duration::from_millis(20)));
        g.publish(1);
        assert!(g.wait_for_timeout(1, Duration::from_millis(20)));
    }
}
