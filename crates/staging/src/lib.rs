//! # xlayer-staging — the DataSpaces-like staging substrate
//!
//! An in-memory, versioned, spatially-indexed object store with sharded
//! servers and asynchronous transport: the "interaction and coordination
//! framework" the paper's adaptation runtime is built on (§5.1,
//! DataSpaces [Docan et al., HPDC'10]).
//!
//! * [`object`] — `(variable, version, bbox)`-addressed data objects,
//! * [`server`] — staging servers with memory caps (paper Eq. 10),
//! * [`shard`] — deterministic box-hash placement of regions onto shards,
//! * [`space`] — the sharded put/get/query space,
//! * [`tier`] / [`disklog`] — the disk spill tier: policy-driven demotion
//!   of cold versions to a checksummed on-disk object log, with
//!   promote-on-access back into memory,
//! * [`transport`] — asynchronous transfers with back-pressure,
//! * [`lock`] — version gates for coupled producer/consumer coordination,
//! * [`sum`] / [`pool`] — FNV-1a-32 checksums and the size-classed buffer
//!   pool, shared with the wire layer (`xlayer-net`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disklog;
pub mod index;
pub mod lock;
pub mod object;
pub mod pool;
pub mod pubsub;
pub mod server;
pub mod shard;
pub mod space;
pub mod sum;
pub mod tier;
pub mod transport;

pub use disklog::{DiskLog, TierError};
pub use index::BucketIndex;
pub use lock::VersionGate;
pub use object::{DataObject, ObjectDesc, ObjectKey};
pub use pool::{BufferPool, PooledBuf};
pub use pubsub::{PubSubSpace, PublishStats, Subscription};
pub use server::{StagingError, StagingServer};
pub use shard::ShardMap;
pub use space::{DataSpace, Sharding};
pub use tier::{DiskTier, ObjectHints, Persistence, SpillAction, TierConfig, TierSnapshot};
pub use transport::{
    AsyncStager, BatchClosed, DrainError, StageTask, TransportClosed, TransportStats,
};
