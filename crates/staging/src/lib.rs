//! # xlayer-staging — the DataSpaces-like staging substrate
//!
//! An in-memory, versioned, spatially-indexed object store with sharded
//! servers and asynchronous transport: the "interaction and coordination
//! framework" the paper's adaptation runtime is built on (§5.1,
//! DataSpaces [Docan et al., HPDC'10]).
//!
//! * [`object`] — `(variable, version, bbox)`-addressed data objects,
//! * [`server`] — staging servers with memory caps (paper Eq. 10),
//! * [`shard`] — deterministic box-hash placement of regions onto shards,
//! * [`space`] — the sharded put/get/query space,
//! * [`transport`] — asynchronous transfers with back-pressure,
//! * [`lock`] — version gates for coupled producer/consumer coordination.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod lock;
pub mod object;
pub mod pubsub;
pub mod server;
pub mod shard;
pub mod space;
pub mod transport;

pub use index::BucketIndex;
pub use lock::VersionGate;
pub use object::{DataObject, ObjectDesc, ObjectKey};
pub use pubsub::{PubSubSpace, PublishStats, Subscription};
pub use server::{StagingError, StagingServer};
pub use shard::ShardMap;
pub use space::{DataSpace, Sharding};
pub use transport::{
    AsyncStager, BatchClosed, DrainError, StageTask, TransportClosed, TransportStats,
};
