//! The DataSpace: a sharded collection of staging servers presenting the
//! DataSpaces-style `put`/`get`/`query` API over `(variable, version, bbox)`.

use crate::object::{DataObject, ObjectDesc, ObjectKey};
use crate::pool::BufferPool;
use crate::server::{StagingError, StagingServer};
use crate::shard::ShardMap;
use crate::tier::{DiskTier, ObjectHints, SpillAction, TierConfig, TierSnapshot};
use crate::TierError;
use std::sync::Arc;
use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;

/// How objects map to servers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sharding {
    /// Hash of the object's bbox low corner — spatially deterministic, so a
    /// reader can locate an object without a directory (DataSpaces' DHT).
    BboxHash,
    /// Cycle through servers in put order.
    RoundRobin,
}

/// A sharded staging space.
///
/// ```
/// use xlayer_amr::{Fab, IBox};
/// use xlayer_staging::{DataObject, DataSpace, Sharding};
///
/// let space = DataSpace::new(4, 1 << 20, Sharding::BboxHash);
/// let region = IBox::cube(4);
/// let fab = Fab::filled(region, 1, 2.5);
/// space.put(DataObject::from_fab("rho", 1, &fab, 0, &region, 0)).unwrap();
///
/// let (back, bytes) = space.get_region("rho", 1, &region);
/// assert_eq!(bytes, region.num_cells() * 8);
/// assert_eq!(back.get(xlayer_amr::IntVect::ZERO, 0), 2.5);
/// ```
#[derive(Debug)]
pub struct DataSpace {
    servers: Vec<StagingServer>,
    sharding: Sharding,
    rr_next: parking_lot::Mutex<usize>,
}

impl DataSpace {
    /// A space of `nservers` servers, each with `memory_per_server` bytes.
    pub fn new(nservers: usize, memory_per_server: u64, sharding: Sharding) -> Self {
        assert!(nservers > 0);
        DataSpace {
            servers: (0..nservers)
                .map(|i| StagingServer::new(i, memory_per_server))
                .collect(),
            sharding,
            rr_next: parking_lot::Mutex::new(0),
        }
    }

    /// A space whose servers each carry a disk spill tier: puts beyond the
    /// memory budget demote cold versions to per-server object logs under
    /// `tier.dir` (`server-<id>.log`) instead of failing, and spilled data
    /// promotes back into memory on access. One buffer pool feeds every
    /// server's disk I/O; pass the service's pool to share further.
    pub fn new_tiered(
        nservers: usize,
        memory_per_server: u64,
        sharding: Sharding,
        tier: &TierConfig,
        pool: Arc<BufferPool>,
    ) -> Result<Self, TierError> {
        assert!(nservers > 0);
        std::fs::create_dir_all(&tier.dir).map_err(|e| TierError::Io {
            op: "open",
            detail: e.to_string(),
        })?;
        let mut servers = Vec::with_capacity(nservers);
        for i in 0..nservers {
            let t = DiskTier::open(
                tier.dir.join(format!("server-{i}.log")),
                tier,
                Arc::clone(&pool),
            )?;
            servers.push(StagingServer::with_tier(i, memory_per_server, Arc::new(t)));
        }
        Ok(DataSpace {
            servers,
            sharding,
            rr_next: parking_lot::Mutex::new(0),
        })
    }

    /// Set placement hints for variable `name` on every server's tier (a
    /// no-op without tiers).
    pub fn set_hints(&self, name: &str, hints: ObjectHints) {
        for s in &self.servers {
            if let Some(t) = s.tier() {
                t.set_hints(name, hints);
            }
        }
    }

    /// Force every tier's pressure decision to `action` (the adaptation
    /// engine's hook); `None` restores hint-driven policy. No-op without
    /// tiers.
    pub fn set_pressure_action(&self, action: Option<SpillAction>) {
        for s in &self.servers {
            if let Some(t) = s.tier() {
                t.set_forced(action);
            }
        }
    }

    /// Aggregate tier counters across servers (zeros without tiers).
    pub fn tier_stats(&self) -> TierSnapshot {
        let mut agg = TierSnapshot::default();
        for snap in self
            .servers
            .iter()
            .filter_map(|s| s.tier())
            .map(|t| t.snapshot())
        {
            agg.spilled += snap.spilled;
            agg.spilled_bytes += snap.spilled_bytes;
            agg.promoted += snap.promoted;
            agg.promoted_bytes += snap.promoted_bytes;
            agg.disk_hits += snap.disk_hits;
            agg.disk_used += snap.disk_used;
            agg.spilled_keys += snap.spilled_keys;
            // Budgets saturate: an unbounded tier reports `u64::MAX`, and
            // a sum across servers must stay "unbounded", not wrap.
            agg.disk_budget = agg.disk_budget.saturating_add(snap.disk_budget);
            agg.compactions += snap.compactions;
            agg.compact_errors += snap.compact_errors;
        }
        agg
    }

    /// Total live spilled payload bytes across servers.
    pub fn disk_used(&self) -> u64 {
        self.servers.iter().map(|s| s.disk_used()).sum()
    }

    /// Whether the space has a disk spill tier behind its memory caps.
    pub fn has_tier(&self) -> bool {
        self.servers.iter().any(|s| s.tier().is_some())
    }

    /// Free bytes left under the disk tiers' budgets, summed across
    /// servers (0 without tiers; saturates on unbounded budgets).
    pub fn disk_headroom(&self) -> u64 {
        self.servers
            .iter()
            .filter_map(|s| s.tier())
            .map(|t| t.budget().saturating_sub(t.disk_used()))
            .fold(0u64, u64::saturating_add)
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// The servers (for metrics inspection).
    pub fn servers(&self) -> &[StagingServer] {
        &self.servers
    }

    /// Total bytes resident across servers.
    pub fn used(&self) -> u64 {
        self.servers.iter().map(|s| s.used()).sum()
    }

    /// Total capacity across servers.
    pub fn capacity(&self) -> u64 {
        self.servers.iter().map(|s| s.memory_cap()).sum()
    }

    /// Which server an object lands on.
    fn shard(&self, obj: &DataObject) -> usize {
        match self.sharding {
            Sharding::BboxHash => {
                // Span-1 ShardMap: the per-corner FNV placement this space
                // has always used, now shared with the networked cluster.
                ShardMap::new(self.servers.len(), 1).shard_of(&obj.desc.bbox)
            }
            Sharding::RoundRobin => {
                let mut n = self.rr_next.lock();
                let s = *n;
                *n = (*n + 1) % self.servers.len();
                s
            }
        }
    }

    /// Store an object; on `BboxHash` collision pressure (target full), the
    /// put spills to the least-loaded server instead of failing, mirroring
    /// DataSpaces' overflow behaviour. With disk tiers attached, a server
    /// only reports `OutOfMemory` after its own disk is exhausted too, so
    /// sibling spill is the relief valve of last resort. Fails only when
    /// every server is full; a `NeedsReduction` verdict propagates
    /// immediately — it is an instruction to the producer, not a capacity
    /// failure another server could absorb.
    ///
    /// The object is wrapped in an `Arc` once on entry; a rejected put hands
    /// the same handle to the next candidate server, so spilling across N
    /// full servers copies no payload at all.
    pub fn put(&self, obj: impl Into<Arc<DataObject>>) -> Result<usize, StagingError> {
        let obj: Arc<DataObject> = obj.into();
        let target = self.shard(&obj);
        match self.servers[target].put(Arc::clone(&obj)) {
            Ok(()) => Ok(target),
            Err(reduce @ StagingError::NeedsReduction { .. }) => Err(reduce),
            Err(first_err) => {
                // Spill to the emptiest server that can take it.
                let mut order: Vec<usize> = (0..self.servers.len()).collect();
                order.sort_by_key(|&i| self.servers[i].used());
                for i in order {
                    if i == target {
                        continue;
                    }
                    if self.servers[i].put(Arc::clone(&obj)).is_ok() {
                        return Ok(i);
                    }
                }
                Err(first_err)
            }
        }
    }

    /// All objects under `(name, version)` intersecting `query`
    /// (all objects of the version if `query` is `None`), as refcounted
    /// handles — readers share the stored descriptors and payloads.
    pub fn get(&self, name: &str, version: u64, query: Option<&IBox>) -> Vec<Arc<DataObject>> {
        let key = ObjectKey::new(name, version);
        let mut out = Vec::new();
        for s in &self.servers {
            out.extend(s.get(&key, query));
        }
        out
    }

    /// Assemble a fab over `region` from every stored piece of
    /// `(name, version)` that intersects it. Cells not covered stay 0.
    /// Returns `(fab, bytes_read)`.
    pub fn get_region(&self, name: &str, version: u64, region: &IBox) -> (Fab, u64) {
        let mut fab = Fab::new(*region, 1);
        let mut bytes = 0;
        for obj in self.get(name, version, Some(region)) {
            bytes += obj.desc.bbox.intersect(region).num_cells() * 8;
            obj.copy_into(&mut fab);
        }
        (fab, bytes)
    }

    /// Descriptors of every piece of `(name, version)`.
    pub fn describe(&self, name: &str, version: u64) -> Vec<ObjectDesc> {
        let key = ObjectKey::new(name, version);
        let mut out = Vec::new();
        for s in &self.servers {
            out.extend(s.describe(&key));
        }
        out
    }

    /// Evict versions of `name` older than `min_version` on every server.
    /// Returns total bytes freed.
    pub fn evict_before(&self, name: &str, min_version: u64) -> u64 {
        self.servers
            .iter()
            .map(|s| s.evict_before(name, min_version))
            .sum()
    }

    /// Per-server resident bytes (shard balance diagnostics).
    pub fn used_per_server(&self) -> Vec<u64> {
        self.servers.iter().map(|s| s.used()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::intvect::IntVect;

    fn obj(name: &str, version: u64, lo: i64, n: i64) -> DataObject {
        let b = IBox::cube(n).shift(IntVect::splat(lo));
        let mut fab = Fab::new(b, 1);
        for iv in b.cells() {
            fab.set(iv, 0, (iv[0] + iv[1] + iv[2]) as f64);
        }
        DataObject::from_fab(name, version, &fab, 0, &b, 0)
    }

    #[test]
    fn put_get_across_shards() {
        let space = DataSpace::new(4, 1 << 20, Sharding::BboxHash);
        for lo in [0i64, 8, 16, 24] {
            space.put(obj("rho", 5, lo, 4)).unwrap();
        }
        assert_eq!(space.get("rho", 5, None).len(), 4);
        assert_eq!(space.get("rho", 4, None).len(), 0);
    }

    #[test]
    fn bbox_hash_is_deterministic() {
        let a = DataSpace::new(4, 1 << 20, Sharding::BboxHash);
        let b = DataSpace::new(4, 1 << 20, Sharding::BboxHash);
        let s1 = a.put(obj("rho", 1, 8, 4)).unwrap();
        let s2 = b.put(obj("rho", 1, 8, 4)).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn round_robin_spreads() {
        let space = DataSpace::new(3, 1 << 20, Sharding::RoundRobin);
        let shards: Vec<usize> = (0..6)
            .map(|i| space.put(obj("rho", 1, i * 8, 4)).unwrap())
            .collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2]);
    }

    fn slab(name: &str, version: u64, xlo: i64, xhi: i64) -> DataObject {
        let b = IBox::new(IntVect::new(xlo, 0, 0), IntVect::new(xhi, 7, 7));
        let mut fab = Fab::new(b, 1);
        for iv in b.cells() {
            fab.set(iv, 0, (iv[0] + iv[1] + iv[2]) as f64);
        }
        DataObject::from_fab(name, version, &fab, 0, &b, 0)
    }

    #[test]
    fn get_region_assembles_pieces() {
        // Two x-slabs tile [0,8)^3; a query straddling the seam must be
        // assembled from both.
        let space = DataSpace::new(2, 1 << 20, Sharding::BboxHash);
        space.put(slab("rho", 1, 0, 3)).unwrap();
        space.put(slab("rho", 1, 4, 7)).unwrap();
        let region = IBox::new(IntVect::splat(2), IntVect::splat(5));
        let (fab, bytes) = space.get_region("rho", 1, &region);
        assert!(bytes > 0);
        for iv in region.cells() {
            assert_eq!(fab.get(iv, 0), (iv[0] + iv[1] + iv[2]) as f64, "at {iv:?}");
        }
    }

    #[test]
    fn spill_on_full_shard() {
        // One tiny server and one large one: objects hashing to the tiny one
        // must spill rather than fail.
        let space = DataSpace::new(2, 600, Sharding::BboxHash);
        // each object is 512 B; two objects with identical lo hash to the
        // same shard, second must spill.
        space.put(obj("rho", 1, 0, 4)).unwrap();
        space.put(obj("rho", 2, 0, 4)).unwrap();
        assert_eq!(space.get("rho", 1, None).len(), 1);
        assert_eq!(space.get("rho", 2, None).len(), 1);
        let per = space.used_per_server();
        assert_eq!(per.iter().filter(|&&u| u == 512).count(), 2);
    }

    #[test]
    fn spill_retries_without_copying_the_object() {
        // The spill path must hand the same shared object to each candidate
        // server rather than deep-cloning it per retry: the stored payload
        // is the very allocation the caller submitted.
        let space = DataSpace::new(2, 600, Sharding::BboxHash);
        let first = obj("rho", 1, 0, 4); // 512 B
        let second = obj("rho", 2, 0, 4); // same lo => same shard; must spill
        let second_payload = second.payload.as_ref().as_ptr();
        let s1 = space.put(first).unwrap();
        let s2 = space.put(second).unwrap();
        assert_ne!(s1, s2, "second object must spill to the other server");
        let got = space.get("rho", 2, None);
        assert_eq!(got.len(), 1);
        assert_eq!(
            got[0].payload.as_ref().as_ptr(),
            second_payload,
            "stored payload is not the caller's allocation (copied on spill)"
        );
    }

    #[test]
    fn out_of_memory_when_everything_full() {
        let space = DataSpace::new(2, 600, Sharding::RoundRobin);
        space.put(obj("rho", 1, 0, 4)).unwrap();
        space.put(obj("rho", 2, 0, 4)).unwrap();
        let err = space.put(obj("rho", 3, 0, 4));
        assert!(err.is_err());
    }

    #[test]
    fn eviction_across_servers() {
        let space = DataSpace::new(3, 1 << 20, Sharding::RoundRobin);
        for v in 1..=4 {
            space.put(obj("rho", v, 0, 4)).unwrap();
        }
        let freed = space.evict_before("rho", 3);
        assert_eq!(freed, 2 * 512);
        assert!(space.get("rho", 1, None).is_empty());
        assert!(space.get("rho", 2, None).is_empty());
        assert_eq!(space.get("rho", 3, None).len(), 1);
    }

    #[test]
    fn describe_lists_metadata_without_payload_cost() {
        let space = DataSpace::new(2, 1 << 20, Sharding::BboxHash);
        space.put(obj("rho", 1, 0, 4)).unwrap();
        let descs = space.describe("rho", 1);
        assert_eq!(descs.len(), 1);
        assert_eq!(descs[0].bytes, 512);
    }
}
