//! The disk tier's object log: spilled versions as chunked, checksummed
//! extents in one append-only file per staging server.
//!
//! Layout of one record (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic            "XTLG"
//!      4     2  name_len         u16
//!      6     8  version          u64
//!     14    48  bbox             lo.x lo.y lo.z hi.x hi.y hi.z, i64 each
//!     62    48  core             same encoding as bbox
//!    110     8  dx               f64 bit pattern
//!    118     8  origin_rank      u64
//!    126     8  payload_len      u64
//!    134     4  chunk_size       u32
//!    138     4  nsums            u32 (= ceil(payload_len / chunk_size))
//!    142     …  name             name_len bytes, UTF-8
//!      …     …  sums             nsums × u32, FNV-1a-32 per payload chunk
//!      …     4  head_sum         FNV-1a-32 over every byte above
//!      …     …  payload          payload_len bytes, LE f64 Fortran order
//! ```
//!
//! The in-memory extent index (`BTreeMap<ObjectKey, Vec<Extent>>`) is
//! rebuilt on open by scanning the log; lookups never touch the file. Each
//! record carries its own integrity evidence: `head_sum` covers the
//! metadata, and the per-chunk payload sums (the same FNV-1a-32 chunk-sum
//! scheme the wire protocol streams with) are re-verified on every read, so
//! a truncated or bit-flipped extent surfaces as a typed [`TierError`] —
//! never as a panic and never as silently wrong data. A torn tail record
//! (the crash case) is detected during the open scan, reported through
//! [`DiskLog::recovery`], and truncated away so the log appends cleanly
//! again.
//!
//! Deletes only mark extents dead in the index; the bytes are reclaimed by
//! [`DiskLog::maybe_compact`], which rewrites live records into a fresh
//! file once the dead fraction crosses the configured floor.
//!
//! **Durability scope.** The log is a spill tier, not a database:
//! appends are written but not fsynced, so records spilled shortly before
//! a *power* failure may be lost (they reappear on reopen as a torn tail
//! and are truncated away); everything already in the page cache survives
//! a *process* crash. Compaction is the one place that syncs — the
//! rewritten file is `sync_all`'d before it atomically replaces the log
//! (and the directory entry is fsynced best-effort after), so a completed
//! compaction never loses previously-stable records to power loss. The
//! `Persistence::Durable` hint is a memory-pressure priority (never
//! reject, always spill), not a power-loss guarantee.

use crate::object::{DataObject, ObjectDesc, ObjectKey};
use crate::pool::BufferPool;
use crate::sum::{checksum, chunk_sums};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use xlayer_amr::boxes::IBox;
use xlayer_amr::intvect::IntVect;

/// Record magic: "XTLG" (xlayer tier log).
const MAGIC: [u8; 4] = *b"XTLG";
/// Fixed-size prefix of a record, before the name/sums tail.
const FIXED_HEAD: usize = 142;
/// Longest accepted variable name (matches the wire protocol's cap).
const MAX_NAME: usize = 4096;

/// Why a disk-tier operation failed.
#[derive(Debug)]
pub enum TierError {
    /// An I/O operation on the log failed.
    Io {
        /// What the log was doing (`"open"`, `"append"`, `"read"`, …).
        op: &'static str,
        /// The underlying error, stringified.
        detail: String,
    },
    /// A record failed its checksum or structural validation — a torn
    /// write, a truncated file, or corruption at rest.
    Corrupt {
        /// File offset of the offending record.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// Appending would exceed the disk budget: the spill tier itself is
    /// full, the cluster's signal to fall back to sibling shards.
    DiskFull {
        /// Configured budget for live payload bytes.
        budget: u64,
        /// Live payload bytes already in the log.
        used: u64,
        /// Payload size of the rejected append.
        requested: u64,
    },
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::Io { op, detail } => write!(f, "disk tier {op} failed: {detail}"),
            TierError::Corrupt { offset, detail } => {
                write!(f, "disk tier record at offset {offset} corrupt: {detail}")
            }
            TierError::DiskFull {
                budget,
                used,
                requested,
            } => write!(
                f,
                "disk tier full: budget {budget} B, live {used} B, requested {requested} B"
            ),
        }
    }
}

impl std::error::Error for TierError {}

fn io_err(op: &'static str, e: std::io::Error) -> TierError {
    TierError::Io {
        op,
        detail: e.to_string(),
    }
}

/// One spilled object's location and metadata: everything a lookup needs
/// without touching the file.
#[derive(Clone, Debug)]
pub struct Extent {
    /// File offset of the record's first byte.
    offset: u64,
    /// Total record length (header + name + sums + head_sum + payload).
    record_len: u64,
    /// Absolute file offset of the payload.
    payload_off: u64,
    /// The object's descriptor, as stored.
    desc: ObjectDesc,
    /// Chunk size the payload sums were computed at.
    chunk: u32,
    /// Per-chunk FNV-1a-32 payload sums (shared so a promote can hand them
    /// to the wire layer's chunk-sum cache without recomputation).
    sums: Arc<Vec<u32>>,
}

impl Extent {
    /// The stored descriptor.
    pub fn desc(&self) -> &ObjectDesc {
        &self.desc
    }

    /// Chunk size and shared per-chunk sums, reusable by chunked senders.
    pub fn chunk_sums(&self) -> (u32, Arc<Vec<u32>>) {
        (self.chunk, Arc::clone(&self.sums))
    }
}

fn put_ibox(buf: &mut Vec<u8>, b: &IBox) {
    let IntVect([lx, ly, lz]) = b.lo();
    let IntVect([hx, hy, hz]) = b.hi();
    for v in [lx, ly, lz, hx, hy, hz] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// A bounds-checked little-endian reader over a byte slice.
struct Cur<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.buf.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| {
            let mut b = [0u8; 2];
            b.copy_from_slice(s);
            u16::from_le_bytes(b)
        })
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| {
            let mut b = [0u8; 4];
            b.copy_from_slice(s);
            u32::from_le_bytes(b)
        })
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| {
            let mut b = [0u8; 8];
            b.copy_from_slice(s);
            u64::from_le_bytes(b)
        })
    }

    fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }

    fn ibox(&mut self) -> Option<IBox> {
        let (lx, ly, lz) = (self.i64()?, self.i64()?, self.i64()?);
        let (hx, hy, hz) = (self.i64()?, self.i64()?, self.i64()?);
        Some(IBox::new(
            IntVect::new(lx, ly, lz),
            IntVect::new(hx, hy, hz),
        ))
    }
}

/// The decoded fixed+variable header of one record.
struct RecordHead {
    desc: ObjectDesc,
    chunk: u32,
    sums: Vec<u32>,
    /// Length of header + name + sums + head_sum (payload starts here).
    head_len: u64,
}

/// The per-server on-disk object log with its in-memory extent index.
#[derive(Debug)]
pub struct DiskLog {
    path: PathBuf,
    file: File,
    index: BTreeMap<ObjectKey, Vec<Extent>>,
    /// Append position: end of the last valid record.
    tail: u64,
    /// Payload bytes referenced by the index.
    live_payload: u64,
    /// Payload bytes of deleted extents awaiting compaction.
    dead_payload: u64,
    budget: u64,
    chunk: u32,
    recovery: Vec<TierError>,
    compactions: u64,
    pool: Arc<BufferPool>,
}

impl DiskLog {
    /// Open (or create) the log at `path`, scanning existing records into
    /// the index. `budget` caps live payload bytes; `chunk` is the chunk
    /// size payload sums are computed at. A torn or corrupt tail is
    /// truncated away and reported through [`DiskLog::recovery`]; only an
    /// unusable file (unreadable, bad permissions) fails the open itself.
    pub fn open(
        path: impl Into<PathBuf>,
        budget: u64,
        chunk: u32,
        pool: Arc<BufferPool>,
    ) -> Result<Self, TierError> {
        let path = path.into();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", e))?;
        let mut log = DiskLog {
            path,
            file,
            index: BTreeMap::new(),
            tail: 0,
            live_payload: 0,
            dead_payload: 0,
            budget,
            chunk: chunk.max(1),
            recovery: Vec::new(),
            compactions: 0,
            pool,
        };
        log.scan()?;
        Ok(log)
    }

    /// Errors found while scanning the log on open (empty after a clean
    /// shutdown). Each entry describes one record that had to be dropped.
    pub fn recovery(&self) -> &[TierError] {
        &self.recovery
    }

    /// Live payload bytes (what counts against the budget).
    pub fn live_bytes(&self) -> u64 {
        self.live_payload
    }

    /// Payload bytes of deleted extents not yet reclaimed by compaction.
    pub fn dead_bytes(&self) -> u64 {
        self.dead_payload
    }

    /// The live-payload budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Whether `bytes` more payload would fit under the budget.
    pub fn has_room(&self, bytes: u64) -> bool {
        self.live_payload.saturating_add(bytes) <= self.budget
    }

    /// Number of `(name, version)` keys with at least one live extent.
    pub fn num_keys(&self) -> usize {
        self.index.len()
    }

    /// Compactions performed since open.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Whether any live extent exists under `key`.
    pub fn contains(&self, key: &ObjectKey) -> bool {
        self.index.contains_key(key)
    }

    /// Descriptors of every live extent under `key` — index only, no I/O.
    pub fn extents_for(&self, key: &ObjectKey) -> Vec<ObjectDesc> {
        self.index
            .get(key)
            .map(|v| v.iter().map(|e| e.desc.clone()).collect())
            .unwrap_or_default()
    }

    /// Every live key, in `(name, version)` order — the deterministic walk
    /// the space's tier accounting and drain paths use.
    pub fn keys(&self) -> Vec<ObjectKey> {
        self.index.keys().cloned().collect()
    }

    fn encode_head(obj: &DataObject, chunk: u32, sums: &[u32]) -> Vec<u8> {
        let name = obj.desc.key.name.as_bytes();
        let mut head = Vec::with_capacity(FIXED_HEAD + name.len() + sums.len() * 4 + 4);
        head.extend_from_slice(&MAGIC);
        head.extend_from_slice(&(name.len() as u16).to_le_bytes());
        head.extend_from_slice(&obj.desc.key.version.to_le_bytes());
        put_ibox(&mut head, &obj.desc.bbox);
        put_ibox(&mut head, &obj.desc.core);
        head.extend_from_slice(&obj.desc.dx.to_bits().to_le_bytes());
        head.extend_from_slice(&(obj.desc.origin_rank as u64).to_le_bytes());
        head.extend_from_slice(&obj.desc.bytes.to_le_bytes());
        head.extend_from_slice(&chunk.to_le_bytes());
        head.extend_from_slice(&(sums.len() as u32).to_le_bytes());
        head.extend_from_slice(name);
        for s in sums {
            head.extend_from_slice(&s.to_le_bytes());
        }
        let hs = checksum(&head);
        head.extend_from_slice(&hs.to_le_bytes());
        head
    }

    /// Append `obj` as a new extent. Fails with [`TierError::DiskFull`]
    /// when the live payload would exceed the budget; the file is only
    /// written after that check, so a rejected append changes nothing.
    pub fn append(&mut self, obj: &DataObject) -> Result<(), TierError> {
        let bytes = obj.desc.bytes;
        if !self.has_room(bytes) {
            return Err(TierError::DiskFull {
                budget: self.budget,
                used: self.live_payload,
                requested: bytes,
            });
        }
        let sums = chunk_sums(obj.payload.as_ref(), self.chunk as usize);
        let head = Self::encode_head(obj, self.chunk, &sums);
        let offset = self.tail;
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| io_err("append", e))?;
        self.file
            .write_all(&head)
            .map_err(|e| io_err("append", e))?;
        self.file
            .write_all(obj.payload.as_ref())
            .map_err(|e| io_err("append", e))?;
        let head_len = head.len() as u64;
        let record_len = head_len + bytes;
        self.tail = offset + record_len;
        self.live_payload += bytes;
        self.index
            .entry(obj.desc.key.clone())
            .or_default()
            .push(Extent {
                offset,
                record_len,
                payload_off: offset + head_len,
                desc: obj.desc.clone(),
                chunk: self.chunk,
                sums: Arc::new(sums),
            });
        Ok(())
    }

    /// Read one extent's payload back, verifying every chunk sum, and
    /// rebuild the object. A mismatch is [`TierError::Corrupt`].
    fn read_extent(&mut self, ext: &Extent) -> Result<DataObject, TierError> {
        let len = ext.desc.bytes as usize;
        let mut buf = self.pool.acquire(len);
        self.file
            .seek(SeekFrom::Start(ext.payload_off))
            .map_err(|e| io_err("read", e))?;
        self.file
            .read_exact(&mut buf)
            .map_err(|e| io_err("read", e))?;
        let got = chunk_sums(&buf, ext.chunk as usize);
        if got != *ext.sums {
            return Err(TierError::Corrupt {
                offset: ext.offset,
                detail: "payload chunk sums do not match the stored sums".to_string(),
            });
        }
        // The buffer becomes the long-lived payload: detach it from the
        // pool rather than copying it out.
        DataObject::from_wire(ext.desc.clone(), Bytes::from(buf.into_vec())).ok_or(
            TierError::Corrupt {
                offset: ext.offset,
                detail: "stored descriptor is inconsistent with its payload".to_string(),
            },
        )
    }

    /// Read every live extent under `key` whose bbox intersects `query`
    /// (all of them if `query` is `None`), in append order.
    pub fn read(
        &mut self,
        key: &ObjectKey,
        query: Option<&IBox>,
    ) -> Result<Vec<DataObject>, TierError> {
        let extents: Vec<Extent> = self
            .index
            .get(key)
            .map(|v| {
                v.iter()
                    .filter(|e| match query {
                        None => true,
                        Some(q) => !e.desc.bbox.intersect(q).is_empty(),
                    })
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        let mut out = Vec::with_capacity(extents.len());
        for ext in &extents {
            out.push(self.read_extent(ext)?);
        }
        Ok(out)
    }

    /// Drop every live extent under `key` (the bytes become dead weight
    /// until compaction). Returns payload bytes freed.
    pub fn remove(&mut self, key: &ObjectKey) -> u64 {
        let Some(extents) = self.index.remove(key) else {
            return 0;
        };
        let freed: u64 = extents.iter().map(|e| e.desc.bytes).sum();
        self.live_payload = self.live_payload.saturating_sub(freed);
        self.dead_payload += freed;
        freed
    }

    /// Drop every extent of variable `name` older than `min_version`.
    /// Returns payload bytes freed.
    pub fn drop_before(&mut self, name: &str, min_version: u64) -> u64 {
        let victims: Vec<ObjectKey> = self
            .index
            .keys()
            .filter(|k| k.name == name && k.version < min_version)
            .cloned()
            .collect();
        victims.iter().map(|k| self.remove(k)).sum()
    }

    /// Drop everything. Returns payload bytes freed.
    pub fn clear(&mut self) -> u64 {
        let keys = self.keys();
        keys.iter().map(|k| self.remove(k)).sum()
    }

    /// Rewrite live records into a fresh file when at least `min_dead`
    /// payload bytes are dead, atomically replacing the log. Returns
    /// whether a compaction ran.
    pub fn maybe_compact(&mut self, min_dead: u64) -> Result<bool, TierError> {
        if self.dead_payload < min_dead.max(1) {
            return Ok(false);
        }
        let tmp_path = self.path.with_extension("compact");
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(|e| io_err("compact", e))?;
        let mut new_tail = 0u64;
        // Move live records in index order; raw byte copy, offsets patched.
        let keys = self.keys();
        let mut moved: BTreeMap<ObjectKey, Vec<Extent>> = BTreeMap::new();
        for key in keys {
            let extents = self.index.get(&key).cloned().unwrap_or_default();
            let mut fresh = Vec::with_capacity(extents.len());
            for mut ext in extents {
                let mut buf = self.pool.acquire(ext.record_len as usize);
                self.file
                    .seek(SeekFrom::Start(ext.offset))
                    .map_err(|e| io_err("compact", e))?;
                self.file
                    .read_exact(&mut buf)
                    .map_err(|e| io_err("compact", e))?;
                tmp.write_all(&buf).map_err(|e| io_err("compact", e))?;
                let head_len = ext.payload_off - ext.offset;
                ext.offset = new_tail;
                ext.payload_off = new_tail + head_len;
                new_tail += ext.record_len;
                fresh.push(ext);
            }
            moved.insert(key, fresh);
        }
        // Flush the rewrite to stable storage BEFORE the rename makes it
        // the log: rename-over is only atomic for readers; on power loss a
        // renamed-but-unsynced file can come back empty, losing every live
        // record. A failure here leaves the old log untouched.
        tmp.sync_all().map_err(|e| io_err("compact", e))?;
        std::fs::rename(&tmp_path, &self.path).map_err(|e| io_err("compact", e))?;
        // Persist the rename itself (the directory entry). Best-effort:
        // the data is already safe under either name, and not every
        // filesystem supports fsync on a directory handle.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        self.file = tmp;
        self.index = moved;
        self.tail = new_tail;
        self.dead_payload = 0;
        self.compactions += 1;
        Ok(true)
    }

    /// Decode and validate one record head starting at `offset`; the file
    /// cursor is left at the start of the payload.
    fn read_head(&mut self, offset: u64) -> Result<RecordHead, TierError> {
        let corrupt = |detail: String| TierError::Corrupt { offset, detail };
        let mut fixed = [0u8; FIXED_HEAD];
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| io_err("scan", e))?;
        self.file
            .read_exact(&mut fixed)
            .map_err(|_| corrupt("record head truncated".to_string()))?;
        let mut c = Cur::new(&fixed);
        let bad = || corrupt("record head fields truncated".to_string());
        if c.take(4) != Some(MAGIC.as_slice()) {
            return Err(corrupt("bad record magic".to_string()));
        }
        let name_len = c.u16().ok_or_else(bad)? as usize;
        let version = c.u64().ok_or_else(bad)?;
        let bbox = c.ibox().ok_or_else(bad)?;
        let core = c.ibox().ok_or_else(bad)?;
        let dx = f64::from_bits(c.u64().ok_or_else(bad)?);
        let origin_rank = c.u64().ok_or_else(bad)? as usize;
        let bytes = c.u64().ok_or_else(bad)?;
        let chunk = c.u32().ok_or_else(bad)?.max(1);
        let nsums = c.u32().ok_or_else(bad)? as usize;
        if name_len > MAX_NAME {
            return Err(corrupt(format!("name length {name_len} exceeds cap")));
        }
        let want_sums = (bytes as usize).div_ceil(chunk as usize);
        if nsums != want_sums {
            return Err(corrupt(format!(
                "{nsums} chunk sums stored for a {bytes}-byte payload at chunk {chunk}"
            )));
        }
        let mut tailbuf = vec![0u8; name_len + nsums * 4 + 4];
        self.file
            .read_exact(&mut tailbuf)
            .map_err(|_| corrupt("record name/sums truncated".to_string()))?;
        let mut c = Cur::new(&tailbuf);
        let name_bytes = c.take(name_len).ok_or_else(bad)?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| corrupt("record name is not UTF-8".to_string()))?
            .to_string();
        let mut sums = Vec::with_capacity(nsums);
        for _ in 0..nsums {
            sums.push(c.u32().ok_or_else(bad)?);
        }
        let stored_sum = c.u32().ok_or_else(bad)?;
        let head_bytes = FIXED_HEAD + name_len + nsums * 4;
        let mut whole = Vec::with_capacity(head_bytes);
        whole.extend_from_slice(&fixed);
        whole.extend_from_slice(tailbuf.get(..name_len + nsums * 4).unwrap_or_default());
        if checksum(&whole) != stored_sum {
            return Err(corrupt("record head checksum mismatch".to_string()));
        }
        let desc = ObjectDesc {
            key: ObjectKey::new(name, version),
            bbox,
            core,
            dx,
            bytes,
            origin_rank,
        };
        if !desc.is_consistent() {
            return Err(corrupt("record descriptor is inconsistent".to_string()));
        }
        Ok(RecordHead {
            desc,
            chunk,
            sums,
            head_len: (head_bytes + 4) as u64,
        })
    }

    /// Scan the whole file on open, rebuilding the index. Stops at the
    /// first invalid record, truncates the file there, and records the
    /// reason in `recovery` — a torn tail must not poison later appends.
    fn scan(&mut self) -> Result<(), TierError> {
        let file_len = self.file.metadata().map_err(|e| io_err("open", e))?.len();
        let mut offset = 0u64;
        while offset < file_len {
            let head = match self.read_head(offset) {
                Ok(h) => h,
                Err(e @ TierError::Corrupt { .. }) => {
                    self.recovery.push(e);
                    break;
                }
                Err(e) => return Err(e),
            };
            let payload_off = offset + head.head_len;
            let record_len = head.head_len + head.desc.bytes;
            if payload_off + head.desc.bytes > file_len {
                self.recovery.push(TierError::Corrupt {
                    offset,
                    detail: format!(
                        "payload truncated: record needs {} bytes, file ends at {file_len}",
                        offset + record_len
                    ),
                });
                break;
            }
            let ext = Extent {
                offset,
                record_len,
                payload_off,
                desc: head.desc,
                chunk: head.chunk,
                sums: Arc::new(head.sums),
            };
            // Verify the payload sums now: a record whose payload was torn
            // mid-write is detected at open, not at first read.
            match self.read_extent(&ext) {
                Ok(_) => {}
                Err(e @ TierError::Corrupt { .. }) => {
                    self.recovery.push(e);
                    break;
                }
                Err(e) => return Err(e),
            }
            self.live_payload += ext.desc.bytes;
            self.index
                .entry(ext.desc.key.clone())
                .or_default()
                .push(ext);
            offset += record_len;
        }
        self.tail = offset;
        if offset < file_len {
            // Drop the torn tail so future appends start from a clean edge.
            self.file.set_len(offset).map_err(|e| io_err("open", e))?;
        }
        Ok(())
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::fab::Fab;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("xlayer-disklog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn obj(name: &str, version: u64, lo: i64, n: i64) -> DataObject {
        let b = IBox::cube(n).shift(IntVect::splat(lo));
        let mut fab = Fab::new(b, 1);
        for iv in b.cells() {
            fab.set(
                iv,
                0,
                (iv[0] * 100 + iv[1] * 10 + iv[2] + version as i64) as f64,
            );
        }
        DataObject::from_fab(name, version, &fab, 0, &b, 3).with_dx(0.5)
    }

    fn open(dir: &Path, budget: u64) -> DiskLog {
        DiskLog::open(
            dir.join("test.log"),
            budget,
            256,
            Arc::new(BufferPool::new()),
        )
        .unwrap()
    }

    #[test]
    fn append_read_roundtrip_bit_identical() {
        let dir = tmpdir("roundtrip");
        let mut log = open(&dir, 1 << 20);
        let a = obj("rho", 1, 0, 4);
        let b = obj("rho", 1, 8, 4);
        log.append(&a).unwrap();
        log.append(&b).unwrap();
        let back = log.read(&ObjectKey::new("rho", 1), None).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].payload, a.payload);
        assert_eq!(back[1].payload, b.payload);
        assert_eq!(back[0].desc, a.desc);
        assert_eq!(back[1].desc.dx, 0.5);
        // Spatial filter hits only the intersecting extent.
        let q = IBox::cube(4);
        let hits = log.read(&ObjectKey::new("rho", 1), Some(&q)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].desc.bbox, IBox::cube(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_rebuilds_index() {
        let dir = tmpdir("reopen");
        {
            let mut log = open(&dir, 1 << 20);
            log.append(&obj("rho", 1, 0, 4)).unwrap();
            log.append(&obj("p", 2, 8, 4)).unwrap();
        }
        let mut log = open(&dir, 1 << 20);
        assert!(log.recovery().is_empty());
        assert_eq!(log.num_keys(), 2);
        assert_eq!(log.live_bytes(), 2 * 512);
        let back = log.read(&ObjectKey::new("p", 2), None).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].payload, obj("p", 2, 8, 4).payload);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_detected_and_dropped() {
        let dir = tmpdir("torn");
        let path = dir.join("test.log");
        let full_len = {
            let mut log = open(&dir, 1 << 20);
            log.append(&obj("rho", 1, 0, 4)).unwrap();
            log.append(&obj("rho", 2, 0, 4)).unwrap();
            std::fs::metadata(&path).unwrap().len()
        };
        // Tear the second record's payload: the crash-mid-write case.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full_len - 100).unwrap();
        drop(f);
        let mut log = open(&dir, 1 << 20);
        assert_eq!(log.recovery().len(), 1, "torn tail must be reported");
        assert!(matches!(
            log.recovery().first(),
            Some(TierError::Corrupt { .. })
        ));
        // First record survives, second is gone, file truncated clean.
        assert!(log.contains(&ObjectKey::new("rho", 1)));
        assert!(!log.contains(&ObjectKey::new("rho", 2)));
        let back = log.read(&ObjectKey::new("rho", 1), None).unwrap();
        assert_eq!(back[0].payload, obj("rho", 1, 0, 4).payload);
        // The log appends cleanly after recovery.
        log.append(&obj("rho", 3, 0, 4)).unwrap();
        assert!(log.contains(&ObjectKey::new("rho", 3)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_payload_is_typed_not_a_panic() {
        let dir = tmpdir("flip");
        let path = dir.join("test.log");
        {
            let mut log = open(&dir, 1 << 20);
            log.append(&obj("rho", 1, 0, 4)).unwrap();
        }
        // Flip a byte in the payload (the record tail).
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 9] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // Open-scan verification reports it and drops the record.
        let log = open(&dir, 1 << 20);
        assert_eq!(log.recovery().len(), 1);
        assert!(!log.contains(&ObjectKey::new("rho", 1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_enforced_before_any_write() {
        let dir = tmpdir("budget");
        let mut log = open(&dir, 1000);
        log.append(&obj("rho", 1, 0, 4)).unwrap(); // 512 B
        let err = log.append(&obj("rho", 2, 0, 4)).unwrap_err();
        assert!(matches!(
            err,
            TierError::DiskFull {
                budget: 1000,
                used: 512,
                requested: 512,
            }
        ));
        // Removal frees budget; dead bytes await compaction.
        assert_eq!(log.remove(&ObjectKey::new("rho", 1)), 512);
        assert_eq!(log.dead_bytes(), 512);
        log.append(&obj("rho", 2, 0, 4)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_dead_extents() {
        let dir = tmpdir("compact");
        let path = dir.join("test.log");
        let mut log = open(&dir, 1 << 20);
        for v in 1..=4 {
            log.append(&obj("rho", v, 0, 4)).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        assert_eq!(log.drop_before("rho", 3), 2 * 512);
        assert!(!log.maybe_compact(u64::MAX).unwrap(), "below threshold");
        assert!(log.maybe_compact(512).unwrap());
        assert_eq!(log.dead_bytes(), 0);
        assert_eq!(log.compactions(), 1);
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "compaction must shrink the file");
        // Survivors still read back bit-identically through patched offsets.
        for v in [3u64, 4] {
            let back = log.read(&ObjectKey::new("rho", v), None).unwrap();
            assert_eq!(back.len(), 1);
            assert_eq!(back[0].payload, obj("rho", v, 0, 4).payload);
        }
        // And the compacted file reopens cleanly.
        drop(log);
        let log = open(&dir, 1 << 20);
        assert!(log.recovery().is_empty());
        assert_eq!(log.num_keys(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deterministic_key_walk() {
        let dir = tmpdir("order");
        let mut log = open(&dir, 1 << 20);
        log.append(&obj("rho", 2, 0, 4)).unwrap();
        log.append(&obj("p", 9, 0, 4)).unwrap();
        log.append(&obj("rho", 1, 0, 4)).unwrap();
        let keys = log.keys();
        assert_eq!(
            keys,
            vec![
                ObjectKey::new("p", 9),
                ObjectKey::new("rho", 1),
                ObjectKey::new("rho", 2),
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
