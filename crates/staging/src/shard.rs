//! Deterministic spatial placement of objects onto staging shards.
//!
//! A [`ShardMap`] assigns every object bounding box to exactly one shard by
//! hashing the box's low corner, coarsened to a placement bucket of
//! `span` cells per side — the same box-hash DHT scheme DataSpaces uses to
//! let any client locate an object without a directory lookup. The map is a
//! pure function of `(nshards, span)`: every process that constructs the
//! same map routes identically, so producers and consumers agree on
//! placement with no coordination.
//!
//! Region queries route with [`ShardMap::query_shards`]: the set of shards
//! owning any placement bucket a matching object's low corner could fall
//! in. For objects whose sides all fit within `span` (see
//! [`ShardMap::fits`]) this set is exact — a scatter/gather over it sees
//! every matching object. Oversized objects are still placed
//! deterministically, but callers that stage them must broaden region
//! queries to all shards (the networked client does this automatically).

use xlayer_amr::boxes::IBox;
use xlayer_amr::intvect::IntVect;

/// Default placement bucket side, in cells. Matches the largest patch the
/// AMR layer produces by default, so whole patches land on one shard.
pub const DEFAULT_SPAN: i64 = 64;

/// A deterministic box-hash placement map over `IBox` regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    nshards: usize,
    span: i64,
}

impl ShardMap {
    /// A map over `nshards` shards with `span`-cell placement buckets.
    /// Both are clamped to at least 1.
    pub fn new(nshards: usize, span: i64) -> Self {
        ShardMap {
            nshards: nshards.max(1),
            span: span.max(1),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.nshards
    }

    /// Placement bucket side, in cells.
    pub fn span(&self) -> i64 {
        self.span
    }

    /// FNV-1a over the three bucket coordinates, little-endian.
    ///
    /// At `span == 1` this is byte-identical to the `Sharding::BboxHash`
    /// placement the in-process `DataSpace` has always used, which keeps
    /// in-process and networked placement mutually compatible.
    fn hash_bucket(bucket: IntVect) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for d in 0..3 {
            for b in bucket[d].to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    /// The shard owning `bbox`: hash of the low corner's placement bucket.
    /// Total — empty boxes place deterministically too.
    pub fn shard_of(&self, bbox: &IBox) -> usize {
        let bucket = bbox.lo().coarsen(self.span);
        (Self::hash_bucket(bucket) % self.nshards as u64) as usize
    }

    /// True if every side of `bbox` fits within one placement span, i.e.
    /// [`Self::query_shards`] is guaranteed to cover it for any
    /// intersecting query.
    pub fn fits(&self, bbox: &IBox) -> bool {
        bbox.is_empty() || bbox.size().max_component() <= self.span
    }

    /// All shard ids, ascending.
    pub fn all_shards(&self) -> Vec<usize> {
        (0..self.nshards).collect()
    }

    /// Shards that may hold an object (with sides ≤ `span`) intersecting
    /// `query`, ascending and deduped.
    ///
    /// Such an object's low corner lies in `[query.lo - (span-1), query.hi]`,
    /// whose placement buckets are contained in
    /// `[coarsen(query.lo) - 1, coarsen(query.hi)]` — the bucket box walked
    /// here. Once the candidate bucket count dwarfs the shard count the walk
    /// would almost surely hit every shard, so it short-circuits to all.
    pub fn query_shards(&self, query: &IBox) -> Vec<usize> {
        if query.is_empty() {
            return Vec::new();
        }
        if self.nshards == 1 {
            return vec![0];
        }
        let lo = query.lo().coarsen(self.span) - IntVect::UNIT;
        let hi = query.hi().coarsen(self.span);
        let buckets = IBox::new(lo, hi);
        if buckets.num_cells() >= 16 * self.nshards as u64 {
            return self.all_shards();
        }
        let mut hit = vec![false; self.nshards];
        let mut out = Vec::new();
        for cell in buckets.cells() {
            let s = (Self::hash_bucket(cell) % self.nshards as u64) as usize;
            if let Some(flag) = hit.get_mut(s) {
                if !*flag {
                    *flag = true;
                    out.push(s);
                }
            }
            if out.len() == self.nshards {
                break;
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube_at(lo: i64, n: i64) -> IBox {
        IBox::cube(n).shift(IntVect::splat(lo))
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        let map = ShardMap::new(4, 8);
        for lo in -40..40 {
            let b = cube_at(lo, 4);
            let s = map.shard_of(&b);
            assert!(s < 4);
            assert_eq!(s, map.shard_of(&b));
        }
    }

    #[test]
    fn span_one_matches_raw_corner_hash() {
        // span == 1 must reduce to the historical per-corner FNV placement.
        let map = ShardMap::new(4, 1);
        let b = cube_at(8, 4);
        assert_eq!(
            map.shard_of(&b),
            (ShardMap::hash_bucket(b.lo()) % 4) as usize
        );
    }

    #[test]
    fn boxes_in_same_bucket_colocate() {
        let map = ShardMap::new(7, 64);
        let a = cube_at(0, 8);
        let b = cube_at(32, 16); // same 64-bucket as `a`
        assert_eq!(map.shard_of(&a), map.shard_of(&b));
    }

    #[test]
    fn query_shards_covers_every_intersecting_fit_box() {
        let map = ShardMap::new(5, 8);
        let query = IBox::new(IntVect::new(10, 3, -6), IntVect::new(25, 9, 4));
        let routed = map.query_shards(&query);
        // Exhaustively place fitting boxes around the query.
        for x in -5..35 {
            for y in -8..20 {
                let b = IBox::new(IntVect::new(x, y, -8), IntVect::new(x + 7, y + 7, -1));
                assert!(map.fits(&b));
                if b.intersects(&query) {
                    assert!(
                        routed.contains(&map.shard_of(&b)),
                        "box {b:?} routed outside query_shards({query:?}) = {routed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn query_shards_is_sorted_and_deduped() {
        let map = ShardMap::new(3, 4);
        let q = IBox::new(IntVect::splat(-20), IntVect::splat(20));
        let s = map.query_shards(&q);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(s, sorted);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_query_routes_nowhere() {
        let map = ShardMap::new(4, 8);
        assert!(map.query_shards(&IBox::EMPTY).is_empty());
    }

    #[test]
    fn huge_query_falls_back_to_all_shards() {
        let map = ShardMap::new(4, 4);
        let q = IBox::new(IntVect::splat(-1000), IntVect::splat(1000));
        assert_eq!(map.query_shards(&q), vec![0, 1, 2, 3]);
    }

    #[test]
    fn fits_checks_every_side() {
        let map = ShardMap::new(2, 8);
        assert!(map.fits(&IBox::cube(8)));
        assert!(!map.fits(&IBox::new(IntVect::ZERO, IntVect::new(8, 3, 3))));
        assert!(map.fits(&IBox::EMPTY));
    }
}
