//! Spatial indexing of staged objects: a uniform bucket grid over bounding
//! boxes, the DHT-style lookup structure that lets a staging server answer
//! `(variable, version, bbox)` queries without scanning every object
//! (DataSpaces indexes object extents the same way).

use std::collections::{BTreeMap, HashMap};
use xlayer_amr::boxes::IBox;
use xlayer_amr::intvect::IntVect;

/// A bucket-grid index over object bounding boxes.
#[derive(Debug, Default)]
pub struct BucketIndex {
    bucket: i64,
    buckets: HashMap<IntVect, Vec<usize>>,
    /// Bounding boxes by object id (for verification and re-queries).
    bboxes: Vec<IBox>,
}

impl BucketIndex {
    /// An index with `bucket`-cell-wide buckets (≥ 1).
    pub fn new(bucket: i64) -> Self {
        BucketIndex {
            bucket: bucket.max(1),
            buckets: HashMap::new(),
            bboxes: Vec::new(),
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.bboxes.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.bboxes.is_empty()
    }

    /// The bucket coordinates a box overlaps.
    fn bucket_range(&self, bbox: &IBox) -> IBox {
        IBox::new(
            bbox.lo().coarsen(self.bucket),
            bbox.hi().coarsen(self.bucket),
        )
    }

    /// Add an object's bounding box; returns its id.
    pub fn insert(&mut self, bbox: IBox) -> usize {
        let id = self.bboxes.len();
        self.bboxes.push(bbox);
        for b in self.bucket_range(&bbox).cells() {
            self.buckets.entry(b).or_default().push(id);
        }
        id
    }

    /// The bounding box of object `id`.
    pub fn bbox(&self, id: usize) -> IBox {
        self.bboxes[id]
    }

    /// Ids of objects whose bbox intersects `query`, ascending and deduped.
    pub fn query(&self, query: &IBox) -> Vec<usize> {
        if query.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for b in self.bucket_range(query).cells() {
            if let Some(ids) = self.buckets.get(&b) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&id| self.bboxes[id].intersects(query));
        out
    }

    /// Rebuild keeping only the ids for which `keep` returns true; returns
    /// the mapping old-id → new-id, ordered so callers iterating the remap
    /// (e.g. to rewrite dependent tables) do so deterministically.
    pub fn retain(&mut self, keep: impl Fn(usize) -> bool) -> BTreeMap<usize, usize> {
        let old = std::mem::take(&mut self.bboxes);
        self.buckets.clear();
        let mut remap = BTreeMap::new();
        for (old_id, bbox) in old.into_iter().enumerate() {
            if keep(old_id) {
                let new_id = self.insert(bbox);
                remap.insert(old_id, new_id);
            }
        }
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube_at(lo: i64, n: i64) -> IBox {
        IBox::cube(n).shift(IntVect::splat(lo))
    }

    #[test]
    fn query_matches_linear_scan() {
        let mut idx = BucketIndex::new(8);
        let boxes = [
            cube_at(0, 4),
            cube_at(6, 4),
            cube_at(20, 8),
            cube_at(-12, 6),
            IBox::new(IntVect::new(0, 30, 0), IntVect::new(40, 33, 3)),
        ];
        for b in &boxes {
            idx.insert(*b);
        }
        for probe in [
            cube_at(2, 4),
            cube_at(100, 4),
            IBox::new(IntVect::new(-20, -20, -20), IntVect::new(50, 50, 50)),
            IBox::new(IntVect::new(5, 31, 1), IntVect::new(6, 31, 1)),
        ] {
            let got = idx.query(&probe);
            let expect: Vec<usize> = boxes
                .iter()
                .enumerate()
                .filter(|(_, b)| b.intersects(&probe))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expect, "probe {probe:?}");
        }
    }

    #[test]
    fn empty_query_is_empty() {
        let mut idx = BucketIndex::new(4);
        idx.insert(cube_at(0, 4));
        assert!(idx.query(&IBox::EMPTY).is_empty());
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let mut idx = BucketIndex::new(8);
        idx.insert(cube_at(-8, 8)); // [-8,-1]^3 — exactly one bucket at -1
        assert_eq!(idx.query(&cube_at(-8, 8)), vec![0]);
        assert!(idx.query(&cube_at(0, 8)).is_empty());
    }

    #[test]
    fn dedup_across_buckets() {
        let mut idx = BucketIndex::new(4);
        // spans many buckets
        idx.insert(IBox::new(IntVect::ZERO, IntVect::new(30, 3, 3)));
        let hits = idx.query(&IBox::new(IntVect::ZERO, IntVect::new(30, 3, 3)));
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn retain_rebuilds() {
        let mut idx = BucketIndex::new(8);
        idx.insert(cube_at(0, 4));
        idx.insert(cube_at(8, 4));
        idx.insert(cube_at(16, 4));
        let remap = idx.retain(|id| id != 1);
        assert_eq!(idx.len(), 2);
        assert_eq!(remap.len(), 2);
        // All remaining ids queryable
        let all = idx.query(&IBox::new(IntVect::splat(-50), IntVect::splat(50)));
        assert_eq!(all.len(), 2);
    }
}
