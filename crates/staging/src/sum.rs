//! FNV-1a 32-bit checksums — the integrity primitive shared by the wire
//! protocol (`xlayer-net`) and the disk tier ([`crate::disklog`]).
//!
//! One implementation, two consumers: a frame checksummed on the wire and
//! an extent checksummed on disk use the same function, so a payload's
//! per-chunk sums computed once (e.g. while verifying an inbound chunked
//! put) are valid wherever the object later travels — RAM, socket, or log.

/// FNV-1a 32-bit offset basis.
pub const FNV_OFFSET: u32 = 0x811c_9dc5;

/// FNV-1a 32-bit checksum of `data`.
pub fn checksum(data: &[u8]) -> u32 {
    checksum_update(FNV_OFFSET, data)
}

/// Continue an FNV-1a-32 checksum from `state` (the empty-input state is
/// [`FNV_OFFSET`], i.e. `checksum(b"")`). Composition law:
/// `checksum_update(checksum(a), b) == checksum(a ++ b)`, which lets
/// callers checksum a prefix and a payload without concatenating them.
pub fn checksum_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state ^= b as u32;
        state = state.wrapping_mul(0x0100_0193);
    }
    state
}

/// Per-chunk FNV-1a-32 sums of `payload` split at `chunk` bytes (the final
/// chunk may be short). An empty payload has no chunks.
pub fn chunk_sums(payload: &[u8], chunk: usize) -> Vec<u32> {
    payload.chunks(chunk.max(1)).map(checksum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(checksum(b""), 0x811c9dc5);
        assert_eq!(checksum(b"a"), 0xe40c292c);
        assert_eq!(checksum(b"foobar"), 0xbf9cf968);
    }

    #[test]
    fn update_composes() {
        let data = b"the quick brown fox";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(checksum_update(checksum(a), b), checksum(data));
        }
    }

    #[test]
    fn chunk_sums_cover_payload() {
        let payload: Vec<u8> = (0..100u8).collect();
        let sums = chunk_sums(&payload, 32);
        assert_eq!(sums.len(), 4); // 32+32+32+4
        assert_eq!(sums[0], checksum(&payload[..32]));
        assert_eq!(sums[3], checksum(&payload[96..]));
        assert!(chunk_sums(&[], 32).is_empty());
    }
}
