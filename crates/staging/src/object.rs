//! Staged data objects: the unit of the DataSpaces-style put/get API.
//!
//! An object is one variable's data over a bounding box at one version
//! (time step) — exactly DataSpaces' `(var, version, bbox)` addressing.

use bytes::Bytes;
use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;

/// Addressing key of a staged object.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ObjectKey {
    /// Variable name (e.g. `"density"`).
    pub name: String,
    /// Version — the simulation time step that produced the data.
    pub version: u64,
}

impl ObjectKey {
    /// Construct a key.
    pub fn new(name: impl Into<String>, version: u64) -> Self {
        ObjectKey {
            name: name.into(),
            version,
        }
    }
}

/// Descriptor of a staged object (metadata only).
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectDesc {
    /// Addressing key.
    pub key: ObjectKey,
    /// Region of index space the object covers.
    pub bbox: IBox,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Rank that produced the object.
    pub origin_rank: usize,
}

/// A staged object: descriptor plus payload.
///
/// The payload is reference-counted ([`Bytes`]), so copies between the
/// transport queue, the server store and readers share one allocation —
/// mirroring RDMA's zero-copy semantics.
#[derive(Clone, Debug)]
pub struct DataObject {
    /// Metadata.
    pub desc: ObjectDesc,
    /// Raw little-endian `f64` payload in Fortran order over `desc.bbox`.
    pub payload: Bytes,
}

impl DataObject {
    /// Package one component of a fab region into an object.
    pub fn from_fab(
        name: impl Into<String>,
        version: u64,
        fab: &Fab,
        comp: usize,
        region: &IBox,
        origin_rank: usize,
    ) -> Self {
        let r = region.intersect(&fab.ibox());
        let mut buf = Vec::with_capacity(r.num_cells() as usize * 8);
        for iv in r.cells() {
            buf.extend_from_slice(&fab.get(iv, comp).to_le_bytes());
        }
        let payload = Bytes::from(buf);
        DataObject {
            desc: ObjectDesc {
                key: ObjectKey::new(name, version),
                bbox: r,
                bytes: payload.len() as u64,
                origin_rank,
            },
            payload,
        }
    }

    /// Reconstruct the object's values as a fab over its bbox.
    pub fn to_fab(&self) -> Fab {
        let mut fab = Fab::new(self.desc.bbox, 1);
        let mut off = 0usize;
        for iv in self.desc.bbox.cells() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.payload[off..off + 8]);
            fab.set(iv, 0, f64::from_le_bytes(b));
            off += 8;
        }
        fab
    }

    /// Copy the overlap of this object into `dst` (component 0).
    pub fn copy_into(&self, dst: &mut Fab) {
        let overlap = self.desc.bbox.intersect(&dst.ibox());
        if overlap.is_empty() {
            return;
        }
        for iv in overlap.cells() {
            let off = self.desc.bbox.offset(iv) * 8;
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.payload[off..off + 8]);
            dst.set(iv, 0, f64::from_le_bytes(b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::intvect::IntVect;

    fn coord_fab(n: i64) -> Fab {
        let b = IBox::cube(n);
        let mut f = Fab::new(b, 2);
        for iv in b.cells() {
            f.set(iv, 1, (iv[0] * 100 + iv[1] * 10 + iv[2]) as f64);
        }
        f
    }

    #[test]
    fn roundtrip_through_payload() {
        let f = coord_fab(4);
        let obj = DataObject::from_fab("rho", 7, &f, 1, &IBox::cube(4), 3);
        assert_eq!(obj.desc.key, ObjectKey::new("rho", 7));
        assert_eq!(obj.desc.bytes, 64 * 8);
        assert_eq!(obj.desc.origin_rank, 3);
        let back = obj.to_fab();
        for iv in IBox::cube(4).cells() {
            assert_eq!(back.get(iv, 0), f.get(iv, 1));
        }
    }

    #[test]
    fn region_clipping() {
        let f = coord_fab(4);
        let sub = IBox::new(IntVect::splat(1), IntVect::splat(10));
        let obj = DataObject::from_fab("rho", 0, &f, 1, &sub, 0);
        assert_eq!(
            obj.desc.bbox,
            IBox::new(IntVect::splat(1), IntVect::splat(3))
        );
        assert_eq!(obj.desc.bytes, 27 * 8);
    }

    #[test]
    fn copy_into_partial_overlap() {
        let f = coord_fab(4);
        let obj = DataObject::from_fab("rho", 0, &f, 1, &IBox::cube(4), 0);
        let mut dst = Fab::new(IBox::new(IntVect::splat(2), IntVect::splat(5)), 1);
        obj.copy_into(&mut dst);
        // Overlap [2,3]^3 copied, rest zero.
        assert_eq!(dst.get(IntVect::splat(3), 0), 333.0);
        assert_eq!(dst.get(IntVect::splat(5), 0), 0.0);
    }

    #[test]
    fn payload_is_shared_not_copied() {
        let f = coord_fab(4);
        let obj = DataObject::from_fab("rho", 0, &f, 0, &IBox::cube(4), 0);
        let clone = obj.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(obj.payload.as_ptr(), clone.payload.as_ptr());
    }
}
