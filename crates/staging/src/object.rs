//! Staged data objects: the unit of the DataSpaces-style put/get API.
//!
//! An object is one variable's data over a bounding box at one version
//! (time step) — exactly DataSpaces' `(var, version, bbox)` addressing.

use bytes::Bytes;
use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;
use xlayer_amr::intvect::IntVect;

/// Addressing key of a staged object. Ordered by `(name, version)` — the
/// deterministic iteration order of the disk tier's extent index and the
/// tiebreak order of spill-victim selection.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectKey {
    /// Variable name (e.g. `"density"`).
    pub name: String,
    /// Version — the simulation time step that produced the data.
    pub version: u64,
}

impl ObjectKey {
    /// Construct a key.
    pub fn new(name: impl Into<String>, version: u64) -> Self {
        ObjectKey {
            name: name.into(),
            version,
        }
    }
}

/// Descriptor of a staged object (metadata only).
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectDesc {
    /// Addressing key.
    pub key: ObjectKey,
    /// Region of index space the object covers (payload extent).
    pub bbox: IBox,
    /// The producer's region of interest within `bbox` — e.g. the valid
    /// (non-ghost) cells when the payload carries a halo. Defaults to
    /// `bbox`. Consumers that anchor work on cells (isosurface extraction)
    /// should iterate `core`, using the rest of `bbox` as read-only halo.
    pub core: IBox,
    /// Physical grid spacing of the cells (index → physical coordinates).
    /// Defaults to 1.0; producers on refined AMR levels set the level's dx
    /// so consumers reconstruct geometry placement-independently.
    pub dx: f64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Rank that produced the object.
    pub origin_rank: usize,
}

impl ObjectDesc {
    /// Whether the descriptor is internally consistent: the byte count
    /// matches the bbox's cell count (8 bytes per `f64` cell) and the core
    /// region lies within the bbox. Wire decoders call this before trusting
    /// a descriptor that arrived from a peer — the in-process constructors
    /// uphold it by construction.
    pub fn is_consistent(&self) -> bool {
        self.bytes == self.bbox.num_cells() * 8
            && (self.core.is_empty() || self.bbox.contains_box(&self.core))
    }
}

/// A staged object: descriptor plus payload.
///
/// The payload is reference-counted ([`Bytes`]), so copies between the
/// transport queue, the server store and readers share one allocation —
/// mirroring RDMA's zero-copy semantics.
#[derive(Clone, Debug)]
pub struct DataObject {
    /// Metadata.
    pub desc: ObjectDesc,
    /// Raw little-endian `f64` payload in Fortran order over `desc.bbox`.
    pub payload: Bytes,
}

impl DataObject {
    /// Package one component of a fab region into an object. The payload is
    /// copied row-wise from the fab's contiguous storage (x-fastest order).
    pub fn from_fab(
        name: impl Into<String>,
        version: u64,
        fab: &Fab,
        comp: usize,
        region: &IBox,
        origin_rank: usize,
    ) -> Self {
        let r = region.intersect(&fab.ibox());
        let mut buf = Vec::with_capacity(r.num_cells() as usize * 8);
        if !r.is_empty() {
            let src_box = fab.ibox();
            let src = fab.comp_slice(comp);
            let IntVect([lx, ly, lz]) = r.lo();
            let IntVect([_, hy, hz]) = r.hi();
            let IntVect([sx, _, _]) = r.size();
            let nx = sx as usize;
            for z in lz..=hz {
                for y in ly..=hy {
                    let s0 = src_box.offset(IntVect::new(lx, y, z));
                    for &v in &src[s0..s0 + nx] {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        let payload = Bytes::from(buf);
        DataObject {
            desc: ObjectDesc {
                key: ObjectKey::new(name, version),
                bbox: r,
                core: r,
                dx: 1.0,
                bytes: payload.len() as u64,
                origin_rank,
            },
            payload,
        }
    }

    /// Reassemble an object from an untrusted (descriptor, payload) pair,
    /// e.g. one decoded off the wire. Returns `None` unless the descriptor
    /// is self-consistent and the payload length matches it — accessors
    /// like [`DataObject::copy_into`] index the payload by geometry and
    /// rely on this invariant.
    pub fn from_wire(desc: ObjectDesc, payload: Bytes) -> Option<Self> {
        if !desc.is_consistent() || payload.len() as u64 != desc.bytes {
            return None;
        }
        Some(DataObject { desc, payload })
    }

    /// Set the physical grid spacing carried in the descriptor.
    pub fn with_dx(mut self, dx: f64) -> Self {
        self.desc.dx = dx;
        self
    }

    /// Set the core (region-of-interest) box carried in the descriptor.
    /// `core` is clipped to the payload's bbox.
    pub fn with_core(mut self, core: &IBox) -> Self {
        self.desc.core = core.intersect(&self.desc.bbox);
        self
    }

    /// Reconstruct the object's values as a fab over its bbox.
    pub fn to_fab(&self) -> Fab {
        let mut fab = Fab::new(self.desc.bbox, 1);
        // Payload and single-component fab share the same Fortran ordering
        // over bbox, so the unpack is one linear sweep.
        let dst = fab.as_mut_slice();
        for (d, chunk) in dst.iter_mut().zip(self.payload.chunks_exact(8)) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            *d = f64::from_le_bytes(b);
        }
        fab
    }

    /// Copy the overlap of this object into `dst` (component 0), row-wise.
    pub fn copy_into(&self, dst: &mut Fab) {
        let overlap = self.desc.bbox.intersect(&dst.ibox());
        if overlap.is_empty() {
            return;
        }
        let src_box = self.desc.bbox;
        let dst_box = dst.ibox();
        let out = dst.as_mut_slice();
        let IntVect([lx, ly, lz]) = overlap.lo();
        let IntVect([_, hy, hz]) = overlap.hi();
        let IntVect([sx, _, _]) = overlap.size();
        let nx = sx as usize;
        for z in lz..=hz {
            for y in ly..=hy {
                let s0 = src_box.offset(IntVect::new(lx, y, z)) * 8;
                let d0 = dst_box.offset(IntVect::new(lx, y, z));
                for (i, chunk) in self.payload[s0..s0 + nx * 8].chunks_exact(8).enumerate() {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(chunk);
                    out[d0 + i] = f64::from_le_bytes(b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord_fab(n: i64) -> Fab {
        let b = IBox::cube(n);
        let mut f = Fab::new(b, 2);
        for iv in b.cells() {
            f.set(iv, 1, (iv[0] * 100 + iv[1] * 10 + iv[2]) as f64);
        }
        f
    }

    #[test]
    fn roundtrip_through_payload() {
        let f = coord_fab(4);
        let obj = DataObject::from_fab("rho", 7, &f, 1, &IBox::cube(4), 3);
        assert_eq!(obj.desc.key, ObjectKey::new("rho", 7));
        assert_eq!(obj.desc.bytes, 64 * 8);
        assert_eq!(obj.desc.origin_rank, 3);
        let back = obj.to_fab();
        for iv in IBox::cube(4).cells() {
            assert_eq!(back.get(iv, 0), f.get(iv, 1));
        }
    }

    #[test]
    fn region_clipping() {
        let f = coord_fab(4);
        let sub = IBox::new(IntVect::splat(1), IntVect::splat(10));
        let obj = DataObject::from_fab("rho", 0, &f, 1, &sub, 0);
        assert_eq!(
            obj.desc.bbox,
            IBox::new(IntVect::splat(1), IntVect::splat(3))
        );
        assert_eq!(obj.desc.bytes, 27 * 8);
    }

    #[test]
    fn subregion_payload_matches_source_cells() {
        // A clipped region exercises the strided (non-contiguous) rows.
        let f = coord_fab(4);
        let sub = IBox::new(IntVect::new(1, 0, 2), IntVect::new(2, 3, 3));
        let obj = DataObject::from_fab("rho", 0, &f, 1, &sub, 0);
        let back = obj.to_fab();
        for iv in sub.cells() {
            assert_eq!(back.get(iv, 0), f.get(iv, 1), "at {iv:?}");
        }
    }

    #[test]
    fn dx_and_core_builders() {
        let f = coord_fab(4);
        let halo = IBox::cube(4);
        let core = IBox::new(IntVect::splat(1), IntVect::splat(2));
        let obj = DataObject::from_fab("rho", 0, &f, 1, &halo, 0)
            .with_dx(0.25)
            .with_core(&core);
        assert_eq!(obj.desc.dx, 0.25);
        assert_eq!(obj.desc.core, core);
        assert_eq!(obj.desc.bbox, halo);
        // Defaults: dx = 1, core = bbox.
        let plain = DataObject::from_fab("rho", 0, &f, 1, &halo, 0);
        assert_eq!(plain.desc.dx, 1.0);
        assert_eq!(plain.desc.core, plain.desc.bbox);
    }

    #[test]
    fn copy_into_partial_overlap() {
        let f = coord_fab(4);
        let obj = DataObject::from_fab("rho", 0, &f, 1, &IBox::cube(4), 0);
        let mut dst = Fab::new(IBox::new(IntVect::splat(2), IntVect::splat(5)), 1);
        obj.copy_into(&mut dst);
        // Overlap [2,3]^3 copied, rest zero.
        assert_eq!(dst.get(IntVect::splat(3), 0), 333.0);
        assert_eq!(dst.get(IntVect::splat(5), 0), 0.0);
    }

    #[test]
    fn from_wire_validates_descriptor_against_payload() {
        let f = coord_fab(2);
        let obj = DataObject::from_fab("rho", 0, &f, 0, &IBox::cube(2), 0);
        assert!(obj.desc.is_consistent());
        // A faithful pair reassembles.
        assert!(DataObject::from_wire(obj.desc.clone(), obj.payload.clone()).is_some());
        // Byte count disagreeing with the bbox is rejected.
        let mut lying = obj.desc.clone();
        lying.bytes += 8;
        assert!(!lying.is_consistent());
        assert!(DataObject::from_wire(lying, obj.payload.clone()).is_none());
        // Core escaping the bbox is rejected.
        let mut escaped = obj.desc.clone();
        escaped.core = IBox::cube(4);
        assert!(DataObject::from_wire(escaped, obj.payload.clone()).is_none());
        // Payload shorter than the descriptor claims is rejected.
        let short = Bytes::from(obj.payload[..obj.payload.len() - 8].to_vec());
        assert!(DataObject::from_wire(obj.desc.clone(), short).is_none());
    }

    #[test]
    fn payload_is_shared_not_copied() {
        let f = coord_fab(4);
        let obj = DataObject::from_fab("rho", 0, &f, 0, &IBox::cube(4), 0);
        let clone = obj.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(obj.payload.as_ptr(), clone.payload.as_ptr());
    }
}
