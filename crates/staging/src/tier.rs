//! The policy layer of the disk spill tier: placement decisions, per-object
//! hints, and counters over a [`DiskLog`].
//!
//! The staging server owns DRAM; this module owns what happens when DRAM is
//! full. A put that would exceed the memory budget asks [`DiskTier::decide`]
//! for a [`SpillAction`] — **spill** cold versions to the on-disk object
//! log, **downsample** (tell the producer to coarsen and retry), or
//! **reject** (the old hard `OutOfMemory`). The decision is driven by
//! per-variable [`ObjectHints`] (MaDaTS-style data properties: persistence
//! class and a version deadline) and can be overridden wholesale by the
//! adaptation engine via [`DiskTier::set_forced`] — placement across tiers
//! is a policy decision informed by workflow knowledge, not a crash path.
//!
//! Counters follow the same discipline as the buffer pool: relaxed atomics,
//! surfaced through [`DiskTier::snapshot`] and, one layer up, the networked
//! service's `Stats` opcode (`tier_spilled` / `tier_promoted` /
//! `tier_disk_used` / `tier_disk_hits`). The `spilled_keys` gauge is
//! deliberately lock-free so the server's get hot path can prove "nothing
//! is on disk" without touching the tier lock — that check is what keeps
//! warm-tier latency at parity when the tier is enabled but idle.

use crate::disklog::{DiskLog, TierError};
use crate::object::{DataObject, ObjectKey};
use crate::pool::BufferPool;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xlayer_amr::boxes::IBox;

/// What to do with a put that does not fit in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpillAction {
    /// Demote cold versions (or the incoming object) to the disk log.
    Spill,
    /// Ask the producer to coarsen by `factor` per axis and retry.
    Downsample {
        /// Per-axis coarsening factor the producer should apply.
        factor: u32,
    },
    /// Refuse the put — the pre-tier `OutOfMemory` behaviour.
    Reject,
}

/// Persistence class of a variable — the MaDaTS-style "data property" that
/// tells the tier how much the data is worth under memory pressure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Persistence {
    /// Must not be dropped under memory pressure: always spill, even if
    /// the disk budget check looks tight (the append's own budget check is
    /// the final arbiter). This is a placement priority, not a power-loss
    /// guarantee — see the durability note in [`crate::disklog`].
    Durable,
    /// Worth spilling while the disk has room; rejectable once it doesn't.
    Transient,
    /// The producer can regenerate a coarser version: prefer asking for a
    /// downsample over consuming either tier.
    Reducible {
        /// Per-axis coarsening factor to request.
        factor: u32,
    },
}

/// Per-variable placement hints, set once by the workflow layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectHints {
    /// How much the variable's data is worth under pressure.
    pub persistence: Persistence,
    /// Version (time step) after which old versions are dead weight: when
    /// choosing spill victims, versions whose `version + deadline` lies at
    /// or before the incoming put's version are demoted first. `None`
    /// means versions never expire.
    pub deadline: Option<u64>,
}

impl Default for ObjectHints {
    fn default() -> Self {
        ObjectHints {
            persistence: Persistence::Transient,
            deadline: None,
        }
    }
}

/// Configuration of a space's disk tier.
#[derive(Clone, Debug)]
pub struct TierConfig {
    /// Directory the per-server log files live in (created if absent).
    pub dir: PathBuf,
    /// Per-server cap on live spilled payload bytes.
    pub disk_budget: u64,
    /// Chunk size extents are checksummed at.
    pub chunk_size: u32,
    /// Dead payload bytes that trigger a compaction sweep.
    pub compact_min_dead: u64,
}

impl TierConfig {
    /// Defaults: unbounded budget, 1 MiB chunks (the wire protocol's
    /// default chunk size, so spilled sums are reusable by chunked sends),
    /// compaction once 64 MiB of dead extents accumulate.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TierConfig {
            dir: dir.into(),
            disk_budget: u64::MAX,
            chunk_size: 1 << 20,
            compact_min_dead: 64 << 20,
        }
    }

    /// Cap live spilled payload at `bytes` per server.
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.disk_budget = bytes;
        self
    }

    /// Checksum extents at `bytes`-sized chunks.
    pub fn with_chunk_size(mut self, bytes: u32) -> Self {
        self.chunk_size = bytes.max(1);
        self
    }

    /// Compact once `bytes` of dead extents accumulate.
    pub fn with_compact_min_dead(mut self, bytes: u64) -> Self {
        self.compact_min_dead = bytes.max(1);
        self
    }
}

/// Point-in-time view of the tier counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierSnapshot {
    /// Objects demoted to disk.
    pub spilled: u64,
    /// Payload bytes demoted to disk.
    pub spilled_bytes: u64,
    /// Objects promoted back into memory.
    pub promoted: u64,
    /// Payload bytes promoted back into memory.
    pub promoted_bytes: u64,
    /// Gets answered (at least partly) from the disk tier.
    pub disk_hits: u64,
    /// Live payload bytes currently on disk.
    pub disk_used: u64,
    /// `(name, version)` keys currently resident on disk.
    pub spilled_keys: u64,
    /// Configured disk capacity in bytes (`u64::MAX` when unbounded).
    pub disk_budget: u64,
    /// Compaction sweeps performed.
    pub compactions: u64,
    /// Opportunistic compaction sweeps that failed with an I/O error (the
    /// log keeps serving; dead bytes are retried on the next mutation).
    pub compact_errors: u64,
}

/// A staging server's disk tier: one [`DiskLog`] plus the placement policy
/// and counters around it. All methods take `&self`; internal locking keeps
/// the log consistent, and the owning server serialises mutations under its
/// own store lock so victim selection and demotion are race-free.
#[derive(Debug)]
pub struct DiskTier {
    log: Mutex<DiskLog>,
    hints: RwLock<BTreeMap<String, ObjectHints>>,
    /// Adaptation-engine override: when set, every pressure decision is
    /// this action, regardless of hints.
    forced: Mutex<Option<SpillAction>>,
    compact_min_dead: u64,
    spilled: AtomicU64,
    spilled_bytes: AtomicU64,
    promoted: AtomicU64,
    promoted_bytes: AtomicU64,
    disk_hits: AtomicU64,
    /// Gauge mirror of the log's live byte count (lock-free reads).
    disk_used: AtomicU64,
    /// Gauge mirror of the log's key count. The get hot path reads this to
    /// skip the tier entirely while nothing is spilled.
    spilled_keys: AtomicU64,
    /// Opportunistic compactions that failed with an I/O error.
    compact_errors: AtomicU64,
    /// Messages describing records dropped during open-time recovery.
    recovered: Vec<String>,
}

impl DiskTier {
    /// Open the tier's log at `path` (budget, chunking and compaction
    /// threshold from `cfg`). Records that fail validation on the open scan
    /// are dropped and reported via [`DiskTier::recovery`].
    pub fn open(
        path: impl Into<PathBuf>,
        cfg: &TierConfig,
        pool: Arc<BufferPool>,
    ) -> Result<Self, TierError> {
        let log = DiskLog::open(path, cfg.disk_budget, cfg.chunk_size, pool)?;
        let recovered = log.recovery().iter().map(|e| e.to_string()).collect();
        let tier = DiskTier {
            spilled: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
            promoted: AtomicU64::new(0),
            promoted_bytes: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_used: AtomicU64::new(log.live_bytes()),
            spilled_keys: AtomicU64::new(log.num_keys() as u64),
            compact_errors: AtomicU64::new(0),
            log: Mutex::new(log),
            hints: RwLock::new(BTreeMap::new()),
            forced: Mutex::new(None),
            compact_min_dead: cfg.compact_min_dead,
            recovered,
        };
        Ok(tier)
    }

    /// Descriptions of records dropped during open-time recovery (empty
    /// after a clean shutdown).
    pub fn recovery(&self) -> &[String] {
        &self.recovered
    }

    /// Set (replace) the placement hints for variable `name`.
    pub fn set_hints(&self, name: impl Into<String>, hints: ObjectHints) {
        self.hints.write().insert(name.into(), hints);
    }

    /// The hints for `name`, or the default ([`Persistence::Transient`], no
    /// deadline).
    pub fn hints_for(&self, name: &str) -> ObjectHints {
        self.hints.read().get(name).copied().unwrap_or_default()
    }

    /// Force every pressure decision to `action` (the adaptation engine's
    /// root–leaf mechanism hook); `None` restores hint-driven policy.
    pub fn set_forced(&self, action: Option<SpillAction>) {
        *self.forced.lock() = action;
    }

    /// Decide what to do with a `bytes`-sized put of variable `name` that
    /// does not fit in memory.
    pub fn decide(&self, name: &str, bytes: u64) -> SpillAction {
        if let Some(forced) = *self.forced.lock() {
            return forced;
        }
        match self.hints_for(name).persistence {
            Persistence::Durable => SpillAction::Spill,
            Persistence::Transient => {
                if self.log.lock().has_room(bytes) {
                    SpillAction::Spill
                } else {
                    SpillAction::Reject
                }
            }
            Persistence::Reducible { factor } => SpillAction::Downsample { factor },
        }
    }

    /// Whether `key`'s versions are past their deadline as of the put that
    /// is `now` versions in — such keys are demoted first.
    pub fn past_deadline(&self, key: &ObjectKey, now: u64) -> bool {
        match self.hints_for(&key.name).deadline {
            Some(d) => key.version.saturating_add(d) <= now,
            None => false,
        }
    }

    fn refresh_gauges(&self, log: &DiskLog) {
        self.disk_used.store(log.live_bytes(), Ordering::Relaxed);
        self.spilled_keys
            .store(log.num_keys() as u64, Ordering::Relaxed);
    }

    /// Run compaction opportunistically. Compaction is pure space
    /// reclamation — a failed sweep leaves the old log fully intact and
    /// the dead bytes are retried on the next mutation — so its I/O errors
    /// are counted, never propagated: propagating one from a promote or
    /// delete would misreport (or, worse, discard) work that already
    /// succeeded.
    fn compact_best_effort(&self, log: &mut DiskLog) {
        if log.maybe_compact(self.compact_min_dead).is_err() {
            self.compact_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Demote `obj` to the log. [`TierError::DiskFull`] means the local
    /// disk is exhausted too — the caller escalates to `OutOfMemory`, which
    /// is what lets sibling-shard spill remain the relief valve of last
    /// resort.
    pub fn spill(&self, obj: &DataObject) -> Result<(), TierError> {
        let mut log = self.log.lock();
        log.append(obj)?;
        self.spilled.fetch_add(1, Ordering::Relaxed);
        self.spilled_bytes
            .fetch_add(obj.desc.bytes, Ordering::Relaxed);
        self.refresh_gauges(&log);
        Ok(())
    }

    /// `(name, version)` keys currently on disk — lock-free gauge read; the
    /// get hot path short-circuits on zero.
    pub fn spilled_key_count(&self) -> u64 {
        self.spilled_keys.load(Ordering::Relaxed)
    }

    /// Whether any extent is spilled under `key`.
    pub fn has_spilled(&self, key: &ObjectKey) -> bool {
        self.log.lock().contains(key)
    }

    /// Whether `bytes` more payload fits under the disk budget right now.
    /// Callers that must not observe a failing spill (victim demotion)
    /// check this first; the owning server's store lock serialises tier
    /// writers, so the answer cannot go stale before the spill.
    pub fn has_room(&self, bytes: u64) -> bool {
        self.log.lock().has_room(bytes)
    }

    /// The tier's live-payload budget in bytes (`u64::MAX` = unbounded).
    pub fn budget(&self) -> u64 {
        self.log.lock().budget()
    }

    /// Total payload bytes spilled under `key`.
    pub fn spilled_bytes_for(&self, key: &ObjectKey) -> u64 {
        self.log
            .lock()
            .extents_for(key)
            .iter()
            .map(|d| d.bytes)
            .sum()
    }

    /// Descriptors of every extent spilled under `key` (no payload I/O).
    pub fn spilled_descs(&self, key: &ObjectKey) -> Vec<crate::object::ObjectDesc> {
        self.log.lock().extents_for(key)
    }

    /// Read `key`'s extents intersecting `query` without removing them —
    /// the serve-from-disk path when promotion is not worthwhile. Counts a
    /// disk hit when anything matched.
    pub fn fetch(
        &self,
        key: &ObjectKey,
        query: Option<&IBox>,
    ) -> Result<Vec<DataObject>, TierError> {
        // xlint: allow(L) -- the log mutex serializes the log file itself; I/O under it is the tier's design
        let objs = self.log.lock().read(key, query)?;
        if !objs.is_empty() {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(objs)
    }

    /// Promote: read every extent under `key`, drop them from the log, and
    /// hand the objects back for reinsertion into memory. Counts a disk hit
    /// and the promote counters; compaction runs opportunistically. Once
    /// the extents are read and unindexed, this cannot fail — the objects
    /// are the only remaining copy, so a compaction error here must not
    /// (and does not) discard them.
    pub fn take(&self, key: &ObjectKey) -> Result<Vec<DataObject>, TierError> {
        // xlint: allow(L) -- the log mutex serializes the log file itself; I/O under it is the tier's design
        let mut log = self.log.lock();
        let objs = log.read(key, None)?;
        if objs.is_empty() {
            return Ok(objs);
        }
        log.remove(key);
        let bytes: u64 = objs.iter().map(|o| o.desc.bytes).sum();
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        self.promoted
            .fetch_add(objs.len() as u64, Ordering::Relaxed);
        self.promoted_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.compact_best_effort(&mut log);
        self.refresh_gauges(&log);
        Ok(objs)
    }

    /// Drop `key`'s extents without reading them (delete path).
    pub fn remove(&self, key: &ObjectKey) -> Result<u64, TierError> {
        // xlint: allow(L) -- the log mutex serializes the log file itself; I/O under it is the tier's design
        let mut log = self.log.lock();
        let freed = log.remove(key);
        if freed > 0 {
            self.compact_best_effort(&mut log);
            self.refresh_gauges(&log);
        }
        Ok(freed)
    }

    /// Drop every extent of `name` older than `min_version` (drain path).
    pub fn evict_before(&self, name: &str, min_version: u64) -> Result<u64, TierError> {
        // xlint: allow(L) -- the log mutex serializes the log file itself; I/O under it is the tier's design
        let mut log = self.log.lock();
        let freed = log.drop_before(name, min_version);
        if freed > 0 {
            self.compact_best_effort(&mut log);
            self.refresh_gauges(&log);
        }
        Ok(freed)
    }

    /// Drop everything on disk.
    pub fn clear(&self) -> Result<u64, TierError> {
        // xlint: allow(L) -- the log mutex serializes the log file itself; I/O under it is the tier's design
        let mut log = self.log.lock();
        let freed = log.clear();
        if freed > 0 {
            self.compact_best_effort(&mut log);
        }
        self.refresh_gauges(&log);
        Ok(freed)
    }

    /// Live spilled payload bytes (lock-free gauge).
    pub fn disk_used(&self) -> u64 {
        self.disk_used.load(Ordering::Relaxed)
    }

    /// Point-in-time counters.
    pub fn snapshot(&self) -> TierSnapshot {
        let (compactions, disk_budget) = {
            let log = self.log.lock();
            (log.compactions(), log.budget())
        };
        TierSnapshot {
            spilled: self.spilled.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            promoted: self.promoted.load(Ordering::Relaxed),
            promoted_bytes: self.promoted_bytes.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_used: self.disk_used.load(Ordering::Relaxed),
            spilled_keys: self.spilled_keys.load(Ordering::Relaxed),
            disk_budget,
            compactions,
            compact_errors: self.compact_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::fab::Fab;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("xlayer-tier-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn obj(name: &str, version: u64, n: i64) -> DataObject {
        let b = IBox::cube(n);
        let mut fab = Fab::new(b, 1);
        for iv in b.cells() {
            fab.set(iv, 0, (iv[0] + iv[1] + iv[2]) as f64 + version as f64);
        }
        DataObject::from_fab(name, version, &fab, 0, &b, 0)
    }

    fn tier(dir: &std::path::Path, budget: u64) -> DiskTier {
        let cfg = TierConfig::new(dir)
            .with_budget(budget)
            .with_chunk_size(256);
        DiskTier::open(dir.join("tier.log"), &cfg, Arc::new(BufferPool::new())).unwrap()
    }

    #[test]
    fn default_policy_spills_while_disk_has_room() {
        let dir = tmpdir("policy");
        let t = tier(&dir, 600);
        assert_eq!(t.decide("rho", 512), SpillAction::Spill);
        t.spill(&obj("rho", 1, 4)).unwrap(); // 512 B
                                             // Disk now holds 512 of 600: another 512 would not fit.
        assert_eq!(t.decide("rho", 512), SpillAction::Reject);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hints_steer_the_decision() {
        let dir = tmpdir("hints");
        let t = tier(&dir, 0); // no disk room at all
        t.set_hints(
            "must-keep",
            ObjectHints {
                persistence: Persistence::Durable,
                deadline: None,
            },
        );
        t.set_hints(
            "coarse-ok",
            ObjectHints {
                persistence: Persistence::Reducible { factor: 2 },
                deadline: None,
            },
        );
        assert_eq!(t.decide("must-keep", 512), SpillAction::Spill);
        assert_eq!(
            t.decide("coarse-ok", 512),
            SpillAction::Downsample { factor: 2 }
        );
        assert_eq!(t.decide("unhinted", 512), SpillAction::Reject);
        // The engine override trumps everything.
        t.set_forced(Some(SpillAction::Reject));
        assert_eq!(t.decide("must-keep", 512), SpillAction::Reject);
        t.set_forced(None);
        assert_eq!(t.decide("must-keep", 512), SpillAction::Spill);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadlines_mark_stale_versions() {
        let dir = tmpdir("deadline");
        let t = tier(&dir, 1 << 20);
        t.set_hints(
            "rho",
            ObjectHints {
                persistence: Persistence::Transient,
                deadline: Some(3),
            },
        );
        // Version 5 expires once the put stream reaches version 8.
        assert!(!t.past_deadline(&ObjectKey::new("rho", 5), 7));
        assert!(t.past_deadline(&ObjectKey::new("rho", 5), 8));
        // No deadline hint: never stale.
        assert!(!t.past_deadline(&ObjectKey::new("p", 1), u64::MAX));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_take_roundtrip_updates_counters() {
        let dir = tmpdir("counters");
        let t = tier(&dir, 1 << 20);
        let a = obj("rho", 1, 4);
        t.spill(&a).unwrap();
        t.spill(&obj("rho", 2, 4)).unwrap();
        assert_eq!(t.spilled_key_count(), 2);
        assert!(t.has_spilled(&ObjectKey::new("rho", 1)));
        // Fetch serves without removing.
        let served = t.fetch(&ObjectKey::new("rho", 1), None).unwrap();
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].payload, a.payload);
        assert_eq!(t.spilled_key_count(), 2);
        // Take promotes: removed from disk, counters move.
        let promoted = t.take(&ObjectKey::new("rho", 1)).unwrap();
        assert_eq!(promoted.len(), 1);
        assert_eq!(promoted[0].payload, a.payload);
        assert_eq!(t.spilled_key_count(), 1);
        let s = t.snapshot();
        assert_eq!(s.spilled, 2);
        assert_eq!(s.spilled_bytes, 1024);
        assert_eq!(s.promoted, 1);
        assert_eq!(s.promoted_bytes, 512);
        assert_eq!(s.disk_hits, 2);
        assert_eq!(s.disk_used, 512);
        assert_eq!(s.spilled_keys, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promote_survives_compaction_failure() {
        let dir = tmpdir("compactfail");
        let cfg = TierConfig::new(&dir)
            .with_budget(1 << 20)
            .with_chunk_size(256)
            .with_compact_min_dead(1);
        let t = DiskTier::open(dir.join("tier.log"), &cfg, Arc::new(BufferPool::new())).unwrap();
        let a = obj("rho", 1, 4);
        t.spill(&a).unwrap();
        // Squat the compaction scratch path with a directory so every
        // compaction attempt fails with an I/O error.
        std::fs::create_dir(dir.join("tier.compact")).unwrap();
        // The promote must still hand the objects back: once they are
        // read and unindexed they are the only copy, and compaction is
        // only opportunistic space reclamation.
        let back = t.take(&ObjectKey::new("rho", 1)).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].payload, a.payload);
        assert!(!t.has_spilled(&ObjectKey::new("rho", 1)));
        let s = t.snapshot();
        assert_eq!(s.compact_errors, 1, "the failed sweep is counted");
        assert_eq!(s.compactions, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_restores_gauges_and_reports_recovery() {
        let dir = tmpdir("reopen");
        let cfg = TierConfig::new(&dir)
            .with_budget(1 << 20)
            .with_chunk_size(256);
        let path = dir.join("tier.log");
        {
            let t = DiskTier::open(&path, &cfg, Arc::new(BufferPool::new())).unwrap();
            t.spill(&obj("rho", 1, 4)).unwrap();
            assert!(t.recovery().is_empty());
        }
        let t = DiskTier::open(&path, &cfg, Arc::new(BufferPool::new())).unwrap();
        assert!(t.recovery().is_empty());
        assert_eq!(t.spilled_key_count(), 1);
        assert_eq!(t.disk_used(), 512);
        let back = t.fetch(&ObjectKey::new("rho", 1), None).unwrap();
        assert_eq!(back[0].payload, obj("rho", 1, 4).payload);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
