//! A size-classed pool of reusable byte buffers for the data hot paths.
//!
//! Every frame the networked service or client touches — and every extent
//! the disk tier reads back — needs a scratch `Vec<u8>`: an encoded body, a
//! received payload, a chunk in flight, a promoted extent. Allocating one
//! per operation puts the allocator on the steady-state put/get path; the
//! pool instead recycles buffers through power-of-two size classes so a
//! warmed-up connection performs **zero allocations per op**. That claim is
//! checkable: the pool counts hits, misses and outstanding buffers with
//! relaxed atomics, and the networked service surfaces the counters through
//! its `Stats` opcode (`pool_hits`/`pool_misses`/`pool_outstanding`).
//!
//! Lifecycle: [`BufferPool::acquire`] hands out a [`PooledBuf`] guard sized
//! (and zero-filled) to the requested length; dropping the guard returns
//! the buffer to its size class — including on every error path, which is
//! exactly why the return is in `Drop` and not an explicit call. Each class
//! keeps at most [`BufferPool::MAX_PER_CLASS`] buffers, so churn from many
//! concurrent connections cannot grow the pool without bound; overflow
//! buffers are simply freed. Requests larger than the biggest class
//! (8 MiB) fall through to a plain allocation and are freed on drop —
//! chunked streaming keeps hot-path buffers at the chunk size, far below
//! that ceiling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Smallest size class: 1 KiB.
const MIN_CLASS_BYTES: usize = 1 << 10;
/// Largest size class: 8 MiB (the wire protocol's maximum chunk size).
const MAX_CLASS_BYTES: usize = 8 << 20;
/// Number of power-of-two classes between the bounds, inclusive.
const NUM_CLASSES: usize = 14; // 2^10 ..= 2^23

/// A bounded, size-classed recycler of `Vec<u8>` buffers.
///
/// Cheap to share (`Arc` it); all methods take `&self`.
#[derive(Debug)]
pub struct BufferPool {
    classes: Vec<Mutex<Vec<Vec<u8>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    outstanding: AtomicU64,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// Maximum buffers retained per size class; overflow is freed.
    pub const MAX_PER_CLASS: usize = 8;

    /// An empty pool (no buffers are pre-allocated; classes fill on first
    /// release).
    pub fn new() -> Self {
        BufferPool {
            classes: (0..NUM_CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            outstanding: AtomicU64::new(0),
        }
    }

    /// Index of the smallest class with capacity `>= len`, or `None` if
    /// `len` exceeds the largest class.
    fn class_for(len: usize) -> Option<usize> {
        if len > MAX_CLASS_BYTES {
            return None;
        }
        let want = len.max(MIN_CLASS_BYTES).next_power_of_two();
        // want is in [2^10, 2^23]; map to [0, NUM_CLASSES).
        Some(want.trailing_zeros() as usize - 10)
    }

    /// Capacity of class `idx`.
    fn class_bytes(idx: usize) -> usize {
        MIN_CLASS_BYTES << idx
    }

    /// Take a buffer of exactly `len` zeroed bytes, recycled when possible.
    ///
    /// A recycled buffer counts as a hit; an allocation (empty class, or
    /// `len` above the largest class) counts as a miss. The returned guard
    /// gives the buffer back on drop.
    pub fn acquire(self: &Arc<Self>, len: usize) -> PooledBuf {
        let mut buf = match Self::class_for(len) {
            Some(idx) => match self.classes[idx].lock().pop() {
                Some(b) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    b
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    Vec::with_capacity(Self::class_bytes(idx))
                }
            },
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        buf.clear();
        buf.resize(len, 0);
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        PooledBuf {
            buf,
            pool: Arc::clone(self),
        }
    }

    /// Return a buffer to a size class (called from [`PooledBuf`]'s
    /// `Drop`). The buffer parks in the largest class whose floor its
    /// capacity satisfies — so a buffer that grew past its acquire class
    /// still recycles. Buffers below the smallest class or above the
    /// largest (so huge one-off payload scratch is never retained), and
    /// overflow beyond [`Self::MAX_PER_CLASS`], are freed.
    fn release(&self, buf: Vec<u8>) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        let cap = buf.capacity();
        if !(MIN_CLASS_BYTES..=MAX_CLASS_BYTES).contains(&cap) {
            return;
        }
        let floor = (usize::BITS - 1 - cap.leading_zeros()) as usize;
        let idx = (floor - 10).min(NUM_CLASSES - 1);
        let mut class = self.classes[idx].lock();
        if class.len() < Self::MAX_PER_CLASS {
            class.push(buf);
        }
    }

    /// Buffers served from a size class without allocating.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Buffers that had to be allocated (cold class or oversized request).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Buffers currently checked out.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Buffers currently parked across all size classes (test/diagnostic).
    pub fn parked(&self) -> usize {
        self.classes.iter().map(|c| c.lock().len()).sum()
    }
}

/// A buffer checked out of a [`BufferPool`]; returns itself on drop (so
/// every error path gives the buffer back automatically).
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<BufferPool>,
}

impl PooledBuf {
    /// Consume the guard WITHOUT returning the buffer to the pool — for
    /// the rare path where the bytes become a long-lived payload. The
    /// outstanding count is still decremented.
    pub fn into_vec(mut self) -> Vec<u8> {
        let buf = std::mem::take(&mut self.buf);
        self.pool.outstanding.fetch_sub(1, Ordering::Relaxed);
        // Drop runs next with an empty Vec; release() skips zero-capacity
        // buffers because they match no class floor.
        buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 {
            // Either into_vec already accounted for this guard, or the
            // buffer never allocated; nothing to park.
            return;
        }
        self.pool.release(buf);
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping() {
        assert_eq!(BufferPool::class_for(0), Some(0));
        assert_eq!(BufferPool::class_for(1), Some(0));
        assert_eq!(BufferPool::class_for(1024), Some(0));
        assert_eq!(BufferPool::class_for(1025), Some(1));
        assert_eq!(BufferPool::class_for(1 << 20), Some(10));
        assert_eq!(BufferPool::class_for(8 << 20), Some(NUM_CLASSES - 1));
        assert_eq!(BufferPool::class_for((8 << 20) + 1), None);
    }

    #[test]
    fn acquire_reuses_released_buffers() {
        let pool = Arc::new(BufferPool::new());
        let first = pool.acquire(4096);
        assert_eq!(first.len(), 4096);
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.outstanding(), 1);
        drop(first);
        assert_eq!(pool.outstanding(), 0);
        let second = pool.acquire(3000); // same 4 KiB class
        assert_eq!(second.len(), 3000);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn buffers_come_back_zeroed() {
        let pool = Arc::new(BufferPool::new());
        {
            let mut b = pool.acquire(64);
            b.iter_mut().for_each(|x| *x = 0xFF);
        }
        let b = pool.acquire(128);
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn classes_are_bounded() {
        let pool = Arc::new(BufferPool::new());
        let guards: Vec<_> = (0..3 * BufferPool::MAX_PER_CLASS)
            .map(|_| pool.acquire(2048))
            .collect();
        assert_eq!(pool.outstanding(), guards.len() as u64);
        drop(guards);
        assert_eq!(pool.outstanding(), 0);
        assert!(pool.parked() <= BufferPool::MAX_PER_CLASS);
    }

    #[test]
    fn oversized_requests_bypass_the_pool() {
        let pool = Arc::new(BufferPool::new());
        let big = pool.acquire(MAX_CLASS_BYTES + 1);
        assert_eq!(big.len(), MAX_CLASS_BYTES + 1);
        drop(big);
        assert_eq!(pool.parked(), 0);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn into_vec_detaches_without_parking() {
        let pool = Arc::new(BufferPool::new());
        let b = pool.acquire(512);
        let v = b.into_vec();
        assert_eq!(v.len(), 512);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn concurrent_churn_stays_bounded() {
        let pool = Arc::new(BufferPool::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..200usize {
                        let len = 1 + ((t * 977 + i * 131) % 60_000);
                        let b = pool.acquire(len);
                        assert_eq!(b.len(), len);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("churn thread");
        }
        assert_eq!(pool.outstanding(), 0);
        // Worst case: MAX_PER_CLASS parked in every touched class.
        assert!(pool.parked() <= NUM_CLASSES * BufferPool::MAX_PER_CLASS);
        assert_eq!(pool.hits() + pool.misses(), 8 * 200);
    }
}
