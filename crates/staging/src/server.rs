//! A staging server: one in-transit node's share of the space, with a
//! memory cap (the in-transit memory constraint of paper Eq. 10) and an
//! optional disk spill tier behind it ([`crate::tier`]).

use crate::index::BucketIndex;
use crate::object::{DataObject, ObjectDesc, ObjectKey};
use crate::tier::{DiskTier, SpillAction};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bucket width of the per-key spatial index (cells).
const INDEX_BUCKET: i64 = 16;

/// Why a put was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StagingError {
    /// Accepting the object would exceed the server's memory cap (and the
    /// disk tier, if any, could not absorb it either).
    OutOfMemory {
        /// The server's capacity in bytes.
        cap: u64,
        /// Bytes already resident.
        used: u64,
        /// Size of the rejected object.
        requested: u64,
    },
    /// The tier policy asks the producer to coarsen the object by `factor`
    /// per axis and retry — the "downsample" arm of spill/downsample/reject.
    NeedsReduction {
        /// Per-axis coarsening factor to apply before retrying.
        factor: u32,
    },
}

impl std::fmt::Display for StagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StagingError::OutOfMemory {
                cap,
                used,
                requested,
            } => write!(
                f,
                "staging server out of memory: cap {cap} B, used {used} B, requested {requested} B"
            ),
            StagingError::NeedsReduction { factor } => write!(
                f,
                "staging server under pressure: downsample by {factor} per axis and retry"
            ),
        }
    }
}

impl std::error::Error for StagingError {}

/// One staging server: an object store with memory accounting.
#[derive(Debug)]
pub struct StagingServer {
    id: usize,
    memory_cap: u64,
    /// An `RwLock` so concurrent readers (`get`/`get_by_id`/`describe`)
    /// share the lock; only mutations (`put`/`evict_before`/`clear`) take
    /// it exclusively.
    inner: RwLock<Store>,
    /// Op counters live outside the store so the read paths don't need a
    /// write lock just to bump them.
    puts: AtomicU64,
    gets: AtomicU64,
    /// The disk spill tier, if one is attached. Tier mutations only happen
    /// under the store's write lock, so demotion, promotion and victim
    /// selection are serialised per server.
    tier: Option<Arc<DiskTier>>,
}

#[derive(Debug, Default)]
struct Store {
    // Objects are held behind `Arc` so reads hand out refcounted handles
    // (the payload `Bytes` is itself shared) instead of deep-cloning the
    // descriptor vectors on every get.
    objects: HashMap<ObjectKey, (Vec<Arc<DataObject>>, BucketIndex)>,
    used: u64,
    peak: u64,
    /// Logical access clock and per-key last-touch ticks (puts and tiered
    /// gets advance it) — the recency half of spill-victim ordering. A
    /// `BTreeMap` so victim candidates enumerate deterministically.
    ticks: BTreeMap<ObjectKey, u64>,
    clock: u64,
}

impl StagingServer {
    /// A server with `memory_cap` bytes of staging memory and no disk tier
    /// (puts beyond the cap are rejected, the pre-tier behaviour).
    pub fn new(id: usize, memory_cap: u64) -> Self {
        StagingServer {
            id,
            memory_cap,
            inner: RwLock::new(Store::default()),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            tier: None,
        }
    }

    /// A server with `memory_cap` bytes of staging memory backed by a disk
    /// spill tier: puts that exceed the cap demote cold versions to `tier`
    /// (or are refused/downsampled, per its policy), and gets promote
    /// spilled versions back on access.
    pub fn with_tier(id: usize, memory_cap: u64, tier: Arc<DiskTier>) -> Self {
        StagingServer {
            id,
            memory_cap,
            inner: RwLock::new(Store::default()),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            tier: Some(tier),
        }
    }

    /// The attached disk tier, if any.
    pub fn tier(&self) -> Option<&Arc<DiskTier>> {
        self.tier.as_ref()
    }

    /// Server id (its index in the staging partition).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Memory capacity in bytes.
    pub fn memory_cap(&self) -> u64 {
        self.memory_cap
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.inner.read().used
    }

    /// High-water mark of resident bytes.
    pub fn peak(&self) -> u64 {
        self.inner.read().peak
    }

    /// (puts, gets) served.
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.puts.load(Ordering::Relaxed),
            self.gets.load(Ordering::Relaxed),
        )
    }

    /// Store an object (a plain `DataObject` is wrapped on the way in).
    ///
    /// Under the memory cap this is the pre-tier fast path. Over it, the
    /// attached tier (if any) decides spill / downsample / reject: spilling
    /// demotes the coldest resident keys — expired-deadline keys first,
    /// then least-recently-touched, version order breaking ties — to the
    /// disk log until the object fits, falling back to writing the object
    /// itself to disk when the cap is smaller than the object. Only when
    /// the disk is exhausted too (or the policy says reject) does the put
    /// fail with `OutOfMemory`; a `Reducible` hint fails fast with
    /// [`StagingError::NeedsReduction`] instead. The shared handle the
    /// caller kept — if any — stays usable for retrying elsewhere, so a
    /// rejected put costs no payload copy.
    pub fn put(&self, obj: impl Into<Arc<DataObject>>) -> Result<(), StagingError> {
        let obj = obj.into();
        let mut s = self.inner.write();
        let bytes = obj.desc.bytes;
        if s.used + bytes > self.memory_cap {
            let oom = StagingError::OutOfMemory {
                cap: self.memory_cap,
                used: s.used,
                requested: bytes,
            };
            let Some(tier) = &self.tier else {
                return Err(oom);
            };
            match tier.decide(&obj.desc.key.name, bytes) {
                SpillAction::Reject => return Err(oom),
                SpillAction::Downsample { factor } => {
                    return Err(StagingError::NeedsReduction { factor })
                }
                SpillAction::Spill => {
                    Self::demote_victims(&mut s, tier, self.memory_cap, bytes, &obj.desc.key);
                    if s.used + bytes > self.memory_cap {
                        // Demotion could not make room (the cap is smaller
                        // than the object, or the disk filled up): spill
                        // the incoming object itself.
                        return match tier.spill(&obj) {
                            Ok(()) => {
                                self.puts.fetch_add(1, Ordering::Relaxed);
                                s.clock += 1;
                                let tick = s.clock;
                                s.ticks.insert(obj.desc.key.clone(), tick);
                                Ok(())
                            }
                            Err(_) => Err(oom),
                        };
                    }
                }
            }
        }
        s.used += bytes;
        s.peak = s.peak.max(s.used);
        self.puts.fetch_add(1, Ordering::Relaxed);
        s.clock += 1;
        let tick = s.clock;
        s.ticks.insert(obj.desc.key.clone(), tick);
        let entry = s
            .objects
            .entry(obj.desc.key.clone())
            .or_insert_with(|| (Vec::new(), BucketIndex::new(INDEX_BUCKET)));
        entry.1.insert(obj.desc.bbox);
        entry.0.push(obj);
        Ok(())
    }

    /// Demote whole resident keys to `tier` until `need` more bytes fit
    /// under `cap` (or no demotable victim remains). Victim order: keys
    /// past their deadline hint first, then least-recently-touched, with
    /// `(name, version)` order breaking ties — so the coldest, oldest
    /// versions leave memory first (LRU-by-version). The incoming key is
    /// never demoted to make room for itself. Demotion stops early when the
    /// disk budget cannot hold the next victim: a victim is only removed
    /// from memory after every one of its objects is safely on disk.
    fn demote_victims(s: &mut Store, tier: &DiskTier, cap: u64, need: u64, incoming: &ObjectKey) {
        if s.used.saturating_add(need) <= cap {
            return;
        }
        let now = incoming.version;
        let mut victims: Vec<(bool, u64, ObjectKey)> = s
            .objects
            .keys()
            .filter(|k| *k != incoming)
            .map(|k| {
                let fresh = !tier.past_deadline(k, now);
                let tick = s.ticks.get(k).copied().unwrap_or(0);
                (fresh, tick, k.clone())
            })
            .collect();
        victims.sort();
        for (_, _, key) in victims {
            if s.used.saturating_add(need) <= cap {
                break;
            }
            let Some((objs, _)) = s.objects.get(&key) else {
                continue;
            };
            let objs: Vec<Arc<DataObject>> = objs.clone();
            let key_bytes: u64 = objs.iter().map(|o| o.desc.bytes).sum();
            if !tier.has_room(key_bytes) {
                break;
            }
            let mut spilled_all = true;
            for o in &objs {
                if tier.spill(o).is_err() {
                    // Only real I/O failures land here (room was checked,
                    // and the store lock serialises tier writers). Leave
                    // the key resident; gets deduplicate by geometry.
                    spilled_all = false;
                    break;
                }
            }
            if !spilled_all {
                break;
            }
            s.objects.remove(&key);
            s.used = s.used.saturating_sub(key_bytes);
        }
    }

    /// Objects under `key` whose bbox intersects `query` (all, if `query`
    /// is `None`). Spatial queries go through the per-key bucket index.
    /// Returns refcounted handles: no descriptor or payload is copied.
    ///
    /// With a disk tier attached, a key with spilled versions is promoted
    /// back into memory on access (demoting colder keys if the cap is
    /// tight); when promotion cannot fit, the spilled extents are served
    /// straight from disk without residency. The hot path is barely
    /// touched while nothing is spilled: under the read lock it costs one
    /// lock-free gauge read, so an idle tier keeps RAM-resident gets at
    /// parity.
    pub fn get(
        &self,
        key: &ObjectKey,
        query: Option<&xlayer_amr::boxes::IBox>,
    ) -> Vec<Arc<DataObject>> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let s = self.inner.read();
        // The tier check must run under the store lock: demotions happen
        // only under the write lock, so a key observed un-spilled here
        // cannot move to disk before the resident match below. Checked
        // before the lock, a concurrent demoting put could spill the key
        // in the gap and this get would return empty for data that lives
        // on disk.
        if let Some(tier) = &self.tier {
            if tier.spilled_key_count() > 0 && tier.has_spilled(key) {
                drop(s);
                return self.get_promoting(tier, key, query);
            }
        }
        Self::match_resident(&s, key, query)
    }

    /// The in-memory matches for `key` under an already-held store lock.
    fn match_resident(
        s: &Store,
        key: &ObjectKey,
        query: Option<&xlayer_amr::boxes::IBox>,
    ) -> Vec<Arc<DataObject>> {
        let Some((objs, index)) = s.objects.get(key) else {
            return Vec::new();
        };
        match query {
            None => objs.clone(),
            Some(q) => index
                .query(q)
                .into_iter()
                // The index is built alongside `objs`, so ids are in range;
                // filter_map keeps a desynced index from panicking a reader.
                .filter_map(|id| objs.get(id).cloned())
                .collect(),
        }
    }

    /// The get slow path: `key` has spilled extents. Promote them into
    /// memory when they fit (after demoting colder keys), else serve them
    /// from disk without promotion. Runs under the write lock, so a promote
    /// racing a drain resolves as one of the two serial orders — never a
    /// torn in-between state.
    fn get_promoting(
        &self,
        tier: &DiskTier,
        key: &ObjectKey,
        query: Option<&xlayer_amr::boxes::IBox>,
    ) -> Vec<Arc<DataObject>> {
        // xlint: allow(L) -- promote/serve-from-disk runs under the write lock so a promote racing a drain resolves as one serial order
        let mut s = self.inner.write();
        let spilled_bytes = tier.spilled_bytes_for(key);
        if spilled_bytes == 0 {
            // A racing promote or drain got here first.
            return Self::match_resident(&s, key, query);
        }
        if s.used.saturating_add(spilled_bytes) > self.memory_cap {
            Self::demote_victims(&mut s, tier, self.memory_cap, spilled_bytes, key);
        }
        if s.used.saturating_add(spilled_bytes) <= self.memory_cap {
            // Promote: move the extents into memory, then serve from there.
            if let Ok(objs) = tier.take(key) {
                s.used += spilled_bytes;
                s.peak = s.peak.max(s.used);
                s.clock += 1;
                let tick = s.clock;
                s.ticks.insert(key.clone(), tick);
                let entry = s
                    .objects
                    .entry(key.clone())
                    .or_insert_with(|| (Vec::new(), BucketIndex::new(INDEX_BUCKET)));
                for obj in objs {
                    entry.1.insert(obj.desc.bbox);
                    entry.0.push(Arc::new(obj));
                }
            }
            // On a tier read error the disk side is unreadable; serve what
            // memory has rather than failing the whole get.
            return Self::match_resident(&s, key, query);
        }
        // Promotion cannot fit even after demotion: serve spilled extents
        // from disk alongside any resident ones, leaving residency alone.
        let mut out = Self::match_resident(&s, key, query);
        if let Ok(disk) = tier.fetch(key, query) {
            out.extend(disk.into_iter().map(Arc::new));
        }
        out
    }

    /// The single object with index `id` under `key` (ids are put order,
    /// matching the spatial index), if present — the cheapest read path
    /// when the caller already knows which piece it wants.
    pub fn get_by_id(&self, key: &ObjectKey, id: usize) -> Option<Arc<DataObject>> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.inner
            .read()
            .objects
            .get(key)
            .and_then(|(v, _)| v.get(id).cloned())
    }

    /// Descriptors of everything under `key`, across both tiers. The read
    /// guard stays live across the spilled probe: demotions take the write
    /// lock, so the resident snapshot and the disk-side listing describe
    /// one consistent partition (an extent cannot slip between tiers after
    /// the resident walk and be missed — or counted twice — below).
    pub fn describe(&self, key: &ObjectKey) -> Vec<ObjectDesc> {
        let s = self.inner.read();
        let mut out: Vec<ObjectDesc> = s
            .objects
            .get(key)
            .map(|(v, _)| v.iter().map(|o| o.desc.clone()).collect())
            .unwrap_or_default();
        if let Some(tier) = &self.tier {
            if tier.spilled_key_count() > 0 {
                out.extend(tier.spilled_descs(key));
            }
        }
        out
    }

    /// Drop every object older than `min_version` under variable `name`
    /// (the space reclaims consumed time steps), in memory and on disk.
    /// Returns bytes freed across both tiers; dead disk extents are
    /// truncated by the tier's periodic compaction.
    pub fn evict_before(&self, name: &str, min_version: u64) -> u64 {
        // xlint: allow(L) -- eviction must drop both tiers atomically with the resident map; the store lock serializes tier writers
        let mut s = self.inner.write();
        let mut freed = 0;
        s.objects.retain(|k, (v, _)| {
            if k.name == name && k.version < min_version {
                freed += v.iter().map(|o| o.desc.bytes).sum::<u64>();
                false
            } else {
                true
            }
        });
        s.used = s.used.saturating_sub(freed);
        s.ticks
            .retain(|k, _| !(k.name == name && k.version < min_version));
        if let Some(tier) = &self.tier {
            freed += tier.evict_before(name, min_version).unwrap_or(0);
        }
        freed
    }

    /// Drop everything, in memory and on disk. Returns bytes freed.
    pub fn clear(&self) -> u64 {
        let mut s = self.inner.write();
        let mut freed = s.used;
        s.objects.clear();
        s.ticks.clear();
        s.used = 0;
        if let Some(tier) = &self.tier {
            freed += tier.clear().unwrap_or(0);
        }
        freed
    }

    /// Live spilled payload bytes on this server's disk tier (0 without
    /// one).
    pub fn disk_used(&self) -> u64 {
        self.tier.as_ref().map(|t| t.disk_used()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::boxes::IBox;
    use xlayer_amr::fab::Fab;
    use xlayer_amr::intvect::IntVect;

    fn obj(name: &str, version: u64, lo: i64, n: i64) -> DataObject {
        let b = IBox::cube(n).shift(IntVect::splat(lo));
        let fab = Fab::filled(b, 1, 1.0);
        DataObject::from_fab(name, version, &fab, 0, &b, 0)
    }

    #[test]
    fn put_get_roundtrip() {
        let s = StagingServer::new(0, 1 << 20);
        s.put(obj("rho", 1, 0, 4)).unwrap();
        s.put(obj("rho", 1, 8, 4)).unwrap();
        s.put(obj("rho", 2, 0, 4)).unwrap();
        let key = ObjectKey::new("rho", 1);
        assert_eq!(s.get(&key, None).len(), 2);
        assert_eq!(s.get(&ObjectKey::new("rho", 2), None).len(), 1);
        assert_eq!(s.get(&ObjectKey::new("p", 1), None).len(), 0);
    }

    #[test]
    fn spatial_query_filters() {
        let s = StagingServer::new(0, 1 << 20);
        s.put(obj("rho", 1, 0, 4)).unwrap();
        s.put(obj("rho", 1, 8, 4)).unwrap();
        let key = ObjectKey::new("rho", 1);
        let q = IBox::cube(4);
        let hits = s.get(&key, Some(&q));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].desc.bbox, IBox::cube(4));
    }

    #[test]
    fn memory_cap_enforced() {
        let one = obj("rho", 1, 0, 4); // 64 cells * 8 B = 512 B
        let s = StagingServer::new(0, 1000);
        s.put(one.clone()).unwrap();
        let err = s.put(one).unwrap_err();
        assert_eq!(
            err,
            StagingError::OutOfMemory {
                cap: 1000,
                used: 512,
                requested: 512,
            }
        );
    }

    #[test]
    fn eviction_frees_memory() {
        let s = StagingServer::new(0, 1 << 20);
        s.put(obj("rho", 1, 0, 4)).unwrap();
        s.put(obj("rho", 2, 0, 4)).unwrap();
        s.put(obj("p", 1, 0, 4)).unwrap();
        let used0 = s.used();
        let freed = s.evict_before("rho", 2);
        assert_eq!(freed, 512);
        assert_eq!(s.used(), used0 - 512);
        // rho v2 and p v1 survive
        assert_eq!(s.get(&ObjectKey::new("rho", 2), None).len(), 1);
        assert_eq!(s.get(&ObjectKey::new("p", 1), None).len(), 1);
    }

    #[test]
    fn peak_tracks_high_water() {
        let s = StagingServer::new(0, 1 << 20);
        s.put(obj("rho", 1, 0, 4)).unwrap();
        s.put(obj("rho", 2, 0, 4)).unwrap();
        s.clear();
        assert_eq!(s.used(), 0);
        assert_eq!(s.peak(), 1024);
    }

    #[test]
    fn op_counts() {
        let s = StagingServer::new(0, 1 << 20);
        s.put(obj("rho", 1, 0, 4)).unwrap();
        s.get(&ObjectKey::new("rho", 1), None);
        s.get(&ObjectKey::new("rho", 1), None);
        assert_eq!(s.op_counts(), (1, 2));
    }

    mod tiered {
        use super::*;
        use crate::pool::BufferPool;
        use crate::tier::{DiskTier, ObjectHints, Persistence, TierConfig};
        use std::path::PathBuf;

        fn tmpdir(tag: &str) -> PathBuf {
            let d = std::env::temp_dir()
                .join(format!("xlayer-tiered-server-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            std::fs::create_dir_all(&d).unwrap();
            d
        }

        fn server(dir: &std::path::Path, cap: u64, disk: u64) -> (StagingServer, Arc<DiskTier>) {
            let cfg = TierConfig::new(dir).with_budget(disk).with_chunk_size(256);
            let tier = Arc::new(
                DiskTier::open(dir.join("srv.log"), &cfg, Arc::new(BufferPool::new())).unwrap(),
            );
            (StagingServer::with_tier(0, cap, Arc::clone(&tier)), tier)
        }

        /// A distinctive payload per (name, version) so bit-identity checks
        /// mean something.
        fn vobj(name: &str, version: u64) -> DataObject {
            let b = IBox::cube(4);
            let mut fab = Fab::new(b, 1);
            for iv in b.cells() {
                fab.set(
                    iv,
                    0,
                    (iv[0] * 100 + iv[1] * 10 + iv[2]) as f64 + version as f64 * 1e4,
                );
            }
            DataObject::from_fab(name, version, &fab, 0, &b, 0)
        }

        #[test]
        fn pressure_spills_cold_versions_lru_by_version() {
            let dir = tmpdir("lru");
            // Cap fits two 512 B objects; disk takes the overflow.
            let (s, tier) = server(&dir, 1024, 1 << 20);
            s.put(vobj("rho", 1)).unwrap();
            s.put(vobj("rho", 2)).unwrap();
            s.put(vobj("rho", 3)).unwrap(); // demotes v1 (oldest tick)
            assert_eq!(s.used(), 1024);
            assert!(tier.has_spilled(&ObjectKey::new("rho", 1)));
            assert!(!tier.has_spilled(&ObjectKey::new("rho", 3)));
            // The spilled version is still fully readable (promotes back,
            // displacing the now-coldest v2).
            let got = s.get(&ObjectKey::new("rho", 1), None);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].payload, vobj("rho", 1).payload);
            assert!(!tier.has_spilled(&ObjectKey::new("rho", 1)));
            assert!(tier.has_spilled(&ObjectKey::new("rho", 2)));
            let snap = tier.snapshot();
            assert_eq!(snap.promoted, 1);
            assert!(snap.spilled >= 2);
            let _ = std::fs::remove_dir_all(&dir);
        }

        #[test]
        fn object_larger_than_cap_lives_on_disk() {
            let dir = tmpdir("bigobj");
            let (s, tier) = server(&dir, 100, 1 << 20); // cap < one object
            s.put(vobj("rho", 1)).unwrap();
            assert_eq!(s.used(), 0, "object must not be charged to memory");
            assert_eq!(tier.snapshot().disk_used, 512);
            // Served straight from disk (cannot promote), bit-identical.
            let got = s.get(&ObjectKey::new("rho", 1), None);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].payload, vobj("rho", 1).payload);
            assert!(tier.has_spilled(&ObjectKey::new("rho", 1)));
            assert_eq!(tier.snapshot().disk_hits, 1);
            let _ = std::fs::remove_dir_all(&dir);
        }

        #[test]
        fn both_tiers_full_is_out_of_memory() {
            let dir = tmpdir("full");
            let (s, _tier) = server(&dir, 512, 600); // disk fits one object
            s.put(vobj("rho", 1)).unwrap();
            s.put(vobj("rho", 2)).unwrap(); // v1 demoted, disk now full
            let err = s.put(vobj("rho", 3)).unwrap_err();
            assert!(matches!(err, StagingError::OutOfMemory { .. }));
            let _ = std::fs::remove_dir_all(&dir);
        }

        #[test]
        fn reducible_hint_asks_for_downsampling() {
            let dir = tmpdir("reduce");
            let (s, tier) = server(&dir, 512, 1 << 20);
            tier.set_hints(
                "rho",
                ObjectHints {
                    persistence: Persistence::Reducible { factor: 2 },
                    deadline: None,
                },
            );
            s.put(vobj("rho", 1)).unwrap();
            let err = s.put(vobj("rho", 2)).unwrap_err();
            assert_eq!(err, StagingError::NeedsReduction { factor: 2 });
            let _ = std::fs::remove_dir_all(&dir);
        }

        #[test]
        fn expired_deadlines_are_demoted_first() {
            let dir = tmpdir("deadline");
            let (s, tier) = server(&dir, 1024, 1 << 20);
            // "old" versions expire 2 steps after production; "rho" never.
            tier.set_hints(
                "old",
                ObjectHints {
                    persistence: Persistence::Transient,
                    deadline: Some(2),
                },
            );
            s.put(vobj("old", 1)).unwrap();
            s.put(vobj("rho", 1)).unwrap();
            // At rho v5, old v1 is expired (1 + 2 <= 5): expiry outranks
            // recency, so the expired key is the one demoted to disk.
            s.put(vobj("rho", 5)).unwrap();
            assert!(tier.has_spilled(&ObjectKey::new("old", 1)));
            assert!(!tier.has_spilled(&ObjectKey::new("rho", 1)));
            let _ = std::fs::remove_dir_all(&dir);
        }

        #[test]
        fn describe_and_evict_span_both_tiers() {
            let dir = tmpdir("span");
            let (s, tier) = server(&dir, 1024, 1 << 20);
            for v in 1..=3 {
                s.put(vobj("rho", v)).unwrap();
            }
            assert!(tier.has_spilled(&ObjectKey::new("rho", 1)));
            assert_eq!(s.describe(&ObjectKey::new("rho", 1)).len(), 1);
            assert_eq!(s.describe(&ObjectKey::new("rho", 3)).len(), 1);
            // Draining consumed steps reclaims disk extents too.
            let freed = s.evict_before("rho", 3);
            assert_eq!(freed, 1024, "one RAM version + one disk version");
            assert!(!tier.has_spilled(&ObjectKey::new("rho", 1)));
            assert!(s.get(&ObjectKey::new("rho", 1), None).is_empty());
            assert_eq!(s.get(&ObjectKey::new("rho", 3), None).len(), 1);
            let _ = std::fs::remove_dir_all(&dir);
        }

        #[test]
        fn spatial_queries_reach_spilled_extents() {
            let dir = tmpdir("spatial");
            let (s, tier) = server(&dir, 100, 1 << 20); // everything on disk
            let b1 = IBox::cube(4);
            let b2 = IBox::cube(4).shift(IntVect::splat(8));
            let f1 = Fab::filled(b1, 1, 1.0);
            let f2 = Fab::filled(b2, 1, 2.0);
            s.put(DataObject::from_fab("rho", 1, &f1, 0, &b1, 0))
                .unwrap();
            s.put(DataObject::from_fab("rho", 1, &f2, 0, &b2, 0))
                .unwrap();
            assert_eq!(tier.snapshot().spilled, 2);
            let hits = s.get(&ObjectKey::new("rho", 1), Some(&IBox::cube(4)));
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].desc.bbox, b1);
            let _ = std::fs::remove_dir_all(&dir);
        }

        /// Satellite: a promote racing a drain must resolve as one of the
        /// two serial orders. Whichever wins, the drained versions end up
        /// gone from BOTH tiers and the memory accounting balances.
        #[test]
        fn promote_during_drain_resolves_deterministically() {
            for round in 0..20 {
                let dir = tmpdir(&format!("race-{round}"));
                let (s, tier) = server(&dir, 1024, 1 << 20);
                for v in 1..=3 {
                    s.put(vobj("rho", v)).unwrap();
                }
                assert!(tier.has_spilled(&ObjectKey::new("rho", 1)));
                let s = Arc::new(s);
                let getter = {
                    let s = Arc::clone(&s);
                    std::thread::spawn(move || s.get(&ObjectKey::new("rho", 1), None))
                };
                let drainer = {
                    let s = Arc::clone(&s);
                    std::thread::spawn(move || s.evict_before("rho", 2))
                };
                let got = getter.join().expect("getter");
                drainer.join().expect("drainer");
                // Serial order A (promote first): the get saw v1 intact.
                // Serial order B (drain first): the get saw nothing.
                match got.len() {
                    0 => {}
                    1 => assert_eq!(got[0].payload, vobj("rho", 1).payload),
                    n => panic!("impossible interleaving: {n} objects"),
                }
                // Post-state is identical either way: v1 fully gone.
                assert!(s.get(&ObjectKey::new("rho", 1), None).is_empty());
                assert!(!tier.has_spilled(&ObjectKey::new("rho", 1)));
                // v2 and v3 survive with balanced accounting.
                assert_eq!(s.get(&ObjectKey::new("rho", 2), None).len(), 1);
                assert_eq!(s.get(&ObjectKey::new("rho", 3), None).len(), 1);
                assert_eq!(s.used() + s.disk_used(), 1024);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }

        #[test]
        fn concurrent_demotion_never_hides_a_stored_key() {
            // Regression: the tier check in get() used to run before the
            // store lock was taken, so a put demoting the requested key in
            // that gap made the get return empty for data that was on
            // disk. Churn puts under a two-object cap so "rho" v1 keeps
            // bouncing between memory and disk while a reader hammers it:
            // every read must see exactly the object that was stored.
            let dir = tmpdir("demote-race");
            let (s, _tier) = server(&dir, 1024, 1 << 30);
            let s = Arc::new(s);
            s.put(vobj("rho", 1)).unwrap();
            let putter = {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for v in 2..2000u64 {
                        s.put(vobj("churn", v)).unwrap();
                    }
                })
            };
            let want = vobj("rho", 1).payload;
            while !putter.is_finished() {
                let got = s.get(&ObjectKey::new("rho", 1), None);
                assert_eq!(got.len(), 1, "a stored key must never read empty");
                assert_eq!(got[0].payload, want);
            }
            putter.join().expect("putter");
            let got = s.get(&ObjectKey::new("rho", 1), None);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].payload, want);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
