//! A staging server: one in-transit node's share of the space, with a
//! memory cap (the in-transit memory constraint of paper Eq. 10).

use crate::index::BucketIndex;
use crate::object::{DataObject, ObjectDesc, ObjectKey};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bucket width of the per-key spatial index (cells).
const INDEX_BUCKET: i64 = 16;

/// Why a put was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StagingError {
    /// Accepting the object would exceed the server's memory cap.
    OutOfMemory {
        /// The server's capacity in bytes.
        cap: u64,
        /// Bytes already resident.
        used: u64,
        /// Size of the rejected object.
        requested: u64,
    },
}

impl std::fmt::Display for StagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StagingError::OutOfMemory {
                cap,
                used,
                requested,
            } => write!(
                f,
                "staging server out of memory: cap {cap} B, used {used} B, requested {requested} B"
            ),
        }
    }
}

impl std::error::Error for StagingError {}

/// One staging server: an object store with memory accounting.
#[derive(Debug)]
pub struct StagingServer {
    id: usize,
    memory_cap: u64,
    /// An `RwLock` so concurrent readers (`get`/`get_by_id`/`describe`)
    /// share the lock; only mutations (`put`/`evict_before`/`clear`) take
    /// it exclusively.
    inner: RwLock<Store>,
    /// Op counters live outside the store so the read paths don't need a
    /// write lock just to bump them.
    puts: AtomicU64,
    gets: AtomicU64,
}

#[derive(Debug, Default)]
struct Store {
    // Objects are held behind `Arc` so reads hand out refcounted handles
    // (the payload `Bytes` is itself shared) instead of deep-cloning the
    // descriptor vectors on every get.
    objects: HashMap<ObjectKey, (Vec<Arc<DataObject>>, BucketIndex)>,
    used: u64,
    peak: u64,
}

impl StagingServer {
    /// A server with `memory_cap` bytes of staging memory.
    pub fn new(id: usize, memory_cap: u64) -> Self {
        StagingServer {
            id,
            memory_cap,
            inner: RwLock::new(Store::default()),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
        }
    }

    /// Server id (its index in the staging partition).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Memory capacity in bytes.
    pub fn memory_cap(&self) -> u64 {
        self.memory_cap
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.inner.read().used
    }

    /// High-water mark of resident bytes.
    pub fn peak(&self) -> u64 {
        self.inner.read().peak
    }

    /// (puts, gets) served.
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.puts.load(Ordering::Relaxed),
            self.gets.load(Ordering::Relaxed),
        )
    }

    /// Store an object (a plain `DataObject` is wrapped on the way in).
    /// Fails if it would exceed the memory cap; the shared handle the
    /// caller kept — if any — stays usable for retrying elsewhere, so a
    /// rejected put costs no payload copy.
    pub fn put(&self, obj: impl Into<Arc<DataObject>>) -> Result<(), StagingError> {
        let obj = obj.into();
        let mut s = self.inner.write();
        let bytes = obj.desc.bytes;
        if s.used + bytes > self.memory_cap {
            return Err(StagingError::OutOfMemory {
                cap: self.memory_cap,
                used: s.used,
                requested: bytes,
            });
        }
        s.used += bytes;
        s.peak = s.peak.max(s.used);
        self.puts.fetch_add(1, Ordering::Relaxed);
        let entry = s
            .objects
            .entry(obj.desc.key.clone())
            .or_insert_with(|| (Vec::new(), BucketIndex::new(INDEX_BUCKET)));
        entry.1.insert(obj.desc.bbox);
        entry.0.push(obj);
        Ok(())
    }

    /// Objects under `key` whose bbox intersects `query` (all, if `query`
    /// is `None`). Spatial queries go through the per-key bucket index.
    /// Returns refcounted handles: no descriptor or payload is copied.
    pub fn get(
        &self,
        key: &ObjectKey,
        query: Option<&xlayer_amr::boxes::IBox>,
    ) -> Vec<Arc<DataObject>> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let s = self.inner.read();
        let Some((objs, index)) = s.objects.get(key) else {
            return Vec::new();
        };
        match query {
            None => objs.clone(),
            Some(q) => index
                .query(q)
                .into_iter()
                // The index is built alongside `objs`, so ids are in range;
                // filter_map keeps a desynced index from panicking a reader.
                .filter_map(|id| objs.get(id).cloned())
                .collect(),
        }
    }

    /// The single object with index `id` under `key` (ids are put order,
    /// matching the spatial index), if present — the cheapest read path
    /// when the caller already knows which piece it wants.
    pub fn get_by_id(&self, key: &ObjectKey, id: usize) -> Option<Arc<DataObject>> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.inner
            .read()
            .objects
            .get(key)
            .and_then(|(v, _)| v.get(id).cloned())
    }

    /// Descriptors of everything under `key`.
    pub fn describe(&self, key: &ObjectKey) -> Vec<ObjectDesc> {
        self.inner
            .read()
            .objects
            .get(key)
            .map(|(v, _)| v.iter().map(|o| o.desc.clone()).collect())
            .unwrap_or_default()
    }

    /// Drop every object older than `min_version` under variable `name`
    /// (the space reclaims consumed time steps). Returns bytes freed.
    pub fn evict_before(&self, name: &str, min_version: u64) -> u64 {
        let mut s = self.inner.write();
        let mut freed = 0;
        s.objects.retain(|k, (v, _)| {
            if k.name == name && k.version < min_version {
                freed += v.iter().map(|o| o.desc.bytes).sum::<u64>();
                false
            } else {
                true
            }
        });
        s.used = s.used.saturating_sub(freed);
        freed
    }

    /// Drop everything. Returns bytes freed.
    pub fn clear(&self) -> u64 {
        let mut s = self.inner.write();
        let freed = s.used;
        s.objects.clear();
        s.used = 0;
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::boxes::IBox;
    use xlayer_amr::fab::Fab;
    use xlayer_amr::intvect::IntVect;

    fn obj(name: &str, version: u64, lo: i64, n: i64) -> DataObject {
        let b = IBox::cube(n).shift(IntVect::splat(lo));
        let fab = Fab::filled(b, 1, 1.0);
        DataObject::from_fab(name, version, &fab, 0, &b, 0)
    }

    #[test]
    fn put_get_roundtrip() {
        let s = StagingServer::new(0, 1 << 20);
        s.put(obj("rho", 1, 0, 4)).unwrap();
        s.put(obj("rho", 1, 8, 4)).unwrap();
        s.put(obj("rho", 2, 0, 4)).unwrap();
        let key = ObjectKey::new("rho", 1);
        assert_eq!(s.get(&key, None).len(), 2);
        assert_eq!(s.get(&ObjectKey::new("rho", 2), None).len(), 1);
        assert_eq!(s.get(&ObjectKey::new("p", 1), None).len(), 0);
    }

    #[test]
    fn spatial_query_filters() {
        let s = StagingServer::new(0, 1 << 20);
        s.put(obj("rho", 1, 0, 4)).unwrap();
        s.put(obj("rho", 1, 8, 4)).unwrap();
        let key = ObjectKey::new("rho", 1);
        let q = IBox::cube(4);
        let hits = s.get(&key, Some(&q));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].desc.bbox, IBox::cube(4));
    }

    #[test]
    fn memory_cap_enforced() {
        let one = obj("rho", 1, 0, 4); // 64 cells * 8 B = 512 B
        let s = StagingServer::new(0, 1000);
        s.put(one.clone()).unwrap();
        let err = s.put(one).unwrap_err();
        match err {
            StagingError::OutOfMemory {
                cap,
                used,
                requested,
            } => {
                assert_eq!(cap, 1000);
                assert_eq!(used, 512);
                assert_eq!(requested, 512);
            }
        }
    }

    #[test]
    fn eviction_frees_memory() {
        let s = StagingServer::new(0, 1 << 20);
        s.put(obj("rho", 1, 0, 4)).unwrap();
        s.put(obj("rho", 2, 0, 4)).unwrap();
        s.put(obj("p", 1, 0, 4)).unwrap();
        let used0 = s.used();
        let freed = s.evict_before("rho", 2);
        assert_eq!(freed, 512);
        assert_eq!(s.used(), used0 - 512);
        // rho v2 and p v1 survive
        assert_eq!(s.get(&ObjectKey::new("rho", 2), None).len(), 1);
        assert_eq!(s.get(&ObjectKey::new("p", 1), None).len(), 1);
    }

    #[test]
    fn peak_tracks_high_water() {
        let s = StagingServer::new(0, 1 << 20);
        s.put(obj("rho", 1, 0, 4)).unwrap();
        s.put(obj("rho", 2, 0, 4)).unwrap();
        s.clear();
        assert_eq!(s.used(), 0);
        assert_eq!(s.peak(), 1024);
    }

    #[test]
    fn op_counts() {
        let s = StagingServer::new(0, 1 << 20);
        s.put(obj("rho", 1, 0, 4)).unwrap();
        s.get(&ObjectKey::new("rho", 1), None);
        s.get(&ObjectKey::new("rho", 1), None);
        assert_eq!(s.op_counts(), (1, 2));
    }
}
