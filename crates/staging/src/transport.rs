//! Asynchronous data transport into the staging space.
//!
//! The paper's middleware relies on DataSpaces' asynchronous transfers:
//! "the data will be asynchronously transferred to staging nodes
//! immediately, and get processed as soon as in-transit cores become
//! available" (§4.2). [`AsyncStager`] reproduces that behaviour with a
//! bounded queue drained by transfer threads.
//!
//! Consumers that must observe a *specific* version's objects (an
//! in-transit analysis worker picking up step `i` while the producer is
//! already enqueueing step `i+1`) synchronise on
//! [`TransportStats::wait_processed`]: per-key processed counts, not a
//! global tally, because with multiple transfer threads later-version
//! objects can complete while an earlier one is still in flight.

use crate::object::{DataObject, ObjectKey};
use crate::server::StagingError;
use crate::space::DataSpace;
use crossbeam::channel::{bounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The per-key rendezvous state behind [`TransportStats`]. The counts map
/// is transient bookkeeping: it exists to let consumers wait for in-flight
/// transfers, and is pruned wholesale when the transport closes — a
/// long-running workflow must not leak an entry per (key, version) forever.
#[derive(Debug, Default)]
struct ProcessedMap {
    counts: HashMap<ObjectKey, u64>,
    closed: bool,
}

/// Statistics of an async transport session.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Objects successfully staged.
    pub delivered: AtomicU64,
    /// Bytes successfully staged.
    pub bytes: AtomicU64,
    /// Puts rejected by the space (staging memory exhausted).
    pub rejected: AtomicU64,
    /// Objects lost to terminal transport failure (e.g. a remote staging
    /// service unreachable after retries). Always zero for the in-process
    /// [`AsyncStager`]; remote transports count here so delivered +
    /// rejected + failed covers every enqueued object.
    pub failed: AtomicU64,
    /// Per-key processed counts (delivered + rejected + failed), for
    /// consumers that wait on a specific version's transfers.
    processed: Mutex<ProcessedMap>,
    cv: Condvar,
}

impl TransportStats {
    /// Record that one object under `key` finished processing (stored,
    /// rejected, or failed) and wake any waiters.
    pub fn note_processed(&self, key: &ObjectKey) {
        self.note_processed_n(key, 1);
    }

    /// Record `n` processed objects under `key` in one lock acquisition —
    /// the batch hand-off path counts a whole step's transfers with a
    /// single notify instead of one waiter wake-up per object.
    pub fn note_processed_n(&self, key: &ObjectKey, n: u64) {
        if n == 0 {
            return;
        }
        let mut map = self.processed.lock();
        if !map.closed {
            *map.counts.entry(key.clone()).or_insert(0) += n;
        }
        drop(map);
        self.cv.notify_all();
    }

    /// Objects processed so far under `key`. Returns 0 after the transport
    /// closed (the rendezvous map is pruned then).
    pub fn processed(&self, name: &str, version: u64) -> u64 {
        let key = ObjectKey::new(name, version);
        self.processed.lock().counts.get(&key).copied().unwrap_or(0)
    }

    /// Number of (key, version) entries currently held in the rendezvous
    /// map. Exposed so tests can assert the map is pruned on drain.
    pub fn tracked_keys(&self) -> usize {
        self.processed.lock().counts.len()
    }

    /// Block until at least `expected` objects under (`name`, `version`)
    /// have been processed — delivered, rejected *or* failed; a rejected
    /// put still counts as "the transfer finished", so waiters never
    /// deadlock on an out-of-memory staging space.
    ///
    /// Also returns once the transport closes: after close no further
    /// transfers can arrive, every in-flight one has finished, and the
    /// per-key counts have been pruned, so continuing to wait on a count
    /// could only deadlock.
    pub fn wait_processed(&self, name: &str, version: u64, expected: u64) {
        if expected == 0 {
            return;
        }
        let key = ObjectKey::new(name, version);
        // xlint: allow(L) -- the condvar wait releases this guard while blocked
        let mut map = self.processed.lock();
        while !map.closed && map.counts.get(&key).copied().unwrap_or(0) < expected {
            self.cv.wait(&mut map);
        }
    }

    /// Mark the transport closed and prune the rendezvous map. Called by
    /// the owning stager once its transfer workers have joined — every
    /// waiter is released (all transfers are finished by then) and the
    /// per-key entries, which would otherwise accumulate for the life of
    /// the workflow, are dropped.
    pub fn close(&self) {
        let mut map = self.processed.lock();
        map.closed = true;
        map.counts = HashMap::new();
        drop(map);
        self.cv.notify_all();
    }
}

/// One unit of work for the transfer threads: an object ready to store,
/// or a deferred pack the transfer thread materializes first. Deferral is
/// how a producer moves the payload copy itself off its critical path —
/// it snapshots the cheap-to-copy source, hands the stager a closure, and
/// returns to the solve while a transfer thread runs the actual pack.
pub enum StageTask {
    /// A fully-packed object.
    Ready(DataObject),
    /// A pack to run on the transfer thread. The closure owns everything
    /// it reads (no borrows of live simulation state), so it can run any
    /// time before the transport drains.
    Deferred(Box<dyn FnOnce() -> DataObject + Send>),
}

impl StageTask {
    /// Wrap a deferred pack.
    pub fn deferred(pack: impl FnOnce() -> DataObject + Send + 'static) -> Self {
        StageTask::Deferred(Box::new(pack))
    }

    /// Produce the object: identity for `Ready`, runs the pack for
    /// `Deferred`.
    pub fn materialize(self) -> DataObject {
        match self {
            StageTask::Ready(obj) => obj,
            StageTask::Deferred(pack) => pack(),
        }
    }
}

impl std::fmt::Debug for StageTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageTask::Ready(obj) => f.debug_tuple("Ready").field(&obj.desc.key).finish(),
            StageTask::Deferred(_) => f.write_str("Deferred(..)"),
        }
    }
}

/// A batch put was refused because the transport is shut down. Carries
/// back every task that did *not* enter the queue (`rest`), plus how many
/// of the batch did (`enqueued`) — the caller runs the remainder
/// synchronously and counts only the enqueued ones toward the transport's
/// rendezvous.
#[derive(Debug)]
pub struct BatchClosed {
    /// Tasks from the front of the batch that the queue accepted before
    /// closing (always 0 for the all-or-nothing [`AsyncStager`]).
    pub enqueued: u64,
    /// The tasks handed back, in their original order.
    pub rest: Vec<StageTask>,
}

impl std::fmt::Display for BatchClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "async transport closed; {} of a batch enqueued, {} task(s) returned to caller",
            self.enqueued,
            self.rest.len()
        )
    }
}

impl std::error::Error for BatchClosed {}

/// A put was refused because the transport is shut down (queue closed or
/// every transfer thread gone). Carries the object back so the caller can
/// retry synchronously — the payload is never lost to the error path.
#[derive(Debug)]
pub struct TransportClosed(pub DataObject);

impl std::fmt::Display for TransportClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "async transport closed; object {:?} v{} returned to caller",
            self.0.desc.key.name, self.0.desc.key.version
        )
    }
}

impl std::error::Error for TransportClosed {}

/// A transfer worker panicked while the stager drained; the counts cover
/// only what the surviving workers processed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrainError {
    /// Workers that did not join cleanly.
    pub panicked: usize,
    /// Objects delivered by the workers that did.
    pub delivered: u64,
    /// Puts rejected by the space.
    pub rejected: u64,
}

impl std::fmt::Display for DrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} transfer thread(s) panicked during drain ({} delivered, {} rejected)",
            self.panicked, self.delivered, self.rejected
        )
    }
}

impl std::error::Error for DrainError {}

/// An asynchronous put pipeline: `put` enqueues and returns immediately;
/// transfer threads drain the queue into the [`DataSpace`].
///
/// The queue carries *batches* of [`StageTask`]s: a producer hands off a
/// whole step's objects in one channel send, and the transfer thread
/// answers with one rendezvous notification per key — not one wake-up per
/// object ping-ponging the stats lock between the transfer thread and a
/// waiting consumer.
pub struct AsyncStager {
    tx: Option<Sender<Vec<StageTask>>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<TransportStats>,
    space: Arc<DataSpace>,
}

impl AsyncStager {
    /// Start `nthreads` transfer threads over `space` with a queue depth of
    /// `queue_depth` batches.
    pub fn new(space: Arc<DataSpace>, nthreads: usize, queue_depth: usize) -> Self {
        assert!(nthreads > 0);
        let (tx, rx) = bounded::<Vec<StageTask>>(queue_depth.max(1));
        let stats = Arc::new(TransportStats::default());
        let workers = (0..nthreads)
            .map(|_| {
                let rx = rx.clone();
                let space = Arc::clone(&space);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        // Per-key processed tally for this batch; a batch
                        // rarely spans more than one key, so a flat Vec
                        // beats a map.
                        let mut notes: Vec<(ObjectKey, u64)> = Vec::new();
                        for task in batch {
                            let obj = task.materialize();
                            let bytes = obj.desc.bytes;
                            let key = obj.desc.key.clone();
                            match space.put(obj) {
                                Ok(_) => {
                                    stats.delivered.fetch_add(1, Ordering::Relaxed);
                                    stats.bytes.fetch_add(bytes, Ordering::Relaxed);
                                }
                                // NeedsReduction counts as rejected too: an
                                // async pipeline has no producer on the line
                                // to coarsen and retry.
                                Err(
                                    StagingError::OutOfMemory { .. }
                                    | StagingError::NeedsReduction { .. },
                                ) => {
                                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            match notes.iter_mut().find(|(k, _)| *k == key) {
                                Some((_, n)) => *n += 1,
                                None => notes.push((key, 1)),
                            }
                        }
                        for (key, n) in notes {
                            stats.note_processed_n(&key, n);
                        }
                    }
                })
            })
            .collect();
        AsyncStager {
            tx: Some(tx),
            workers,
            stats,
            space,
        }
    }

    /// Enqueue an object for transfer. Blocks only when the queue is full
    /// (back-pressure), never on the actual transfer. After shutdown (or
    /// if every transfer thread died) the object comes back in the error
    /// so the caller can store it synchronously instead.
    // The Err variant is deliberately the full DataObject: losing the
    // payload on a closed transport is exactly the failure mode this API
    // exists to prevent, and the hot path (Ok) moves nothing.
    #[allow(clippy::result_large_err)]
    pub fn put(&self, obj: DataObject) -> Result<(), TransportClosed> {
        match self.put_batch(vec![StageTask::Ready(obj)]) {
            Ok(()) => Ok(()),
            Err(closed) => match closed.rest.into_iter().next() {
                Some(task) => Err(TransportClosed(task.materialize())),
                // The batch held exactly one task, so an empty remainder
                // means it was enqueued after all.
                None => Ok(()),
            },
        }
    }

    /// Enqueue a whole batch of tasks in one channel send — all or
    /// nothing. On a closed transport every task comes back in the error
    /// so the caller can materialize and store them synchronously.
    pub fn put_batch(&self, tasks: Vec<StageTask>) -> Result<(), BatchClosed> {
        if tasks.is_empty() {
            return Ok(());
        }
        let Some(tx) = self.tx.as_ref() else {
            return Err(BatchClosed {
                enqueued: 0,
                rest: tasks,
            });
        };
        tx.send(tasks).map_err(|e| BatchClosed {
            enqueued: 0,
            rest: e.0,
        })
    }

    /// The staging space being written.
    pub fn space(&self) -> &Arc<DataSpace> {
        &self.space
    }

    /// Shared statistics handle — clone to let a consumer thread call
    /// [`TransportStats::wait_processed`] independently of the stager.
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    /// Objects delivered so far.
    pub fn delivered(&self) -> u64 {
        self.stats.delivered.load(Ordering::Relaxed)
    }

    /// Bytes delivered so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.stats.bytes.load(Ordering::Relaxed)
    }

    /// Puts rejected because staging memory was exhausted.
    pub fn rejected(&self) -> u64 {
        self.stats.rejected.load(Ordering::Relaxed)
    }

    /// Close the queue and wait until every enqueued object is delivered.
    /// Returns (delivered, rejected); a panicked transfer thread surfaces
    /// as a [`DrainError`] (still carrying the surviving counts) instead
    /// of re-panicking the caller.
    pub fn drain(mut self) -> Result<(u64, u64), DrainError> {
        drop(self.tx.take());
        let mut panicked = 0;
        for w in self.workers.drain(..) {
            if w.join().is_err() {
                panicked += 1;
            }
        }
        let delivered = self.stats.delivered.load(Ordering::Relaxed);
        let rejected = self.stats.rejected.load(Ordering::Relaxed);
        if panicked > 0 {
            return Err(DrainError {
                panicked,
                delivered,
                rejected,
            });
        }
        Ok((delivered, rejected))
    }
}

impl Drop for AsyncStager {
    // `drain(mut self)` ends here too, so close-and-prune runs on both the
    // explicit and the implicit shutdown path.
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Sharding;
    use xlayer_amr::boxes::IBox;
    use xlayer_amr::fab::Fab;
    use xlayer_amr::intvect::IntVect;

    fn obj(version: u64, lo: i64) -> DataObject {
        let b = IBox::cube(4).shift(IntVect::splat(lo));
        let fab = Fab::filled(b, 1, 1.0);
        DataObject::from_fab("rho", version, &fab, 0, &b, 0)
    }

    #[test]
    fn async_puts_all_arrive() {
        let space = Arc::new(DataSpace::new(4, 1 << 20, Sharding::BboxHash));
        let stager = AsyncStager::new(Arc::clone(&space), 2, 8);
        for v in 0..20 {
            stager.put(obj(v, (v as i64 % 5) * 8)).unwrap();
        }
        let (delivered, rejected) = stager.drain().unwrap();
        assert_eq!(delivered, 20);
        assert_eq!(rejected, 0);
        for v in 0..20 {
            assert_eq!(space.get("rho", v, None).len(), 1, "version {v} missing");
        }
    }

    #[test]
    fn put_returns_before_delivery_completes() {
        // With a deep queue and 1 worker, puts must not block.
        let space = Arc::new(DataSpace::new(1, 1 << 30, Sharding::RoundRobin));
        let stager = AsyncStager::new(Arc::clone(&space), 1, 64);
        let t0 = std::time::Instant::now();
        for v in 0..32 {
            stager.put(obj(v, 0)).unwrap();
        }
        let enqueue_time = t0.elapsed();
        let (delivered, _) = stager.drain().unwrap();
        assert_eq!(delivered, 32);
        // Enqueueing 32 tiny objects should be far faster than any real
        // transfer would be; this is a smoke check that put() is async.
        assert!(enqueue_time.as_millis() < 1000);
    }

    #[test]
    fn oom_counted_not_fatal() {
        // Space fits exactly one 512 B object.
        let space = Arc::new(DataSpace::new(1, 600, Sharding::RoundRobin));
        let stager = AsyncStager::new(Arc::clone(&space), 1, 4);
        stager.put(obj(1, 0)).unwrap();
        stager.put(obj(2, 0)).unwrap();
        let (delivered, rejected) = stager.drain().unwrap();
        assert_eq!(delivered, 1);
        assert_eq!(rejected, 1);
    }

    #[test]
    fn bytes_accounting() {
        let space = Arc::new(DataSpace::new(2, 1 << 20, Sharding::BboxHash));
        let stager = AsyncStager::new(Arc::clone(&space), 2, 4);
        stager.put(obj(1, 0)).unwrap();
        stager.put(obj(1, 8)).unwrap();
        let stats_bytes = {
            let s = stager;
            let (d, _) = s.drain().unwrap();
            assert_eq!(d, 2);
            space.used()
        };
        assert_eq!(stats_bytes, 2 * 512);
    }

    #[test]
    fn wait_processed_blocks_until_version_lands() {
        let space = Arc::new(DataSpace::new(2, 1 << 20, Sharding::BboxHash));
        let stager = AsyncStager::new(Arc::clone(&space), 2, 16);
        let stats = stager.stats();
        let consumer = {
            let space = Arc::clone(&space);
            std::thread::spawn(move || {
                stats.wait_processed("rho", 3, 4);
                // All four version-3 objects must be visible now.
                space.get("rho", 3, None).len()
            })
        };
        for i in 0..4 {
            stager.put(obj(3, i * 8)).unwrap();
        }
        assert_eq!(consumer.join().unwrap(), 4);
        stager.drain().unwrap();
    }

    #[test]
    fn wait_processed_counts_rejected_puts() {
        // Space fits one object; the second put is rejected but must still
        // unblock the waiter.
        let space = Arc::new(DataSpace::new(1, 600, Sharding::RoundRobin));
        let stager = AsyncStager::new(Arc::clone(&space), 1, 4);
        stager.put(obj(5, 0)).unwrap();
        stager.put(obj(5, 8)).unwrap();
        let stats = stager.stats();
        stats.wait_processed("rho", 5, 2);
        assert_eq!(stats.processed("rho", 5), 2);
        let (delivered, rejected) = stager.drain().unwrap();
        assert_eq!((delivered, rejected), (1, 1));
    }

    #[test]
    fn wait_processed_is_per_version_not_cumulative() {
        let space = Arc::new(DataSpace::new(2, 1 << 20, Sharding::BboxHash));
        let stager = AsyncStager::new(Arc::clone(&space), 2, 16);
        let stats = stager.stats();
        // Three objects at version 9 — waiting on version 9 must not be
        // satisfied by objects of other versions.
        stager.put(obj(8, 0)).unwrap();
        stager.put(obj(8, 8)).unwrap();
        stager.put(obj(9, 0)).unwrap();
        stats.wait_processed("rho", 8, 2);
        stats.wait_processed("rho", 9, 1);
        assert_eq!(stats.processed("rho", 8), 2);
        assert_eq!(stats.processed("rho", 9), 1);
        assert_eq!(stats.processed("rho", 7), 0);
        let (delivered, _) = stager.drain().unwrap();
        assert_eq!(delivered, 3);
    }

    #[test]
    fn processed_map_is_pruned_on_drain() {
        // Regression: the per-(key, version) rendezvous map used to grow
        // without bound for the life of the workflow — one entry per put
        // key, never removed. Drain must prune it.
        let space = Arc::new(DataSpace::new(2, 1 << 20, Sharding::BboxHash));
        let stager = AsyncStager::new(Arc::clone(&space), 2, 16);
        let stats = stager.stats();
        for v in 0..50 {
            stager.put(obj(v, 0)).unwrap();
        }
        stager.drain().unwrap();
        assert_eq!(stats.tracked_keys(), 0, "rendezvous map leaked entries");
        // Released waiters, not deadlock: waiting on a count that can no
        // longer arrive returns immediately once the transport is closed.
        stats.wait_processed("rho", 1000, 5);
        // Aggregate counters survive the prune.
        assert_eq!(stats.delivered.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn batch_put_delivers_ready_and_deferred_alike() {
        let space = Arc::new(DataSpace::new(2, 1 << 20, Sharding::BboxHash));
        let stager = AsyncStager::new(Arc::clone(&space), 2, 4);
        let stats = stager.stats();
        // One batch mixing a packed object with deferred packs that run on
        // the transfer thread.
        let producer = std::thread::current().id();
        stager
            .put_batch(vec![
                StageTask::Ready(obj(1, 0)),
                StageTask::deferred(move || {
                    assert_ne!(
                        std::thread::current().id(),
                        producer,
                        "deferred pack ran on the producer thread"
                    );
                    obj(1, 8)
                }),
                StageTask::deferred(|| obj(1, 16)),
            ])
            .unwrap();
        stats.wait_processed("rho", 1, 3);
        assert_eq!(space.get("rho", 1, None).len(), 3);
        let (delivered, rejected) = stager.drain().unwrap();
        assert_eq!((delivered, rejected), (3, 0));
    }

    #[test]
    fn batch_put_after_drain_returns_every_task() {
        let space = Arc::new(DataSpace::new(1, 1 << 20, Sharding::RoundRobin));
        let stager = AsyncStager::new(Arc::clone(&space), 1, 4);
        let stats = stager.stats();
        // Empty batches are a no-op even on a live transport.
        stager.put_batch(Vec::new()).unwrap();
        // Steal the sender to simulate a dead transport while keeping the
        // stager value alive.
        let dead = AsyncStager {
            tx: None,
            workers: Vec::new(),
            stats: Arc::clone(&stats),
            space: Arc::clone(&space),
        };
        let err = dead
            .put_batch(vec![
                StageTask::Ready(obj(2, 0)),
                StageTask::deferred(|| obj(2, 8)),
            ])
            .unwrap_err();
        assert_eq!(err.enqueued, 0);
        assert_eq!(err.rest.len(), 2);
        // Nothing was lost: the caller can materialize and store directly.
        for task in err.rest {
            space.put(task.materialize()).unwrap();
        }
        assert_eq!(space.get("rho", 2, None).len(), 2);
        stager.drain().unwrap();
    }

    #[test]
    fn single_put_round_trips_through_the_batch_channel() {
        // `put` is now a one-task batch; the closed-transport error must
        // still hand the object itself back.
        let space = Arc::new(DataSpace::new(1, 1 << 20, Sharding::RoundRobin));
        let dead = AsyncStager {
            tx: None,
            workers: Vec::new(),
            stats: Arc::new(TransportStats::default()),
            space: Arc::clone(&space),
        };
        let TransportClosed(back) = dead.put(obj(3, 0)).unwrap_err();
        assert_eq!(back.desc.key, crate::object::ObjectKey::new("rho", 3));
    }

    #[test]
    fn drop_also_prunes_and_releases_waiters() {
        let space = Arc::new(DataSpace::new(1, 1 << 20, Sharding::RoundRobin));
        let stager = AsyncStager::new(Arc::clone(&space), 1, 4);
        let stats = stager.stats();
        stager.put(obj(0, 0)).unwrap();
        let waiter = {
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || stats.wait_processed("rho", 7, 1))
        };
        drop(stager);
        waiter.join().unwrap();
        assert_eq!(stats.tracked_keys(), 0);
    }
}
