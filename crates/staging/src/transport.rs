//! Asynchronous data transport into the staging space.
//!
//! The paper's middleware relies on DataSpaces' asynchronous transfers:
//! "the data will be asynchronously transferred to staging nodes
//! immediately, and get processed as soon as in-transit cores become
//! available" (§4.2). [`AsyncStager`] reproduces that behaviour with a
//! bounded queue drained by transfer threads.
//!
//! Consumers that must observe a *specific* version's objects (an
//! in-transit analysis worker picking up step `i` while the producer is
//! already enqueueing step `i+1`) synchronise on
//! [`TransportStats::wait_processed`]: per-key processed counts, not a
//! global tally, because with multiple transfer threads later-version
//! objects can complete while an earlier one is still in flight.

use crate::object::{DataObject, ObjectKey};
use crate::server::StagingError;
use crate::space::DataSpace;
use crossbeam::channel::{bounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Statistics of an async transport session.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Objects successfully staged.
    pub delivered: AtomicU64,
    /// Bytes successfully staged.
    pub bytes: AtomicU64,
    /// Puts rejected by the space (staging memory exhausted).
    pub rejected: AtomicU64,
    /// Per-key processed counts (delivered + rejected), for consumers that
    /// wait on a specific version's transfers.
    processed: Mutex<HashMap<ObjectKey, u64>>,
    cv: Condvar,
}

impl TransportStats {
    /// Record that one object under `key` finished processing (either
    /// stored or rejected) and wake any waiters.
    pub fn note_processed(&self, key: &ObjectKey) {
        let mut map = self.processed.lock();
        *map.entry(key.clone()).or_insert(0) += 1;
        drop(map);
        self.cv.notify_all();
    }

    /// Objects processed so far under `key`.
    pub fn processed(&self, name: &str, version: u64) -> u64 {
        let key = ObjectKey::new(name, version);
        self.processed.lock().get(&key).copied().unwrap_or(0)
    }

    /// Block until at least `expected` objects under (`name`, `version`)
    /// have been processed — delivered *or* rejected; a rejected put still
    /// counts as "the transfer finished", so waiters never deadlock on an
    /// out-of-memory staging space.
    pub fn wait_processed(&self, name: &str, version: u64, expected: u64) {
        if expected == 0 {
            return;
        }
        let key = ObjectKey::new(name, version);
        let mut map = self.processed.lock();
        while map.get(&key).copied().unwrap_or(0) < expected {
            self.cv.wait(&mut map);
        }
    }
}

/// A put was refused because the transport is shut down (queue closed or
/// every transfer thread gone). Carries the object back so the caller can
/// retry synchronously — the payload is never lost to the error path.
#[derive(Debug)]
pub struct TransportClosed(pub DataObject);

impl std::fmt::Display for TransportClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "async transport closed; object {:?} v{} returned to caller",
            self.0.desc.key.name, self.0.desc.key.version
        )
    }
}

impl std::error::Error for TransportClosed {}

/// A transfer worker panicked while the stager drained; the counts cover
/// only what the surviving workers processed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrainError {
    /// Workers that did not join cleanly.
    pub panicked: usize,
    /// Objects delivered by the workers that did.
    pub delivered: u64,
    /// Puts rejected by the space.
    pub rejected: u64,
}

impl std::fmt::Display for DrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} transfer thread(s) panicked during drain ({} delivered, {} rejected)",
            self.panicked, self.delivered, self.rejected
        )
    }
}

impl std::error::Error for DrainError {}

/// An asynchronous put pipeline: `put` enqueues and returns immediately;
/// transfer threads drain the queue into the [`DataSpace`].
pub struct AsyncStager {
    tx: Option<Sender<DataObject>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<TransportStats>,
    space: Arc<DataSpace>,
}

impl AsyncStager {
    /// Start `nthreads` transfer threads over `space` with a queue depth of
    /// `queue_depth` objects.
    pub fn new(space: Arc<DataSpace>, nthreads: usize, queue_depth: usize) -> Self {
        assert!(nthreads > 0);
        let (tx, rx) = bounded::<DataObject>(queue_depth.max(1));
        let stats = Arc::new(TransportStats::default());
        let workers = (0..nthreads)
            .map(|_| {
                let rx = rx.clone();
                let space = Arc::clone(&space);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    while let Ok(obj) = rx.recv() {
                        let bytes = obj.desc.bytes;
                        let key = obj.desc.key.clone();
                        match space.put(obj) {
                            Ok(_) => {
                                stats.delivered.fetch_add(1, Ordering::Relaxed);
                                stats.bytes.fetch_add(bytes, Ordering::Relaxed);
                            }
                            Err(StagingError::OutOfMemory { .. }) => {
                                stats.rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        stats.note_processed(&key);
                    }
                })
            })
            .collect();
        AsyncStager {
            tx: Some(tx),
            workers,
            stats,
            space,
        }
    }

    /// Enqueue an object for transfer. Blocks only when the queue is full
    /// (back-pressure), never on the actual transfer. After shutdown (or
    /// if every transfer thread died) the object comes back in the error
    /// so the caller can store it synchronously instead.
    // The Err variant is deliberately the full DataObject: losing the
    // payload on a closed transport is exactly the failure mode this API
    // exists to prevent, and the hot path (Ok) moves nothing.
    #[allow(clippy::result_large_err)]
    pub fn put(&self, obj: DataObject) -> Result<(), TransportClosed> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(TransportClosed(obj));
        };
        tx.send(obj).map_err(|e| TransportClosed(e.0))
    }

    /// The staging space being written.
    pub fn space(&self) -> &Arc<DataSpace> {
        &self.space
    }

    /// Shared statistics handle — clone to let a consumer thread call
    /// [`TransportStats::wait_processed`] independently of the stager.
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    /// Objects delivered so far.
    pub fn delivered(&self) -> u64 {
        self.stats.delivered.load(Ordering::Relaxed)
    }

    /// Bytes delivered so far.
    pub fn bytes_delivered(&self) -> u64 {
        self.stats.bytes.load(Ordering::Relaxed)
    }

    /// Puts rejected because staging memory was exhausted.
    pub fn rejected(&self) -> u64 {
        self.stats.rejected.load(Ordering::Relaxed)
    }

    /// Close the queue and wait until every enqueued object is delivered.
    /// Returns (delivered, rejected); a panicked transfer thread surfaces
    /// as a [`DrainError`] (still carrying the surviving counts) instead
    /// of re-panicking the caller.
    pub fn drain(mut self) -> Result<(u64, u64), DrainError> {
        drop(self.tx.take());
        let mut panicked = 0;
        for w in self.workers.drain(..) {
            if w.join().is_err() {
                panicked += 1;
            }
        }
        let delivered = self.stats.delivered.load(Ordering::Relaxed);
        let rejected = self.stats.rejected.load(Ordering::Relaxed);
        if panicked > 0 {
            return Err(DrainError {
                panicked,
                delivered,
                rejected,
            });
        }
        Ok((delivered, rejected))
    }
}

impl Drop for AsyncStager {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Sharding;
    use xlayer_amr::boxes::IBox;
    use xlayer_amr::fab::Fab;
    use xlayer_amr::intvect::IntVect;

    fn obj(version: u64, lo: i64) -> DataObject {
        let b = IBox::cube(4).shift(IntVect::splat(lo));
        let fab = Fab::filled(b, 1, 1.0);
        DataObject::from_fab("rho", version, &fab, 0, &b, 0)
    }

    #[test]
    fn async_puts_all_arrive() {
        let space = Arc::new(DataSpace::new(4, 1 << 20, Sharding::BboxHash));
        let stager = AsyncStager::new(Arc::clone(&space), 2, 8);
        for v in 0..20 {
            stager.put(obj(v, (v as i64 % 5) * 8)).unwrap();
        }
        let (delivered, rejected) = stager.drain().unwrap();
        assert_eq!(delivered, 20);
        assert_eq!(rejected, 0);
        for v in 0..20 {
            assert_eq!(space.get("rho", v, None).len(), 1, "version {v} missing");
        }
    }

    #[test]
    fn put_returns_before_delivery_completes() {
        // With a deep queue and 1 worker, puts must not block.
        let space = Arc::new(DataSpace::new(1, 1 << 30, Sharding::RoundRobin));
        let stager = AsyncStager::new(Arc::clone(&space), 1, 64);
        let t0 = std::time::Instant::now();
        for v in 0..32 {
            stager.put(obj(v, 0)).unwrap();
        }
        let enqueue_time = t0.elapsed();
        let (delivered, _) = stager.drain().unwrap();
        assert_eq!(delivered, 32);
        // Enqueueing 32 tiny objects should be far faster than any real
        // transfer would be; this is a smoke check that put() is async.
        assert!(enqueue_time.as_millis() < 1000);
    }

    #[test]
    fn oom_counted_not_fatal() {
        // Space fits exactly one 512 B object.
        let space = Arc::new(DataSpace::new(1, 600, Sharding::RoundRobin));
        let stager = AsyncStager::new(Arc::clone(&space), 1, 4);
        stager.put(obj(1, 0)).unwrap();
        stager.put(obj(2, 0)).unwrap();
        let (delivered, rejected) = stager.drain().unwrap();
        assert_eq!(delivered, 1);
        assert_eq!(rejected, 1);
    }

    #[test]
    fn bytes_accounting() {
        let space = Arc::new(DataSpace::new(2, 1 << 20, Sharding::BboxHash));
        let stager = AsyncStager::new(Arc::clone(&space), 2, 4);
        stager.put(obj(1, 0)).unwrap();
        stager.put(obj(1, 8)).unwrap();
        let stats_bytes = {
            let s = stager;
            let (d, _) = s.drain().unwrap();
            assert_eq!(d, 2);
            space.used()
        };
        assert_eq!(stats_bytes, 2 * 512);
    }

    #[test]
    fn wait_processed_blocks_until_version_lands() {
        let space = Arc::new(DataSpace::new(2, 1 << 20, Sharding::BboxHash));
        let stager = AsyncStager::new(Arc::clone(&space), 2, 16);
        let stats = stager.stats();
        let consumer = {
            let space = Arc::clone(&space);
            std::thread::spawn(move || {
                stats.wait_processed("rho", 3, 4);
                // All four version-3 objects must be visible now.
                space.get("rho", 3, None).len()
            })
        };
        for i in 0..4 {
            stager.put(obj(3, i * 8)).unwrap();
        }
        assert_eq!(consumer.join().unwrap(), 4);
        stager.drain().unwrap();
    }

    #[test]
    fn wait_processed_counts_rejected_puts() {
        // Space fits one object; the second put is rejected but must still
        // unblock the waiter.
        let space = Arc::new(DataSpace::new(1, 600, Sharding::RoundRobin));
        let stager = AsyncStager::new(Arc::clone(&space), 1, 4);
        stager.put(obj(5, 0)).unwrap();
        stager.put(obj(5, 8)).unwrap();
        let stats = stager.stats();
        stats.wait_processed("rho", 5, 2);
        assert_eq!(stats.processed("rho", 5), 2);
        let (delivered, rejected) = stager.drain().unwrap();
        assert_eq!((delivered, rejected), (1, 1));
    }

    #[test]
    fn wait_processed_is_per_version_not_cumulative() {
        let space = Arc::new(DataSpace::new(2, 1 << 20, Sharding::BboxHash));
        let stager = AsyncStager::new(Arc::clone(&space), 2, 16);
        let stats = stager.stats();
        // Three objects at version 9 — waiting on version 9 must not be
        // satisfied by objects of other versions.
        stager.put(obj(8, 0)).unwrap();
        stager.put(obj(8, 8)).unwrap();
        stager.put(obj(9, 0)).unwrap();
        let (delivered, _) = stager.drain().unwrap();
        assert_eq!(delivered, 3);
        assert_eq!(stats.processed("rho", 8), 2);
        assert_eq!(stats.processed("rho", 9), 1);
        assert_eq!(stats.processed("rho", 7), 0);
    }
}
