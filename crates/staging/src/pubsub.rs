//! Publish/subscribe on the staging space: the flexible data
//! publish-and-subscribe service the authors built on the staging area in
//! their companion work (paper §6, "Our previous work also integrates
//! messaging system on the staging area to support flexible data publish
//! and subscribe" — Jin et al., HiPC'12).
//!
//! Subscribers register an interest `(variable, region)`; every put whose
//! object intersects a registered interest is delivered to that
//! subscriber's channel — the push-mode coupling primitive, complementing
//! the pull-mode `get`.

use crate::object::DataObject;
use crate::space::DataSpace;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xlayer_amr::boxes::IBox;

/// Publisher-side delivery counters. `dropped` is the load-bearing one:
/// bounded subscribers lose notifications silently when their channel is
/// full, and placement policy must be able to *observe* that loss instead
/// of inferring it from missing versions downstream.
#[derive(Debug, Default)]
pub struct PublishStats {
    /// Objects published (accepted by the space).
    pub published: AtomicU64,
    /// Notifications delivered into subscriber channels.
    pub delivered: AtomicU64,
    /// Notifications dropped because a bounded subscriber's channel was
    /// full (the lagging consumer loses data; the publisher proceeds).
    pub dropped: AtomicU64,
}

/// A subscriber's registered interest.
#[derive(Clone, Debug)]
struct Interest {
    name: String,
    region: Option<IBox>,
    tx: Sender<DataObject>,
    id: u64,
}

/// A staging space with push-mode notification.
pub struct PubSubSpace {
    space: Arc<DataSpace>,
    interests: Mutex<Vec<Interest>>,
    next_id: Mutex<u64>,
    stats: Arc<PublishStats>,
}

/// A subscription handle: receive matching objects; drop to keep the
/// registration (unsubscribe explicitly via [`PubSubSpace::unsubscribe`]).
pub struct Subscription {
    /// Channel of matching objects, in publication order.
    pub rx: Receiver<DataObject>,
    /// Registration id for unsubscribing.
    pub id: u64,
}

impl PubSubSpace {
    /// Wrap a staging space.
    pub fn new(space: Arc<DataSpace>) -> Self {
        PubSubSpace {
            space,
            interests: Mutex::new(Vec::new()),
            next_id: Mutex::new(0),
            stats: Arc::new(PublishStats::default()),
        }
    }

    /// The underlying space (pull-mode access still works).
    pub fn space(&self) -> &Arc<DataSpace> {
        &self.space
    }

    /// Publisher-side delivery counters, shared so a policy thread can
    /// watch them while publishes proceed.
    pub fn stats(&self) -> Arc<PublishStats> {
        Arc::clone(&self.stats)
    }

    /// Register an interest in `name`, optionally restricted to objects
    /// intersecting `region`.
    pub fn subscribe(&self, name: impl Into<String>, region: Option<IBox>) -> Subscription {
        let (tx, rx) = unbounded();
        self.register(name.into(), region, tx, rx)
    }

    /// Register an interest with a bounded notification channel of
    /// `capacity` objects. A publish finding the channel full drops that
    /// notification (counted in [`PublishStats::dropped`]) rather than
    /// blocking the publisher — lossy-but-non-blocking, the trade the
    /// paper's in-transit pipeline makes under back-pressure.
    pub fn subscribe_bounded(
        &self,
        name: impl Into<String>,
        region: Option<IBox>,
        capacity: usize,
    ) -> Subscription {
        let (tx, rx) = bounded(capacity.max(1));
        self.register(name.into(), region, tx, rx)
    }

    fn register(
        &self,
        name: String,
        region: Option<IBox>,
        tx: Sender<DataObject>,
        rx: Receiver<DataObject>,
    ) -> Subscription {
        let mut id_guard = self.next_id.lock();
        let id = *id_guard;
        *id_guard += 1;
        drop(id_guard);
        self.interests.lock().push(Interest {
            name,
            region,
            tx,
            id,
        });
        Subscription { rx, id }
    }

    /// Remove a registration. Returns true if it existed.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut ints = self.interests.lock();
        let before = ints.len();
        ints.retain(|i| i.id != id);
        ints.len() != before
    }

    /// Number of live registrations.
    pub fn num_subscribers(&self) -> usize {
        self.interests.lock().len()
    }

    /// Publish: store the object in the space and deliver it to every
    /// matching subscriber. Returns the number of deliveries, or the
    /// staging error if the store rejected the object (no delivery then —
    /// subscribers only see durable data).
    pub fn publish(&self, obj: DataObject) -> Result<usize, crate::server::StagingError> {
        self.space.put(obj.clone())?;
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        let mut delivered = 0;
        let mut dead = Vec::new();
        let ints = self.interests.lock();
        for i in ints.iter() {
            let name_ok = i.name == obj.desc.key.name;
            let region_ok = i.region.is_none_or(|r| r.intersects(&obj.desc.bbox));
            if name_ok && region_ok {
                match i.tx.try_send(obj.clone()) {
                    Ok(()) => delivered += 1,
                    Err(TrySendError::Disconnected(_)) => dead.push(i.id),
                    // A bounded subscriber is lagging: it loses this
                    // notification rather than blocking the publisher —
                    // but the loss is counted, not silent.
                    Err(TrySendError::Full(_)) => {
                        self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        drop(ints);
        self.stats
            .delivered
            .fetch_add(delivered as u64, Ordering::Relaxed);
        if !dead.is_empty() {
            let mut ints = self.interests.lock();
            ints.retain(|i| !dead.contains(&i.id));
        }
        Ok(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Sharding;
    use xlayer_amr::{Fab, IntVect};

    fn obj(name: &str, version: u64, lo: i64, n: i64) -> DataObject {
        let b = IBox::cube(n).shift(IntVect::splat(lo));
        let fab = Fab::filled(b, 1, version as f64);
        DataObject::from_fab(name, version, &fab, 0, &b, 0)
    }

    fn space() -> PubSubSpace {
        PubSubSpace::new(Arc::new(DataSpace::new(2, 1 << 24, Sharding::BboxHash)))
    }

    #[test]
    fn subscriber_receives_matching_variable() {
        let ps = space();
        let sub = ps.subscribe("rho", None);
        assert_eq!(ps.publish(obj("rho", 1, 0, 4)).unwrap(), 1);
        assert_eq!(ps.publish(obj("p", 1, 0, 4)).unwrap(), 0);
        let got = sub.rx.try_recv().expect("delivery");
        assert_eq!(got.desc.key.name, "rho");
        assert!(sub.rx.try_recv().is_err(), "p must not be delivered");
    }

    #[test]
    fn region_filter_applies() {
        let ps = space();
        let sub = ps.subscribe("rho", Some(IBox::cube(4)));
        ps.publish(obj("rho", 1, 0, 4)).unwrap(); // intersects
        ps.publish(obj("rho", 2, 100, 4)).unwrap(); // far away
        assert_eq!(sub.rx.try_recv().unwrap().desc.key.version, 1);
        assert!(sub.rx.try_recv().is_err());
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let ps = space();
        let a = ps.subscribe("rho", None);
        let b = ps.subscribe("rho", None);
        assert_eq!(ps.publish(obj("rho", 1, 0, 4)).unwrap(), 2);
        assert!(a.rx.try_recv().is_ok());
        assert!(b.rx.try_recv().is_ok());
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let ps = space();
        let sub = ps.subscribe("rho", None);
        assert!(ps.unsubscribe(sub.id));
        assert!(!ps.unsubscribe(sub.id));
        assert_eq!(ps.publish(obj("rho", 1, 0, 4)).unwrap(), 0);
        assert_eq!(ps.num_subscribers(), 0);
    }

    #[test]
    fn dropped_receivers_are_pruned() {
        let ps = space();
        let sub = ps.subscribe("rho", None);
        drop(sub.rx);
        assert_eq!(ps.publish(obj("rho", 1, 0, 4)).unwrap(), 0);
        assert_eq!(ps.num_subscribers(), 0, "dead subscriber not pruned");
    }

    #[test]
    fn published_objects_are_durable_in_the_space() {
        let ps = space();
        let _sub = ps.subscribe("rho", None);
        ps.publish(obj("rho", 9, 0, 4)).unwrap();
        assert_eq!(ps.space().get("rho", 9, None).len(), 1);
    }

    #[test]
    fn rejected_put_delivers_nothing() {
        // Tiny space: second object overflows, subscriber must not see it.
        let ps = PubSubSpace::new(Arc::new(DataSpace::new(1, 600, Sharding::RoundRobin)));
        let sub = ps.subscribe("rho", None);
        assert!(ps.publish(obj("rho", 1, 0, 4)).is_ok());
        assert!(ps.publish(obj("rho", 2, 0, 4)).is_err());
        assert_eq!(sub.rx.try_recv().unwrap().desc.key.version, 1);
        assert!(sub.rx.try_recv().is_err());
    }

    #[test]
    fn bounded_subscriber_overflow_is_counted_not_silent() {
        let ps = space();
        let stats = ps.stats();
        // Capacity 2: the third and fourth matching publishes overflow.
        let sub = ps.subscribe_bounded("rho", None, 2);
        for v in 1..=4 {
            ps.publish(obj("rho", v, 0, 4)).unwrap();
        }
        assert_eq!(stats.published.load(Ordering::Relaxed), 4);
        assert_eq!(stats.delivered.load(Ordering::Relaxed), 2);
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 2);
        // The lagging consumer sees the oldest two; the rest were lost —
        // visibly, via the counter.
        assert_eq!(sub.rx.try_recv().unwrap().desc.key.version, 1);
        assert_eq!(sub.rx.try_recv().unwrap().desc.key.version, 2);
        assert!(sub.rx.try_recv().is_err());
        // Every published object is still durable in the space: only the
        // notification is lossy, never the data.
        for v in 1..=4 {
            assert_eq!(ps.space().get("rho", v, None).len(), 1);
        }
    }

    #[test]
    fn unbounded_subscriber_never_drops() {
        let ps = space();
        let stats = ps.stats();
        let sub = ps.subscribe("rho", None);
        for v in 1..=16 {
            ps.publish(obj("rho", v, 0, 4)).unwrap();
        }
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 0);
        assert_eq!(stats.delivered.load(Ordering::Relaxed), 16);
        assert_eq!(sub.rx.len(), 16);
    }

    #[test]
    fn push_pull_coupling_pattern() {
        // Producer publishes; consumer thread reacts to pushes.
        let ps = Arc::new(space());
        let sub = ps.subscribe("rho", None);
        let consumer = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Ok(o) = sub.rx.recv() {
                seen.push(o.desc.key.version);
                if seen.len() == 3 {
                    break;
                }
            }
            seen
        });
        for v in 1..=3 {
            ps.publish(obj("rho", v, (v as i64) * 8, 4)).unwrap();
        }
        assert_eq!(consumer.join().unwrap(), vec![1, 2, 3]);
    }
}
