//! Equivalence pins for the sweep-structured solver hot path.
//!
//! The sweep kernels cache primitives and predicted face states instead of
//! re-deriving them per face, and the capture/wave-speed paths run grids in
//! parallel. All of that is a pure re-ordering of *where* the same
//! floating-point expressions are evaluated, so the results must be
//! **bit-identical** to the retained per-cell references — these tests
//! compare `f64::to_bits`, not approximate norms.

use proptest::prelude::*;
use xlayer_amr::boxes::IBox;
use xlayer_amr::domain::ProblemDomain;
use xlayer_amr::fab::Fab;
use xlayer_amr::hierarchy::HierarchyConfig;
use xlayer_amr::intvect::{IntVect, DIM};
use xlayer_amr::layout::BoxLayout;
use xlayer_amr::level_data::LevelData;
use xlayer_amr::tagging::IntVectSet;
use xlayer_solvers::advect::{AdvectDiffuseSolver, VelocityField};
use xlayer_solvers::amr_driver::{AmrSimulation, DriverConfig};
use xlayer_solvers::euler::{Conserved, EulerSolver, Primitive, NCOMP};
use xlayer_solvers::level_solver::{LevelFluxes, LevelSolver};
use xlayer_solvers::problems::{GasProblem, ScalarProblem};

const GAMMA: f64 = 1.4;

/// Deterministic pseudo-random value in [0, 1) from cell indices.
fn hash01(iv: IntVect, salt: i64) -> f64 {
    let h = (iv[0]
        .wrapping_mul(73856093)
        .wrapping_add(iv[1].wrapping_mul(19349663))
        .wrapping_add(iv[2].wrapping_mul(83492791))
        .wrapping_add(salt.wrapping_mul(7919)))
    .rem_euclid(10_000);
    h as f64 / 10_000.0
}

/// A physically admissible (positive rho/p) pseudo-random gas state.
fn gas_state(iv: IntVect, salt: i64) -> Conserved {
    Primitive {
        rho: 0.2 + 1.8 * hash01(iv, salt),
        vel: [
            2.0 * hash01(iv, salt + 1) - 1.0,
            2.0 * hash01(iv, salt + 2) - 1.0,
            2.0 * hash01(iv, salt + 3) - 1.0,
        ],
        p: 0.2 + 1.8 * hash01(iv, salt + 4),
    }
    .to_conserved(GAMMA)
}

/// Fill a fab over `bx` with pseudo-random gas states.
fn gas_fab(bx: IBox, salt: i64) -> Fab {
    let mut f = Fab::new(bx, NCOMP);
    for iv in bx.cells() {
        EulerSolver::set_state(&mut f, iv, gas_state(iv, salt));
    }
    f
}

/// A near-vacuum gas state: rho and p log-uniform down to 1e-9 with large
/// velocities, so neighboring cells form strong rarefactions whose MUSCL
/// half-step prediction undershoots below the `SMALL` positivity floor.
fn near_vacuum_state(iv: IntVect, salt: i64) -> Conserved {
    Primitive {
        rho: 10f64.powf(-9.0 + 9.5 * hash01(iv, salt)),
        vel: [
            20.0 * hash01(iv, salt + 1) - 10.0,
            20.0 * hash01(iv, salt + 2) - 10.0,
            20.0 * hash01(iv, salt + 3) - 10.0,
        ],
        p: 10f64.powf(-9.0 + 9.5 * hash01(iv, salt + 4)),
    }
    .to_conserved(GAMMA)
}

/// Assert two fabs are bit-for-bit identical.
fn assert_fab_bits_eq(a: &Fab, b: &Fab, what: &str) {
    assert_eq!(a.ibox(), b.ibox(), "{what}: box mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: payload diverges at flat index {i} ({x} vs {y})"
        );
    }
}

fn assert_fluxes_bits_eq(a: &LevelFluxes, b: &LevelFluxes, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: grid count mismatch");
    for (g, (fa, fb)) in a.iter().zip(b).enumerate() {
        for d in 0..DIM {
            assert_fab_bits_eq(&fa[d], &fb[d], &format!("{what}: grid {g} dir {d}"));
        }
    }
}

/// Ghost-filled boxes around `valid` that exercise every boundary-clamp
/// combination: fully grown (all interior faces), clipped flush on the low
/// sides, clipped flush on the high sides.
fn avail_variants(valid: IBox, nghost: i64) -> [IBox; 3] {
    let grown = valid.grow(nghost);
    [
        grown,
        IBox::new(valid.lo(), grown.hi()),
        IBox::new(grown.lo(), valid.hi()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Euler sweep kernel is bit-identical to the per-face reference,
    /// including at clamped physical boundaries.
    #[test]
    fn euler_grid_fluxes_match_reference(
        salt in 0i64..1000,
        n in 4i64..10,
        lo in -5i64..5,
        dtdx in 0.01f64..0.4,
    ) {
        let solver = EulerSolver::default();
        let valid = IBox::new(IntVect::splat(lo), IntVect::splat(lo + n - 1));
        for avail in avail_variants(valid, 2) {
            let old = gas_fab(avail, salt);
            let sweep = solver.grid_fluxes(&old, &valid, dtdx, GAMMA);
            let reference = solver.grid_fluxes_reference(&old, &valid, dtdx, GAMMA);
            for d in 0..DIM {
                assert_fab_bits_eq(&sweep[d], &reference[d], &format!("euler dir {d}"));
            }
        }
    }

    /// Near-vacuum regime: rho/p down to 1e-9 with strong jumps and large
    /// dtdx drive the predictor below the positivity floors, so this pins
    /// that the sweep clamps exactly like `Primitive::from_array` does in
    /// the reference — and that no NaN escapes `hllc_flux` in either path.
    #[test]
    fn euler_grid_fluxes_match_reference_near_vacuum(
        salt in 0i64..1000,
        n in 4i64..10,
        lo in -5i64..5,
        dtdx in 0.2f64..1.5,
    ) {
        let solver = EulerSolver::default();
        let valid = IBox::new(IntVect::splat(lo), IntVect::splat(lo + n - 1));
        for avail in avail_variants(valid, 2) {
            let mut old = Fab::new(avail, NCOMP);
            for iv in avail.cells() {
                EulerSolver::set_state(&mut old, iv, near_vacuum_state(iv, salt));
            }
            let sweep = solver.grid_fluxes(&old, &valid, dtdx, GAMMA);
            let reference = solver.grid_fluxes_reference(&old, &valid, dtdx, GAMMA);
            for d in 0..DIM {
                for v in sweep[d].as_slice() {
                    prop_assert!(v.is_finite(), "near-vacuum sweep flux not finite: {v}");
                }
                assert_fab_bits_eq(&sweep[d], &reference[d], &format!("near-vacuum dir {d}"));
            }
        }
    }

    /// The advect sweep kernel is bit-identical to the per-face reference,
    /// with and without diffusion, for both velocity-field shapes.
    #[test]
    fn advect_grid_fluxes_match_reference(
        salt in 0i64..1000,
        n in 4i64..10,
        lo in -5i64..5,
        diffuse in 0i64..2,
        vortex in 0i64..2,
    ) {
        let diffusion = if diffuse == 1 { 0.3 } else { 0.0 };
        let vortex = vortex == 1;
        let field = if vortex {
            VelocityField::Vortex { center: [lo as f64 + 2.0; 2], strength: 0.2 }
        } else {
            VelocityField::Constant([0.7, -0.4, 0.25])
        };
        let solver = AdvectDiffuseSolver::new(field, diffusion, 16);
        let valid = IBox::new(IntVect::splat(lo), IntVect::splat(lo + n - 1));
        for avail in avail_variants(valid, 1) {
            let mut old = Fab::new(avail, 1);
            for iv in avail.cells() {
                old.set(iv, 0, 2.0 * hash01(iv, salt) - 1.0);
            }
            let sweep = solver.grid_fluxes(&old, &valid, 0.5);
            let reference = solver.grid_fluxes_reference(&old, &valid, 0.5);
            for d in 0..DIM {
                assert_fab_bits_eq(&sweep[d], &reference[d], &format!("advect dir {d}"));
            }
        }
    }

    /// A full multi-grid Euler level step through the sweep path lands on
    /// the same bits as the reference path, and so do the parallel
    /// wave-speed reduction and the parallel flux-capturing step.
    #[test]
    fn euler_level_paths_match_reference(salt in 0i64..1000, periodic in 0i64..2) {
        let periodic = periodic == 1;
        let n = 16;
        let b = IBox::cube(n);
        let domain = if periodic { ProblemDomain::periodic(b) } else { ProblemDomain::new(b) };
        let solver = EulerSolver::default();
        let build = || {
            let layout = BoxLayout::decompose(&domain, 8, 2);
            let mut ld = LevelData::new(layout, domain, NCOMP, 2);
            ld.for_each_mut(|vb, fab| {
                for iv in vb.cells() {
                    EulerSolver::set_state(fab, iv, gas_state(iv, salt));
                }
            });
            ld.exchange();
            ld
        };

        let reference_level = build();
        prop_assert_eq!(
            solver.max_wave_speed(&reference_level).to_bits(),
            solver.max_wave_speed_reference(&reference_level).to_bits()
        );

        let (dx, dt) = (1.0 / n as f64, 0.4 / n as f64);
        let mut sweep_level = build();
        let mut reference_level = reference_level;
        solver.advance_level(&mut sweep_level, dx, dt);
        solver.advance_level_reference(&mut reference_level, dx, dt);
        for i in 0..sweep_level.len() {
            assert_fab_bits_eq(
                sweep_level.fab(i),
                reference_level.fab(i),
                &format!("advance_level grid {i}"),
            );
        }

        let mut cap = build();
        let mut cap_ref = build();
        let fluxes = solver.advance_level_capture(&mut cap, dx, dt).unwrap();
        let fluxes_ref = solver.advance_level_capture_reference(&mut cap_ref, dx, dt).unwrap();
        for i in 0..cap.len() {
            assert_fab_bits_eq(cap.fab(i), cap_ref.fab(i), &format!("capture grid {i}"));
        }
        assert_fluxes_bits_eq(&fluxes, &fluxes_ref, "euler capture fluxes");
    }

    /// The parallel advect capture path returns the same state and flux
    /// bits as the retained serial reference.
    #[test]
    fn advect_capture_matches_reference(salt in 0i64..1000) {
        let n = 16;
        let domain = ProblemDomain::periodic(IBox::cube(n));
        let solver = AdvectDiffuseSolver::new(
            VelocityField::Vortex { center: [n as f64 / 2.0; 2], strength: 0.05 },
            0.1,
            n,
        );
        let build = || {
            let layout = BoxLayout::decompose(&domain, 8, 2);
            let mut ld = LevelData::new(layout, domain, 1, 1);
            ld.for_each_mut(|vb, fab| {
                for iv in vb.cells() {
                    fab.set(iv, 0, hash01(iv, salt));
                }
            });
            ld.exchange();
            ld
        };
        let mut par = build();
        let mut ser = build();
        let dt = solver.max_dt(1.0).min(0.2);
        let f_par = solver.advance_level_capture(&mut par, 1.0, dt).unwrap();
        let f_ser = solver.advance_level_capture_reference(&mut ser, 1.0, dt).unwrap();
        for i in 0..par.len() {
            assert_fab_bits_eq(par.fab(i), ser.fab(i), &format!("advect capture grid {i}"));
        }
        assert_fluxes_bits_eq(&f_par, &f_ser, "advect capture fluxes");
    }
}

/// Deterministic pin on the floor regime: constant tiny rho/p under a steep
/// expanding velocity ramp, where the half-step predictor provably drives
/// rho and p negative (p_face = p·(1 − 0.5·dtdx·γ·du) with 0.5·dtdx·γ·du ≈
/// 2.0), so the `.max(SMALL)` clamps must engage on every interior face.
/// Without the clamp the sweep path would feed p < 0 to `hllc_flux` and emit
/// NaN where the reference stays finite.
#[test]
fn euler_sweep_clamps_near_vacuum_prediction() {
    let solver = EulerSolver::default();
    let valid = IBox::new(IntVect::splat(0), IntVect::splat(5));
    let avail = valid.grow(2);
    let mut old = Fab::new(avail, NCOMP);
    for iv in avail.cells() {
        EulerSolver::set_state(
            &mut old,
            iv,
            Primitive {
                rho: 1e-6,
                vel: [2.0 * iv[0] as f64, 0.0, 0.0],
                p: 1e-6,
            }
            .to_conserved(GAMMA),
        );
    }
    let dtdx = 1.4;
    let sweep = solver.grid_fluxes(&old, &valid, dtdx, GAMMA);
    let reference = solver.grid_fluxes_reference(&old, &valid, dtdx, GAMMA);
    for d in 0..DIM {
        for v in sweep[d].as_slice() {
            assert!(v.is_finite(), "clamped sweep flux not finite: {v}");
        }
        assert_fab_bits_eq(&sweep[d], &reference[d], &format!("clamp pin dir {d}"));
    }
}

/// A `LevelSolver` that routes every overridden path through the retained
/// references: serial capture, serial wave-speed scan, per-face fluxes.
/// Driving a full AMR run with it reproduces the seed's behavior exactly.
struct ReferenceEuler(EulerSolver);

impl LevelSolver for ReferenceEuler {
    fn ncomp(&self) -> usize {
        self.0.ncomp()
    }
    fn nghost(&self) -> i64 {
        self.0.nghost()
    }
    fn max_wave_speed(&self, data: &LevelData) -> f64 {
        self.0.max_wave_speed_reference(data)
    }
    fn advance_level(&self, data: &mut LevelData, dx: f64, dt: f64) {
        self.0.advance_level_reference(data, dx, dt);
    }
    fn advance_level_capture(&self, data: &mut LevelData, dx: f64, dt: f64) -> Option<LevelFluxes> {
        self.0.advance_level_capture_reference(data, dx, dt)
    }
    fn tag_cells(&self, data: &LevelData, threshold: f64) -> IntVectSet {
        self.0.tag_cells(data, threshold)
    }
}

struct ReferenceAdvect(AdvectDiffuseSolver);

impl LevelSolver for ReferenceAdvect {
    fn ncomp(&self) -> usize {
        self.0.ncomp()
    }
    fn nghost(&self) -> i64 {
        self.0.nghost()
    }
    fn max_wave_speed(&self, data: &LevelData) -> f64 {
        self.0.max_wave_speed(data)
    }
    fn max_dt(&self, dx: f64) -> f64 {
        self.0.max_dt(dx)
    }
    fn advance_level(&self, data: &mut LevelData, dx: f64, dt: f64) {
        self.0.advance_level_reference(data, dx, dt);
    }
    fn advance_level_capture(&self, data: &mut LevelData, dx: f64, dt: f64) -> Option<LevelFluxes> {
        self.0.advance_level_capture_reference(data, dx, dt)
    }
    fn tag_cells(&self, data: &LevelData, threshold: f64) -> IntVectSet {
        self.0.tag_cells(data, threshold)
    }
}

fn assert_hierarchies_bits_eq<A: LevelSolver, B: LevelSolver>(
    a: &AmrSimulation<A>,
    b: &AmrSimulation<B>,
    what: &str,
) {
    assert_eq!(
        a.hierarchy.num_levels(),
        b.hierarchy.num_levels(),
        "{what}: level count mismatch"
    );
    for l in 0..a.hierarchy.num_levels() {
        let (la, lb) = (a.hierarchy.level(l), b.hierarchy.level(l));
        assert_eq!(la.len(), lb.len(), "{what}: level {l} grid count");
        for g in 0..la.len() {
            assert_fab_bits_eq(la.fab(g), lb.fab(g), &format!("{what}: level {l} grid {g}"));
        }
    }
}

/// Multi-level AMR golden test: a refluxing Euler run driven by the sweep
/// kernels + parallel capture lands on exactly the same bits as one driven
/// by the retained serial references — refluxed coarse cells included.
#[test]
fn amr_refluxed_euler_run_is_bit_identical_to_reference() {
    // Density jump => the RHO-gradient tagger refines around the plane.
    let problem = GasProblem::SodX { x_jump: 8.0 };
    let hier = HierarchyConfig {
        max_levels: 2,
        base_max_box: 8,
        nranks: 2,
        ..Default::default()
    };
    let config = DriverConfig {
        regrid_interval: 0, // fixed grids: isolate the solve + reflux paths
        subcycle: false,
        reflux: true,
        base_dx: 1.0 / 16.0,
        ..Default::default()
    };
    fn init<S: LevelSolver>(sim: &mut AmrSimulation<S>, problem: &GasProblem) {
        problem.init_hierarchy(&mut sim.hierarchy, GAMMA);
        sim.regrid_now();
        problem.init_hierarchy(&mut sim.hierarchy, GAMMA);
        sim.hierarchy.average_down();
    }

    let domain = ProblemDomain::periodic(IBox::cube(16));
    let mut sweep = AmrSimulation::new(domain, hier.clone(), EulerSolver::default(), config);
    let mut reference =
        AmrSimulation::new(domain, hier, ReferenceEuler(EulerSolver::default()), config);
    init(&mut sweep, &problem);
    init(&mut reference, &problem);
    assert!(sweep.hierarchy.num_levels() > 1, "blast must refine");

    for step in 0..3 {
        let s = sweep.advance();
        let r = reference.advance();
        assert_eq!(s.dt.to_bits(), r.dt.to_bits(), "dt diverged at step {step}");
        assert_hierarchies_bits_eq(&sweep, &reference, &format!("after step {step}"));
    }
}

/// Same golden run for the advect solver (subcycled, refluxed): the
/// parallel capture path changes nothing about the refluxed composite.
#[test]
fn amr_refluxed_advect_run_is_bit_identical_to_reference() {
    let problem = ScalarProblem::Gaussian {
        center: [8.0; 3],
        sigma: 2.0,
    };
    let hier = HierarchyConfig {
        max_levels: 2,
        base_max_box: 8,
        nranks: 2,
        ..Default::default()
    };
    let config = DriverConfig {
        regrid_interval: 0,
        subcycle: false,
        reflux: true,
        tag_threshold: 0.02,
        ..Default::default()
    };
    let mk_solver = || AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.5, 0.0]), 0.0, 16);
    fn init<S: LevelSolver>(sim: &mut AmrSimulation<S>, problem: &ScalarProblem) {
        problem.init_hierarchy(&mut sim.hierarchy);
        sim.regrid_now();
        problem.init_hierarchy(&mut sim.hierarchy);
        sim.hierarchy.average_down();
    }

    let domain = ProblemDomain::periodic(IBox::cube(16));
    let mut sweep = AmrSimulation::new(domain, hier.clone(), mk_solver(), config);
    let mut reference = AmrSimulation::new(domain, hier, ReferenceAdvect(mk_solver()), config);
    init(&mut sweep, &problem);
    init(&mut reference, &problem);
    assert!(sweep.hierarchy.num_levels() > 1, "gaussian must refine");

    for step in 0..4 {
        sweep.advance();
        reference.advance();
        assert_hierarchies_bits_eq(&sweep, &reference, &format!("after step {step}"));
    }
}
