//! Exact Riemann solver for the 1-D Euler equations (Toro §4): the
//! reference solution used to validate the HLLC-based Godunov scheme.
//!
//! Given left/right states, iterates on the star-region pressure with
//! Newton–Raphson and samples the self-similar solution `W(x/t)` — the
//! standard verification oracle for compressible-flow codes (the Sod test
//! in `tests/`).

use crate::euler::Primitive;

/// A 1-D primitive state (ρ, u, p) for the exact solver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct State1d {
    /// Density.
    pub rho: f64,
    /// Normal velocity.
    pub u: f64,
    /// Pressure.
    pub p: f64,
}

impl State1d {
    /// Sound speed.
    pub fn sound_speed(&self, gamma: f64) -> f64 {
        (gamma * self.p / self.rho).sqrt()
    }

    /// Lift into the 3-D primitive type (transverse velocities zero).
    pub fn to_primitive(self) -> Primitive {
        Primitive {
            rho: self.rho,
            vel: [self.u, 0.0, 0.0],
            p: self.p,
        }
    }
}

/// The exact solution of a Riemann problem.
#[derive(Clone, Copy, Debug)]
pub struct ExactRiemann {
    left: State1d,
    right: State1d,
    gamma: f64,
    /// Star-region pressure.
    pub p_star: f64,
    /// Star-region (contact) velocity.
    pub u_star: f64,
}

impl ExactRiemann {
    /// Solve the Riemann problem `(left, right)` for ratio of specific
    /// heats `gamma`. Panics on vacuum-generating data.
    pub fn solve(left: State1d, right: State1d, gamma: f64) -> Self {
        let cl = left.sound_speed(gamma);
        let cr = right.sound_speed(gamma);
        // Vacuum check (Toro Eq. 4.82).
        assert!(
            2.0 * (cl + cr) / (gamma - 1.0) > right.u - left.u,
            "vacuum-generating Riemann data"
        );

        // f(p, W): velocity jump across the wave connecting to state W.
        let f = |p: f64, w: &State1d, c: f64| -> f64 {
            if p > w.p {
                // shock (Rankine–Hugoniot)
                let a = 2.0 / ((gamma + 1.0) * w.rho);
                let b = (gamma - 1.0) / (gamma + 1.0) * w.p;
                (p - w.p) * (a / (p + b)).sqrt()
            } else {
                // rarefaction (isentropic)
                2.0 * c / (gamma - 1.0) * ((p / w.p).powf((gamma - 1.0) / (2.0 * gamma)) - 1.0)
            }
        };
        let fprime = |p: f64, w: &State1d, c: f64| -> f64 {
            if p > w.p {
                let a = 2.0 / ((gamma + 1.0) * w.rho);
                let b = (gamma - 1.0) / (gamma + 1.0) * w.p;
                (a / (p + b)).sqrt() * (1.0 - (p - w.p) / (2.0 * (p + b)))
            } else {
                (p / w.p).powf(-(gamma + 1.0) / (2.0 * gamma)) / (w.rho * c)
            }
        };

        // Initial guess: two-rarefaction approximation, floored.
        let du = right.u - left.u;
        let p_pv = 0.5 * (left.p + right.p) - 0.125 * du * (left.rho + right.rho) * (cl + cr);
        let mut p = p_pv.max(1e-8 * (left.p.min(right.p)));
        for _ in 0..60 {
            let g = f(p, &left, cl) + f(p, &right, cr) + du;
            let gp = fprime(p, &left, cl) + fprime(p, &right, cr);
            let p_new = (p - g / gp).max(1e-12);
            if (p_new - p).abs() / (0.5 * (p_new + p)) < 1e-12 {
                p = p_new;
                break;
            }
            p = p_new;
        }
        let u_star = 0.5 * (left.u + right.u) + 0.5 * (f(p, &right, cr) - f(p, &left, cl));
        ExactRiemann {
            left,
            right,
            gamma,
            p_star: p,
            u_star,
        }
    }

    /// Sample the solution at similarity coordinate `xi = x / t`.
    pub fn sample(&self, xi: f64) -> State1d {
        let g = self.gamma;
        let (w, c, sign) = if xi <= self.u_star {
            (self.left, self.left.sound_speed(g), 1.0)
        } else {
            (self.right, self.right.sound_speed(g), -1.0)
        };
        // Work in a frame where the wave of interest moves right for the
        // left side (sign = +1) and mirror for the right side.
        let u = sign * w.u;
        let xi_s = sign * xi;
        let u_star = sign * self.u_star;

        if self.p_star > w.p {
            // shock on this side
            let ms = c * ((g + 1.0) / (2.0 * g) * self.p_star / w.p + (g - 1.0) / (2.0 * g)).sqrt();
            let s = u - ms; // shock speed (in mirrored frame, moving left of state)
            if xi_s <= s {
                return mirror(w, sign);
            }
            let rho_star = w.rho
                * ((self.p_star / w.p + (g - 1.0) / (g + 1.0))
                    / ((g - 1.0) / (g + 1.0) * self.p_star / w.p + 1.0));
            mirror(
                State1d {
                    rho: rho_star,
                    u: u_star,
                    p: self.p_star,
                },
                sign,
            )
        } else {
            // rarefaction on this side
            let c_star = c * (self.p_star / w.p).powf((g - 1.0) / (2.0 * g));
            let head = u - c;
            let tail = u_star - c_star;
            if xi_s <= head {
                mirror(w, sign)
            } else if xi_s >= tail {
                let rho_star = w.rho * (self.p_star / w.p).powf(1.0 / g);
                mirror(
                    State1d {
                        rho: rho_star,
                        u: u_star,
                        p: self.p_star,
                    },
                    sign,
                )
            } else {
                // inside the fan (Toro Eqs. 4.56)
                let u_fan = 2.0 / (g + 1.0) * (c + (g - 1.0) / 2.0 * u + xi_s);
                let c_fan = c - (g - 1.0) / 2.0 * (u_fan - u);
                let rho = w.rho * (c_fan / c).powf(2.0 / (g - 1.0));
                let p = w.p * (c_fan / c).powf(2.0 * g / (g - 1.0));
                mirror(State1d { rho, u: u_fan, p }, sign)
            }
        }
    }
}

fn mirror(s: State1d, sign: f64) -> State1d {
    State1d {
        rho: s.rho,
        u: sign * s.u,
        p: s.p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GAMMA: f64 = 1.4;

    fn sod() -> (State1d, State1d) {
        (
            State1d {
                rho: 1.0,
                u: 0.0,
                p: 1.0,
            },
            State1d {
                rho: 0.125,
                u: 0.0,
                p: 0.1,
            },
        )
    }

    #[test]
    fn sod_star_state_matches_toro() {
        // Toro Table 4.2, Test 1: p* = 0.30313, u* = 0.92745.
        let (l, r) = sod();
        let ex = ExactRiemann::solve(l, r, GAMMA);
        assert!((ex.p_star - 0.30313).abs() < 1e-4, "p* = {}", ex.p_star);
        assert!((ex.u_star - 0.92745).abs() < 1e-4, "u* = {}", ex.u_star);
    }

    #[test]
    fn sod_wave_structure() {
        let (l, r) = sod();
        let ex = ExactRiemann::solve(l, r, GAMMA);
        // far left: undisturbed left state
        let s = ex.sample(-2.0);
        assert!((s.rho - 1.0).abs() < 1e-12);
        // far right: undisturbed right state
        let s = ex.sample(2.0);
        assert!((s.rho - 0.125).abs() < 1e-12);
        // contact: velocity and pressure continuous, density jumps
        let eps = 1e-6;
        let sl = ex.sample(ex.u_star - eps);
        let sr = ex.sample(ex.u_star + eps);
        assert!((sl.p - sr.p).abs() < 1e-6);
        assert!((sl.u - sr.u).abs() < 1e-6);
        assert!(sl.rho > sr.rho, "contact density jump missing");
    }

    #[test]
    fn symmetric_colliding_flows_produce_double_shock() {
        // Toro Test 3-like: equal states colliding → p* > p on both sides.
        let l = State1d {
            rho: 1.0,
            u: 1.0,
            p: 1.0,
        };
        let r = State1d {
            rho: 1.0,
            u: -1.0,
            p: 1.0,
        };
        let ex = ExactRiemann::solve(l, r, GAMMA);
        assert!(ex.p_star > 1.0);
        assert!(ex.u_star.abs() < 1e-12, "symmetry: u* = {}", ex.u_star);
        // symmetric sampling
        let a = ex.sample(-0.5);
        let b = ex.sample(0.5);
        assert!((a.rho - b.rho).abs() < 1e-9);
        assert!((a.u + b.u).abs() < 1e-9);
    }

    #[test]
    fn receding_flows_produce_double_rarefaction() {
        let l = State1d {
            rho: 1.0,
            u: -0.5,
            p: 1.0,
        };
        let r = State1d {
            rho: 1.0,
            u: 0.5,
            p: 1.0,
        };
        let ex = ExactRiemann::solve(l, r, GAMMA);
        assert!(ex.p_star < 1.0);
    }

    #[test]
    #[should_panic]
    fn vacuum_data_panics() {
        let l = State1d {
            rho: 1.0,
            u: -100.0,
            p: 1.0,
        };
        let r = State1d {
            rho: 1.0,
            u: 100.0,
            p: 1.0,
        };
        ExactRiemann::solve(l, r, GAMMA);
    }

    #[test]
    fn uniform_state_is_trivial() {
        let w = State1d {
            rho: 1.0,
            u: 0.3,
            p: 2.0,
        };
        let ex = ExactRiemann::solve(w, w, GAMMA);
        assert!((ex.p_star - 2.0).abs() < 1e-9);
        assert!((ex.u_star - 0.3).abs() < 1e-9);
        for xi in [-1.0, 0.0, 0.3, 1.0] {
            let s = ex.sample(xi);
            assert!((s.rho - 1.0).abs() < 1e-9);
            assert!((s.p - 2.0).abs() < 1e-9);
        }
    }
}
