//! Initial conditions for the paper's two workloads.

use crate::euler::{Conserved, EulerSolver, Primitive};
use xlayer_amr::hierarchy::AmrHierarchy;
use xlayer_amr::intvect::IntVect;
use xlayer_amr::level_data::LevelData;

/// Gas-dynamics initial conditions (Polytropic Gas).
#[derive(Clone, Copy, Debug)]
pub enum GasProblem {
    /// A spherical over-pressured region at `center` (cell coordinates) of
    /// radius `radius` — the classic 3-D blast wave.
    Blast {
        /// Center in cell coordinates.
        center: [f64; 3],
        /// Radius in cells.
        radius: f64,
        /// Pressure inside / outside.
        p_in: f64,
        /// Ambient pressure.
        p_out: f64,
    },
    /// A planar Sod shock tube along x: left state for `x < x_jump`.
    SodX {
        /// Jump plane (cell coordinate).
        x_jump: f64,
    },
    /// A smooth density sinusoid advected at constant velocity — for
    /// convergence/steady tests.
    DensityWave {
        /// Domain cells along x (wavelength).
        nx: i64,
        /// Advection velocity.
        velocity: [f64; 3],
    },
}

impl GasProblem {
    /// The primitive state at cell `iv`.
    pub fn primitive_at(&self, iv: IntVect) -> Primitive {
        match *self {
            GasProblem::Blast {
                center,
                radius,
                p_in,
                p_out,
            } => {
                let dx = iv[0] as f64 + 0.5 - center[0];
                let dy = iv[1] as f64 + 0.5 - center[1];
                let dz = iv[2] as f64 + 0.5 - center[2];
                let r = (dx * dx + dy * dy + dz * dz).sqrt();
                Primitive {
                    rho: 1.0,
                    vel: [0.0; 3],
                    p: if r <= radius { p_in } else { p_out },
                }
            }
            GasProblem::SodX { x_jump } => {
                if (iv[0] as f64 + 0.5) < x_jump {
                    Primitive {
                        rho: 1.0,
                        vel: [0.0; 3],
                        p: 1.0,
                    }
                } else {
                    Primitive {
                        rho: 0.125,
                        vel: [0.0; 3],
                        p: 0.1,
                    }
                }
            }
            GasProblem::DensityWave { nx, velocity } => {
                let x = (iv[0] as f64 + 0.5) / nx as f64;
                Primitive {
                    rho: 1.0 + 0.2 * (2.0 * std::f64::consts::PI * x).sin(),
                    vel: velocity,
                    p: 1.0,
                }
            }
        }
    }

    /// The conserved state at cell `iv`.
    pub fn conserved_at(&self, iv: IntVect, gamma: f64) -> Conserved {
        self.primitive_at(iv).to_conserved(gamma)
    }

    /// Initialize every level of a hierarchy (5-component data expected).
    pub fn init_hierarchy(&self, h: &mut AmrHierarchy, gamma: f64) {
        for l in 0..h.num_levels() {
            let scale = h.ref_ratio().pow(l as u32) as f64;
            self.init_level(h.level_mut(l), gamma, scale);
        }
    }

    /// Initialize one level whose cells are `1/scale` the size of base cells
    /// (cell coordinates divided by `scale` map to base coordinates).
    pub fn init_level(&self, ld: &mut LevelData, gamma: f64, scale: f64) {
        ld.for_each_mut(|vb, fab| {
            for iv in vb.cells() {
                // Map fine cell to base-coordinate sample point.
                let base_iv = IntVect::new(
                    ((iv[0] as f64 + 0.5) / scale - 0.5).round() as i64,
                    ((iv[1] as f64 + 0.5) / scale - 0.5).round() as i64,
                    ((iv[2] as f64 + 0.5) / scale - 0.5).round() as i64,
                );
                let mut sample = self.conserved_at(base_iv, gamma);
                // For smooth problems sample at the fine position instead.
                // xlint: allow(F) -- scale is a literal refinement ratio compared to unrefined 1.0
                if scale != 1.0 {
                    if let GasProblem::Blast {
                        center,
                        radius,
                        p_in,
                        p_out,
                    } = *self
                    {
                        let x = (iv[0] as f64 + 0.5) / scale - center[0];
                        let y = (iv[1] as f64 + 0.5) / scale - center[1];
                        let z = (iv[2] as f64 + 0.5) / scale - center[2];
                        let r = (x * x + y * y + z * z).sqrt();
                        sample = Primitive {
                            rho: 1.0,
                            vel: [0.0; 3],
                            p: if r <= radius { p_in } else { p_out },
                        }
                        .to_conserved(gamma);
                    }
                }
                EulerSolver::set_state(fab, iv, sample);
            }
        });
    }
}

/// Scalar initial conditions (Advection–Diffusion).
#[derive(Clone, Copy, Debug)]
pub enum ScalarProblem {
    /// A Gaussian blob centered at `center` with width `sigma` (cells).
    Gaussian {
        /// Center in cell coordinates.
        center: [f64; 3],
        /// Standard deviation in cells.
        sigma: f64,
    },
    /// A solid sphere of value 1.
    Ball {
        /// Center in cell coordinates.
        center: [f64; 3],
        /// Radius in cells.
        radius: f64,
    },
}

impl ScalarProblem {
    /// The scalar value at cell `iv` in base coordinates scaled by `scale`.
    pub fn value_at(&self, iv: IntVect, scale: f64) -> f64 {
        let p = [
            (iv[0] as f64 + 0.5) / scale,
            (iv[1] as f64 + 0.5) / scale,
            (iv[2] as f64 + 0.5) / scale,
        ];
        match *self {
            ScalarProblem::Gaussian { center, sigma } => {
                let r2 = (0..3).map(|d| (p[d] - center[d]).powi(2)).sum::<f64>();
                (-r2 / (2.0 * sigma * sigma)).exp()
            }
            ScalarProblem::Ball { center, radius } => {
                let r2 = (0..3).map(|d| (p[d] - center[d]).powi(2)).sum::<f64>();
                if r2.sqrt() <= radius {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Initialize every level of a 1-component hierarchy.
    pub fn init_hierarchy(&self, h: &mut AmrHierarchy) {
        for l in 0..h.num_levels() {
            let scale = h.ref_ratio().pow(l as u32) as f64;
            let ld = h.level_mut(l);
            ld.for_each_mut(|vb, fab| {
                for iv in vb.cells() {
                    fab.set(iv, 0, self.value_at(iv, scale));
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blast_has_pressure_jump() {
        let p = GasProblem::Blast {
            center: [8.0, 8.0, 8.0],
            radius: 2.0,
            p_in: 10.0,
            p_out: 0.1,
        };
        assert_eq!(p.primitive_at(IntVect::new(8, 8, 8)).p, 10.0);
        assert_eq!(p.primitive_at(IntVect::new(0, 0, 0)).p, 0.1);
    }

    #[test]
    fn sod_left_right_states() {
        let p = GasProblem::SodX { x_jump: 8.0 };
        let l = p.primitive_at(IntVect::new(0, 0, 0));
        let r = p.primitive_at(IntVect::new(15, 0, 0));
        assert_eq!(l.rho, 1.0);
        assert_eq!(r.rho, 0.125);
    }

    #[test]
    fn gaussian_peaks_at_center() {
        let p = ScalarProblem::Gaussian {
            center: [8.5, 8.5, 8.5],
            sigma: 2.0,
        };
        let at_center = p.value_at(IntVect::new(8, 8, 8), 1.0);
        let off = p.value_at(IntVect::new(0, 0, 0), 1.0);
        assert!(at_center > 0.99);
        assert!(off < at_center);
    }

    #[test]
    fn ball_indicator() {
        let p = ScalarProblem::Ball {
            center: [4.0, 4.0, 4.0],
            radius: 1.5,
        };
        assert_eq!(p.value_at(IntVect::new(3, 3, 3), 1.0), 1.0);
        assert_eq!(p.value_at(IntVect::new(0, 0, 0), 1.0), 0.0);
    }

    #[test]
    fn fine_level_sampling_respects_scale() {
        // A fine cell at (17, 17, 17) with scale 2 maps near base (8.5,...)
        let p = ScalarProblem::Gaussian {
            center: [8.75, 8.75, 8.75],
            sigma: 2.0,
        };
        let fine = p.value_at(IntVect::new(17, 17, 17), 2.0);
        assert!(fine > 0.99, "fine sample {fine}");
    }
}
