//! The AMR time-stepping driver: couples a [`LevelSolver`] to an
//! [`AmrHierarchy`], producing exactly the per-step observables the
//! adaptation runtime monitors (step wall time, data volume, memory).
//!
//! Two time-stepping modes are provided: lock-step (every level advances
//! with the global, finest-limited dt) and Berger–Oliger subcycling
//! (Chombo's mode: level `l` takes `r^l` sub-steps of `dt/r^l`, so fine
//! levels do proportionally more work — the paper's compute/data dynamics).

use crate::level_solver::LevelSolver;
use xlayer_amr::hierarchy::{AmrHierarchy, HierarchyConfig};
use xlayer_amr::memory::MemoryProfile;
use xlayer_amr::tagging::IntVectSet;
use xlayer_amr::ProblemDomain;

/// Observables produced by one simulation step — the Monitor's raw input.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepStats {
    /// Step index (1-based after the first call).
    pub step: u64,
    /// Simulated time after the step.
    pub time: f64,
    /// Time step taken.
    pub dt: f64,
    /// Total composite-grid cells advanced.
    pub cells_advanced: u64,
    /// Bytes moved between ranks by ghost exchanges.
    pub exchange_bytes: u64,
    /// Total grid-data bytes after the step (the simulation output size
    /// `S_data` of the paper's Table 1 before any reduction).
    pub data_bytes: u64,
    /// Whether a regrid happened this step.
    pub regridded: bool,
    /// Number of levels after the step.
    pub levels: usize,
}

/// Configuration of the AMR run loop.
#[derive(Clone, Copy, Debug)]
pub struct DriverConfig {
    /// CFL number for the advective limit.
    pub cfl: f64,
    /// Regrid every this many steps (0 disables regridding).
    pub regrid_interval: u64,
    /// Tag threshold passed to the solver's tagger.
    pub tag_threshold: f64,
    /// Base-level grid spacing.
    pub base_dx: f64,
    /// Berger–Oliger subcycling: level `l` takes `ref_ratio` sub-steps of
    /// `dt / ref_ratio^l` per coarse step. When false, every level advances
    /// with the global (finest-limited) time step.
    pub subcycle: bool,
    /// Conservative refluxing at coarse–fine boundaries (lock-step mode
    /// only): coarse cells bordering a fine level are corrected with the
    /// averaged fine fluxes, making the composite update exactly
    /// conservative.
    pub reflux: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            cfl: 0.4,
            regrid_interval: 4,
            tag_threshold: 0.05,
            base_dx: 1.0,
            subcycle: false,
            reflux: false,
        }
    }
}

/// An AMR simulation: hierarchy + solver + run loop.
pub struct AmrSimulation<S: LevelSolver> {
    /// The grid hierarchy and its data.
    pub hierarchy: AmrHierarchy,
    solver: S,
    config: DriverConfig,
    step: u64,
    time: f64,
}

impl<S: LevelSolver> AmrSimulation<S> {
    /// Build a simulation; the hierarchy config's `ncomp`/`nghost` are forced
    /// to the solver's requirements.
    pub fn new(
        base_domain: ProblemDomain,
        mut hier_config: HierarchyConfig,
        solver: S,
        config: DriverConfig,
    ) -> Self {
        hier_config.ncomp = solver.ncomp();
        hier_config.nghost = solver.nghost();
        let hierarchy = AmrHierarchy::new(base_domain, hier_config);
        AmrSimulation {
            hierarchy,
            solver,
            config,
            step: 0,
            time: 0.0,
        }
    }

    /// Resume a simulation from restored state (checkpoint restart): the
    /// hierarchy as read back (e.g. from a plotfile), plus the step count
    /// and simulated time at which the checkpoint was taken.
    pub fn restore(
        hierarchy: AmrHierarchy,
        solver: S,
        config: DriverConfig,
        step: u64,
        time: f64,
    ) -> Self {
        assert_eq!(hierarchy.config().ncomp, solver.ncomp());
        AmrSimulation {
            hierarchy,
            solver,
            config,
            step,
            time,
        }
    }

    /// The solver.
    pub fn solver(&self) -> &S {
        &self.solver
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Tag-and-regrid immediately (also used to build the initial fine
    /// levels after setting initial conditions on the base level).
    pub fn regrid_now(&mut self) {
        let mut tags: Vec<IntVectSet> = Vec::new();
        self.hierarchy.fill_ghosts();
        for l in 0..self.hierarchy.num_levels() {
            tags.push(
                self.solver
                    .tag_cells(self.hierarchy.level(l), self.config.tag_threshold),
            );
        }
        self.hierarchy.regrid(&tags);
    }

    /// The stable *coarse-level* time step for subcycled stepping: each
    /// level `l` then takes sub-steps of `dt0 / r^l`, so the binding
    /// constraint is `min_l (cfl · dx_l / s_l) · r^l`.
    pub fn compute_dt_subcycled(&self) -> f64 {
        let r = self.hierarchy.ref_ratio();
        let mut dt = f64::INFINITY;
        for l in 0..self.hierarchy.num_levels() {
            let dx = self.config.base_dx / r.pow(l as u32) as f64;
            let s = self.solver.max_wave_speed(self.hierarchy.level(l));
            let scale = r.pow(l as u32) as f64;
            if s > 0.0 {
                dt = dt.min(self.config.cfl * dx / s * scale);
            }
            dt = dt.min(self.solver.max_dt(dx) * scale);
        }
        if dt.is_finite() {
            dt
        } else {
            self.config.base_dx * self.config.cfl
        }
    }

    /// Advance level `l` by `dt`, recursing into `r` sub-steps of the next
    /// finer level, then averaging it back down (Berger–Oliger).
    /// With refluxing enabled, time-weighted flux defects are accumulated
    /// per level pair (`D = Σ dt_f ⟨F_f⟩ − dt_c F_c`) and applied with
    /// scale `1/dx_c` after the fine sub-steps.
    /// Returns (cells advanced incl. sub-steps, cross-rank bytes moved).
    fn advance_level_recursive(
        &mut self,
        l: usize,
        dt: f64,
        parent_reg: Option<&mut xlayer_amr::FluxRegister>,
    ) -> (u64, u64) {
        let r = self.hierarchy.ref_ratio();
        let nlev = self.hierarchy.num_levels();
        let dx = self.config.base_dx / r.pow(l as u32) as f64;
        let mut moved = self.hierarchy.fill_level_ghosts(l);

        let need_fluxes = self.config.reflux && (parent_reg.is_some() || l + 1 < nlev);
        let fluxes = if need_fluxes {
            self.solver
                .advance_level_capture(self.hierarchy.level_mut(l), dx, dt)
        } else {
            self.solver
                .advance_level(self.hierarchy.level_mut(l), dx, dt);
            None
        };
        if let (Some(reg), Some(fluxes)) = (parent_reg, fluxes.as_ref()) {
            for grid_fluxes in fluxes {
                for (d, flux) in grid_fluxes.iter().enumerate() {
                    reg.increment_fine_scaled(flux, d, dt);
                }
            }
        }
        let mut cells = self.hierarchy.level(l).layout().total_cells();
        if l + 1 < nlev {
            let mut reg = if self.config.reflux {
                let mut reg = xlayer_amr::FluxRegister::new(
                    self.hierarchy.level(l + 1).layout(),
                    r,
                    self.solver.ncomp(),
                );
                if let Some(fluxes) = fluxes.as_ref() {
                    for grid_fluxes in fluxes {
                        for (d, flux) in grid_fluxes.iter().enumerate() {
                            reg.increment_coarse_scaled(flux, d, dt);
                        }
                    }
                }
                Some(reg)
            } else {
                None
            };
            for _ in 0..r {
                let (c, m) = self.advance_level_recursive(l + 1, dt / r as f64, reg.as_mut());
                cells += c;
                moved += m;
            }
            self.hierarchy.average_down_level(l);
            if let Some(reg) = reg {
                reg.reflux(self.hierarchy.level_mut(l), 1.0 / dx);
            }
        }
        (cells, moved)
    }

    /// The stable time step at the current state.
    pub fn compute_dt(&self) -> f64 {
        let r = self.hierarchy.ref_ratio();
        let mut dt = f64::INFINITY;
        for l in 0..self.hierarchy.num_levels() {
            let dx = self.config.base_dx / r.pow(l as u32) as f64;
            let s = self.solver.max_wave_speed(self.hierarchy.level(l));
            if s > 0.0 {
                dt = dt.min(self.config.cfl * dx / s);
            }
            dt = dt.min(self.solver.max_dt(dx));
        }
        if dt.is_finite() {
            dt
        } else {
            self.config.base_dx * self.config.cfl
        }
    }

    /// Advance one step: fill ghosts, advance every level (subcycled or
    /// lock-step), average down, regrid on schedule. Returns the step's
    /// observables.
    pub fn advance(&mut self) -> StepStats {
        let r = self.hierarchy.ref_ratio();
        let (dt, mut cells, mut exchange_bytes);
        if self.config.subcycle {
            dt = self.compute_dt_subcycled();
            let (c, m) = self.advance_level_recursive(0, dt, None);
            cells = c;
            exchange_bytes = m;
        } else if self.config.reflux && self.hierarchy.num_levels() > 1 {
            dt = self.compute_dt();
            exchange_bytes = self.hierarchy.fill_ghosts();
            cells = 0;
            // Advance every level capturing its face fluxes, accumulate the
            // coarse-fine flux defects, then correct the coarse cells.
            let nlev = self.hierarchy.num_levels();
            let mut registers: Vec<xlayer_amr::FluxRegister> = (0..nlev - 1)
                .map(|l| {
                    xlayer_amr::FluxRegister::new(
                        self.hierarchy.level(l + 1).layout(),
                        r,
                        self.solver.ncomp(),
                    )
                })
                .collect();
            for l in 0..nlev {
                let dx = self.config.base_dx / r.pow(l as u32) as f64;
                cells += self.hierarchy.level(l).layout().total_cells();
                let fluxes = self
                    .solver
                    .advance_level_capture(self.hierarchy.level_mut(l), dx, dt);
                if let Some(fluxes) = fluxes {
                    for grid_fluxes in &fluxes {
                        for (d, flux) in grid_fluxes.iter().enumerate() {
                            if l < nlev - 1 {
                                registers[l].increment_coarse(flux, d);
                            }
                            if l > 0 {
                                registers[l - 1].increment_fine(flux, d);
                            }
                        }
                    }
                }
            }
            self.hierarchy.average_down();
            for l in (0..nlev - 1).rev() {
                let dx = self.config.base_dx / r.pow(l as u32) as f64;
                registers[l].reflux(self.hierarchy.level_mut(l), dt / dx);
            }
        } else {
            dt = self.compute_dt();
            exchange_bytes = self.hierarchy.fill_ghosts();
            cells = 0;
            for l in 0..self.hierarchy.num_levels() {
                let dx = self.config.base_dx / r.pow(l as u32) as f64;
                cells += self.hierarchy.level(l).layout().total_cells();
                self.solver
                    .advance_level(self.hierarchy.level_mut(l), dx, dt);
            }
            self.hierarchy.average_down();
        }
        self.step += 1;
        self.time += dt;

        let mut regridded = false;
        if self.config.regrid_interval > 0 && self.step.is_multiple_of(self.config.regrid_interval)
        {
            exchange_bytes += self.hierarchy.fill_ghosts();
            self.regrid_now();
            regridded = true;
        }

        StepStats {
            step: self.step,
            time: self.time,
            dt,
            cells_advanced: cells,
            exchange_bytes,
            data_bytes: self.hierarchy.total_bytes(),
            regridded,
            levels: self.hierarchy.num_levels(),
        }
    }

    /// Capture the per-rank memory profile (Fig. 1 observable).
    pub fn memory_profile(&self) -> MemoryProfile {
        MemoryProfile::capture(self.step, &self.hierarchy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advect::{AdvectDiffuseSolver, VelocityField};
    use crate::euler::{EulerSolver, RHO};
    use crate::problems::{GasProblem, ScalarProblem};
    use xlayer_amr::boxes::IBox;

    fn advect_sim(n: i64, max_levels: usize) -> AmrSimulation<AdvectDiffuseSolver> {
        let domain = ProblemDomain::periodic(IBox::cube(n));
        let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, n);
        let mut sim = AmrSimulation::new(
            domain,
            HierarchyConfig {
                max_levels,
                base_max_box: 8,
                nranks: 2,
                ..Default::default()
            },
            solver,
            DriverConfig {
                tag_threshold: 0.02,
                ..Default::default()
            },
        );
        ScalarProblem::Gaussian {
            center: [n as f64 / 2.0; 3],
            sigma: 2.0,
        }
        .init_hierarchy(&mut sim.hierarchy);
        sim
    }

    #[test]
    fn single_level_run_progresses() {
        let mut sim = advect_sim(16, 1);
        let s1 = sim.advance();
        assert_eq!(s1.step, 1);
        assert!(s1.dt > 0.0);
        assert!(s1.time > 0.0);
        assert_eq!(s1.levels, 1);
        assert_eq!(s1.cells_advanced, 16 * 16 * 16);
    }

    #[test]
    fn initial_regrid_creates_refinement_around_blob() {
        let mut sim = advect_sim(16, 2);
        sim.regrid_now();
        assert_eq!(sim.hierarchy.num_levels(), 2);
        // Fine level cells sit near the blob center (16±few in fine coords).
        let fine = sim.hierarchy.level(1);
        let bb = fine.layout().bounding_box();
        assert!(bb.contains(xlayer_amr::IntVect::splat(16)));
    }

    #[test]
    fn refined_run_conserves_scalar() {
        let mut sim = advect_sim(16, 2);
        sim.regrid_now();
        // re-init after regrid so fine data is exact, then measure.
        ScalarProblem::Gaussian {
            center: [8.0; 3],
            sigma: 2.0,
        }
        .init_hierarchy(&mut sim.hierarchy);
        sim.hierarchy.average_down();
        let m0 = sim.hierarchy.composite_sum(0);
        for _ in 0..3 {
            sim.advance();
        }
        let m1 = sim.hierarchy.composite_sum(0);
        // Advection across the coarse-fine boundary without refluxing is
        // conservative to O(dt) at the boundary; verify drift is small.
        assert!(
            (m1 - m0).abs() < 0.02 * m0.abs().max(1e-30),
            "composite mass drifted {m0} -> {m1}"
        );
    }

    #[test]
    fn refluxing_makes_composite_advection_exactly_conservative() {
        // A blob advecting across the coarse-fine boundary: without
        // refluxing the composite mass drifts at O(dt) per boundary
        // crossing; with refluxing it is conserved to machine precision.
        let run = |reflux: bool| {
            let domain = ProblemDomain::periodic(IBox::cube(16));
            let solver =
                AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, 16);
            let mut sim = AmrSimulation::new(
                domain,
                HierarchyConfig {
                    max_levels: 2,
                    base_max_box: 8,
                    ..Default::default()
                },
                solver,
                DriverConfig {
                    tag_threshold: 0.02,
                    regrid_interval: 0, // fixed grids isolate the flux error
                    subcycle: false,
                    reflux,
                    ..Default::default()
                },
            );
            ScalarProblem::Gaussian {
                center: [8.0; 3],
                sigma: 2.0,
            }
            .init_hierarchy(&mut sim.hierarchy);
            sim.regrid_now();
            ScalarProblem::Gaussian {
                center: [8.0; 3],
                sigma: 2.0,
            }
            .init_hierarchy(&mut sim.hierarchy);
            sim.hierarchy.average_down();
            let m0 = sim.hierarchy.composite_sum(0);
            for _ in 0..6 {
                sim.advance();
            }
            (sim.hierarchy.composite_sum(0) - m0).abs() / m0.abs().max(1e-300)
        };
        let drift_with = run(true);
        let drift_without = run(false);
        assert!(
            drift_with < 1e-12,
            "refluxed composite mass drifted by {drift_with:e}"
        );
        assert!(
            drift_with < drift_without / 100.0,
            "refluxing gained too little: {drift_with:e} vs {drift_without:e}"
        );
    }

    #[test]
    fn refluxing_conserves_euler_invariants() {
        // Mass and energy of the refined blast stay conserved while the
        // wave crosses the coarse-fine boundary (periodic domain).
        use crate::euler::{ENERGY, RHO};
        let domain = ProblemDomain::periodic(IBox::cube(16));
        let mut sim = AmrSimulation::new(
            domain,
            HierarchyConfig {
                max_levels: 2,
                base_max_box: 8,
                ..Default::default()
            },
            EulerSolver::default(),
            DriverConfig {
                cfl: 0.3,
                regrid_interval: 0,
                tag_threshold: 0.04,
                base_dx: 1.0,
                subcycle: false,
                reflux: true,
            },
        );
        let problem = GasProblem::Blast {
            center: [8.0; 3],
            radius: 3.0,
            p_in: 10.0,
            p_out: 0.1,
        };
        problem.init_hierarchy(&mut sim.hierarchy, 1.4);
        sim.regrid_now();
        problem.init_hierarchy(&mut sim.hierarchy, 1.4);
        sim.hierarchy.average_down();
        let m0 = sim.hierarchy.composite_sum(RHO);
        let e0 = sim.hierarchy.composite_sum(ENERGY);
        for _ in 0..4 {
            sim.advance();
        }
        let m1 = sim.hierarchy.composite_sum(RHO);
        let e1 = sim.hierarchy.composite_sum(ENERGY);
        assert!((m1 - m0).abs() < 1e-10 * m0, "mass drifted {m0} -> {m1}");
        assert!((e1 - e0).abs() < 1e-10 * e0, "energy drifted {e0} -> {e1}");
    }

    #[test]
    fn euler_blast_drives_memory_growth() {
        let domain = ProblemDomain::new(IBox::cube(16));
        let solver = EulerSolver::default();
        let mut sim = AmrSimulation::new(
            domain,
            HierarchyConfig {
                max_levels: 2,
                base_max_box: 8,
                nranks: 4,
                ..Default::default()
            },
            solver,
            DriverConfig {
                cfl: 0.3,
                regrid_interval: 2,
                tag_threshold: 0.05,
                base_dx: 1.0,
                subcycle: false,
                reflux: false,
            },
        );
        GasProblem::Blast {
            center: [8.0; 3],
            radius: 3.0,
            p_in: 10.0,
            p_out: 0.1,
        }
        .init_hierarchy(&mut sim.hierarchy, 1.4);
        sim.regrid_now();
        GasProblem::Blast {
            center: [8.0; 3],
            radius: 3.0,
            p_in: 10.0,
            p_out: 0.1,
        }
        .init_hierarchy(&mut sim.hierarchy, 1.4);

        let mem0 = sim.memory_profile();
        let mut regridded_any = false;
        for _ in 0..4 {
            let s = sim.advance();
            regridded_any |= s.regridded;
            // density stays positive through the blast
            assert!(sim.hierarchy.level(0).min(RHO) > 0.0);
        }
        assert!(regridded_any);
        let mem1 = sim.memory_profile();
        // The expanding shock enlarges the refined region.
        assert!(
            mem1.total() >= mem0.total(),
            "memory shrank: {} -> {}",
            mem0.total(),
            mem1.total()
        );
        assert_eq!(mem1.bytes_per_rank.len(), 4);
    }

    #[test]
    fn subcycled_run_is_stable_and_conservative() {
        let domain = ProblemDomain::periodic(IBox::cube(16));
        let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, 16);
        let mut sim = AmrSimulation::new(
            domain,
            HierarchyConfig {
                max_levels: 2,
                base_max_box: 8,
                ..Default::default()
            },
            solver,
            DriverConfig {
                tag_threshold: 0.02,
                subcycle: true,
                regrid_interval: 0,
                ..Default::default()
            },
        );
        ScalarProblem::Gaussian {
            center: [8.0; 3],
            sigma: 2.0,
        }
        .init_hierarchy(&mut sim.hierarchy);
        sim.regrid_now();
        ScalarProblem::Gaussian {
            center: [8.0; 3],
            sigma: 2.0,
        }
        .init_hierarchy(&mut sim.hierarchy);
        sim.hierarchy.average_down();
        let m0 = sim.hierarchy.composite_sum(0);
        for _ in 0..3 {
            let stats = sim.advance();
            assert!(stats.dt > 0.0);
        }
        let m1 = sim.hierarchy.composite_sum(0);
        assert!(
            (m1 - m0).abs() < 0.03 * m0.abs().max(1e-30),
            "subcycled composite mass drifted {m0} -> {m1}"
        );
        // solution stays bounded
        assert!(sim.hierarchy.level(0).max(0) <= 1.5);
        assert!(sim.hierarchy.level(0).min(0) >= -0.2);
    }

    #[test]
    fn subcycled_refluxing_is_exactly_conservative() {
        // The full Berger–Oliger combination: subcycled time stepping with
        // time-weighted refluxing conserves the composite mass exactly.
        let run = |reflux: bool| {
            let domain = ProblemDomain::periodic(IBox::cube(16));
            let solver =
                AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, 16);
            let mut sim = AmrSimulation::new(
                domain,
                HierarchyConfig {
                    max_levels: 2,
                    base_max_box: 8,
                    ..Default::default()
                },
                solver,
                DriverConfig {
                    tag_threshold: 0.02,
                    regrid_interval: 0,
                    subcycle: true,
                    reflux,
                    ..Default::default()
                },
            );
            ScalarProblem::Gaussian {
                center: [8.0; 3],
                sigma: 2.0,
            }
            .init_hierarchy(&mut sim.hierarchy);
            sim.regrid_now();
            ScalarProblem::Gaussian {
                center: [8.0; 3],
                sigma: 2.0,
            }
            .init_hierarchy(&mut sim.hierarchy);
            sim.hierarchy.average_down();
            let m0 = sim.hierarchy.composite_sum(0);
            for _ in 0..5 {
                sim.advance();
            }
            (sim.hierarchy.composite_sum(0) - m0).abs() / m0.abs().max(1e-300)
        };
        let with = run(true);
        let without = run(false);
        assert!(with < 1e-12, "subcycled refluxed drift {with:e}");
        assert!(
            with < without / 100.0,
            "gain too small: {with:e} vs {without:e}"
        );
    }

    #[test]
    fn subcycling_takes_larger_coarse_steps_and_counts_substeps() {
        let build = |subcycle: bool| {
            let domain = ProblemDomain::periodic(IBox::cube(16));
            let solver =
                AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, 16);
            let mut sim = AmrSimulation::new(
                domain,
                HierarchyConfig {
                    max_levels: 2,
                    base_max_box: 8,
                    ..Default::default()
                },
                solver,
                DriverConfig {
                    tag_threshold: 0.02,
                    subcycle,
                    regrid_interval: 0,
                    ..Default::default()
                },
            );
            ScalarProblem::Gaussian {
                center: [8.0; 3],
                sigma: 2.0,
            }
            .init_hierarchy(&mut sim.hierarchy);
            sim.regrid_now();
            sim
        };
        let mut lock = build(false);
        let mut sub = build(true);
        let a = lock.advance();
        let b = sub.advance();
        // The coarse step is r× the lock-step dt (fine level binds both).
        assert!(
            b.dt > 1.5 * a.dt,
            "subcycled dt {} not larger than lock-step {}",
            b.dt,
            a.dt
        );
        // Subcycled work counts fine sub-steps: coarse + r × fine cells.
        let coarse = sub.hierarchy.level(0).layout().total_cells();
        let fine = sub.hierarchy.level(1).layout().total_cells();
        assert_eq!(b.cells_advanced, coarse + 2 * fine);
    }

    #[test]
    fn step_stats_report_data_bytes() {
        let mut sim = advect_sim(16, 1);
        let s = sim.advance();
        assert_eq!(s.data_bytes, sim.hierarchy.total_bytes());
        assert!(s.data_bytes > 0);
    }
}
