//! Polytropic gas dynamics: an unsplit MUSCL–Hancock Godunov solver for the
//! 3-D Euler equations with an HLLC Riemann solver.
//!
//! This is the Rust analogue of Chombo's `AMRGodunov` Polytropic Gas example
//! — the memory- and compute-intensive workload of the paper's evaluation
//! (§5.2.1, Fig. 1, Fig. 5, Fig. 9).

use crate::level_solver::{LevelFluxes, LevelSolver};
use crate::scratch;
use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;
use xlayer_amr::intvect::{IntVect, DIM};
use xlayer_amr::level_data::LevelData;
use xlayer_amr::tagging::{tag_undivided_gradient, IntVectSet};

/// Number of conserved components: density, 3 momenta, total energy.
pub const NCOMP: usize = 5;
/// Component index of density.
pub const RHO: usize = 0;
/// Component index of x-momentum.
pub const MX: usize = 1;
/// Component index of y-momentum.
pub const MY: usize = 2;
/// Component index of z-momentum.
pub const MZ: usize = 3;
/// Component index of total energy density.
pub const ENERGY: usize = 4;

/// Floor applied to density and pressure to keep states physical.
const SMALL: f64 = 1e-10;

/// Conserved state at one cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Conserved {
    /// Mass density ρ.
    pub rho: f64,
    /// Momentum density (ρu, ρv, ρw).
    pub mom: [f64; 3],
    /// Total energy density E = ρe + ½ρ|u|².
    pub energy: f64,
}

/// Primitive state at one cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Primitive {
    /// Mass density ρ.
    pub rho: f64,
    /// Velocity (u, v, w).
    pub vel: [f64; 3],
    /// Pressure p.
    pub p: f64,
}

impl Conserved {
    /// Convert to primitives for ratio of specific heats `gamma`.
    pub fn to_primitive(self, gamma: f64) -> Primitive {
        let rho = self.rho.max(SMALL);
        let vel = [self.mom[0] / rho, self.mom[1] / rho, self.mom[2] / rho];
        let ke = 0.5 * rho * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
        let p = ((gamma - 1.0) * (self.energy - ke)).max(SMALL);
        Primitive { rho, vel, p }
    }
}

impl Primitive {
    /// Convert to conserved variables.
    pub fn to_conserved(self, gamma: f64) -> Conserved {
        let mom = [
            self.rho * self.vel[0],
            self.rho * self.vel[1],
            self.rho * self.vel[2],
        ];
        let ke = 0.5
            * self.rho
            * (self.vel[0] * self.vel[0] + self.vel[1] * self.vel[1] + self.vel[2] * self.vel[2]);
        Conserved {
            rho: self.rho,
            mom,
            energy: self.p / (gamma - 1.0) + ke,
        }
    }

    /// Sound speed c = √(γp/ρ).
    pub fn sound_speed(self, gamma: f64) -> f64 {
        (gamma * self.p / self.rho.max(SMALL)).sqrt()
    }

    /// Physical flux along direction `d`.
    pub fn flux(self, d: usize, gamma: f64) -> [f64; NCOMP] {
        let un = self.vel[d];
        let cons = self.to_conserved(gamma);
        let mut f = [0.0; NCOMP];
        f[RHO] = cons.rho * un;
        f[MX] = cons.mom[0] * un;
        f[MY] = cons.mom[1] * un;
        f[MZ] = cons.mom[2] * un;
        f[MX + d] += self.p;
        f[ENERGY] = un * (cons.energy + self.p);
        f
    }

    fn as_array(self) -> [f64; NCOMP] {
        [self.rho, self.vel[0], self.vel[1], self.vel[2], self.p]
    }

    fn from_array(a: [f64; NCOMP]) -> Self {
        Primitive {
            rho: a[0].max(SMALL),
            vel: [a[1], a[2], a[3]],
            p: a[4].max(SMALL),
        }
    }
}

fn cons_as_array(c: Conserved) -> [f64; NCOMP] {
    [c.rho, c.mom[0], c.mom[1], c.mom[2], c.energy]
}

/// Read a 5-component state from strided slots of a flat payload. Every
/// writer of these slots — `to_primitive` for the pass-A primitive cache and
/// `predict_faces` for the wlo/whi face fabs — applies the `.max(SMALL)`
/// positivity floors before storing, so no clamping happens on the way out
/// (reloading is bit-identical to never storing).
#[inline(always)]
fn load_prim(s: &[f64], o: usize, st: usize) -> Primitive {
    Primitive {
        rho: s[o],
        vel: [s[o + st], s[o + 2 * st], s[o + 3 * st]],
        p: s[o + 4 * st],
    }
}

/// Write a 5-component state array into strided slots of a flat payload.
#[inline(always)]
fn store5(s: &mut [f64], o: usize, st: usize, v: [f64; NCOMP]) {
    s[o] = v[0];
    s[o + st] = v[1];
    s[o + 2 * st] = v[2];
    s[o + 3 * st] = v[3];
    s[o + 4 * st] = v[4];
}

/// HLLC approximate Riemann solver: the flux through a face with left state
/// `l` and right state `r`, normal direction `d`.
pub fn hllc_flux(l: Primitive, r: Primitive, d: usize, gamma: f64) -> [f64; NCOMP] {
    let cl = l.sound_speed(gamma);
    let cr = r.sound_speed(gamma);
    let ul = l.vel[d];
    let ur = r.vel[d];

    // Davis wave-speed estimates.
    let s_l = (ul - cl).min(ur - cr);
    let s_r = (ul + cl).max(ur + cr);

    if s_l >= 0.0 {
        return l.flux(d, gamma);
    }
    if s_r <= 0.0 {
        return r.flux(d, gamma);
    }

    // Contact wave speed.
    let rho_l = l.rho;
    let rho_r = r.rho;
    let s_star = (r.p - l.p + rho_l * ul * (s_l - ul) - rho_r * ur * (s_r - ur))
        / (rho_l * (s_l - ul) - rho_r * (s_r - ur));

    let star_state = |q: Primitive, s: f64| -> [f64; NCOMP] {
        let cons = q.to_conserved(gamma);
        let un = q.vel[d];
        let factor = q.rho * (s - un) / (s - s_star);
        let mut u_star = [0.0; NCOMP];
        u_star[RHO] = factor;
        let mut vel = q.vel;
        vel[d] = s_star;
        u_star[MX] = factor * vel[0];
        u_star[MY] = factor * vel[1];
        u_star[MZ] = factor * vel[2];
        u_star[ENERGY] =
            factor * (cons.energy / q.rho + (s_star - un) * (s_star + q.p / (q.rho * (s - un))));
        u_star
    };

    if s_star >= 0.0 {
        let f_l = l.flux(d, gamma);
        let u_l = cons_as_array(l.to_conserved(gamma));
        let u_star = star_state(l, s_l);
        std::array::from_fn(|c| f_l[c] + s_l * (u_star[c] - u_l[c]))
    } else {
        let f_r = r.flux(d, gamma);
        let u_r = cons_as_array(r.to_conserved(gamma));
        let u_star = star_state(r, s_r);
        std::array::from_fn(|c| f_r[c] + s_r * (u_star[c] - u_r[c]))
    }
}

/// minmod slope limiter.
fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// The polytropic-gas level solver.
#[derive(Clone, Copy, Debug)]
pub struct EulerSolver {
    /// Ratio of specific heats (1.4 for a diatomic ideal gas).
    pub gamma: f64,
    /// Component whose undivided gradient drives refinement tagging.
    pub tag_comp: usize,
}

impl Default for EulerSolver {
    fn default() -> Self {
        EulerSolver {
            gamma: 1.4,
            tag_comp: RHO,
        }
    }
}

impl EulerSolver {
    /// Read the conserved state at a cell. One flat offset computation
    /// serves all five components (they sit `comp_stride` apart).
    pub fn state(fab: &Fab, iv: IntVect) -> Conserved {
        let o = fab.cell_offset(iv);
        let s = fab.comp_stride();
        let d = fab.as_slice();
        Conserved {
            rho: d[o + RHO * s],
            mom: [d[o + MX * s], d[o + MY * s], d[o + MZ * s]],
            energy: d[o + ENERGY * s],
        }
    }

    /// Write a conserved state to a cell (flat-offset counterpart of
    /// [`Self::state`]).
    pub fn set_state(fab: &mut Fab, iv: IntVect, c: Conserved) {
        let o = fab.cell_offset(iv);
        let s = fab.comp_stride();
        let d = fab.as_mut_slice();
        d[o + RHO * s] = c.rho;
        d[o + MX * s] = c.mom[0];
        d[o + MY * s] = c.mom[1];
        d[o + MZ * s] = c.mom[2];
        d[o + ENERGY * s] = c.energy;
    }

    /// Limited primitive slope at `iv` along `d` (needs ±1 neighbors).
    fn slopes(&self, fab: &Fab, iv: IntVect, d: usize) -> [f64; NCOMP] {
        let e = IntVect::basis(d);
        let avail = fab.ibox();
        let wc = Self::state(fab, iv).to_primitive(self.gamma).as_array();
        let wp = if avail.contains(iv + e) {
            Self::state(fab, iv + e).to_primitive(self.gamma).as_array()
        } else {
            wc
        };
        let wm = if avail.contains(iv - e) {
            Self::state(fab, iv - e).to_primitive(self.gamma).as_array()
        } else {
            wc
        };
        std::array::from_fn(|c| minmod(wp[c] - wc[c], wc[c] - wm[c]))
    }

    /// MUSCL–Hancock half-step predictor: advance the primitive state at a
    /// cell face by dt/2 using the normal flux gradient.
    fn predict(
        &self,
        w: Primitive,
        slope: &[f64; NCOMP],
        d: usize,
        side: f64, // +0.5 for high face, -0.5 for low face
        dtdx: f64,
    ) -> Primitive {
        // Characteristic-free primitive predictor (Toro §14.4): w_face =
        // w + side*slope - dt/(2dx) * A(w)·slope, with A the primitive-form
        // Jacobian along d.
        let rho = w.rho;
        let un = w.vel[d];
        let c2 = self.gamma * w.p / rho;
        let s = slope;
        // A(w)·slope for primitive Euler along direction d:
        let mut adw = [0.0; NCOMP];
        adw[0] = un * s[0] + rho * s[1 + d];
        for v in 0..3 {
            adw[1 + v] = un * s[1 + v];
        }
        adw[1 + d] += s[4] / rho;
        adw[4] = un * s[4] + rho * c2 * s[1 + d];

        let arr = w.as_array();
        // xlint: floors-applied -- Primitive::from_array clamps rho and p to SMALL
        Primitive::from_array(std::array::from_fn(|c| {
            arr[c] + side * s[c] - 0.5 * dtdx * adw[c]
        }))
    }

    /// Both half-step face predictions of a cell at once: the `A(w)·slope`
    /// product of [`Self::predict`] depends only on `w` and `slope`, so the
    /// sweep evaluates it once and forms the `side = ±0.5` states from it.
    /// Each component is the same expression `predict` evaluates (IEEE
    /// multiplication by −0.5 is the exact negation of multiplication by
    /// 0.5, and `a + (−b)` is `a − b`), and the rho/p components carry the
    /// same `.max(SMALL)` positivity floor `Primitive::from_array` applies,
    /// so the pair is bit-identical to two `predict` calls.
    #[inline(always)]
    fn predict_faces(
        &self,
        w: Primitive,
        slope: &[f64; NCOMP],
        d: usize,
        dtdx: f64,
    ) -> ([f64; NCOMP], [f64; NCOMP]) {
        let rho = w.rho;
        let un = w.vel[d];
        let c2 = self.gamma * w.p / rho;
        let s = slope;
        let mut adw = [0.0; NCOMP];
        adw[0] = un * s[0] + rho * s[1 + d];
        for v in 0..3 {
            adw[1 + v] = un * s[1 + v];
        }
        adw[1 + d] += s[4] / rho;
        adw[4] = un * s[4] + rho * c2 * s[1 + d];
        let arr = w.as_array();
        let mut hi: [f64; NCOMP] =
            std::array::from_fn(|c| arr[c] + 0.5 * s[c] - 0.5 * dtdx * adw[c]);
        let mut lo: [f64; NCOMP] =
            std::array::from_fn(|c| arr[c] - 0.5 * s[c] - 0.5 * dtdx * adw[c]);
        // Positivity floors, matching Primitive::from_array: without these a
        // strong rarefaction can store rho or p ≤ 0 and hllc_flux would take
        // sqrt of a negative sound-speed argument.
        // xlint: floors-applied
        hi[0] = hi[0].max(SMALL);
        hi[4] = hi[4].max(SMALL);
        lo[0] = lo[0].max(SMALL);
        lo[4] = lo[4].max(SMALL);
        (hi, lo)
    }
}

impl LevelSolver for EulerSolver {
    fn ncomp(&self) -> usize {
        NCOMP
    }

    fn nghost(&self) -> i64 {
        2
    }

    fn max_wave_speed(&self, data: &LevelData) -> f64 {
        // Rayon reduction over grids; within a grid, contiguous row walks
        // over the flat payload (one offset per row, five strided reads per
        // cell). `f64::max` is commutative and associative for the non-NaN
        // speeds produced here, so the per-grid split cannot change the
        // result vs the serial reference.
        use rayon::prelude::*;
        let gamma = self.gamma;
        let per_grid: Vec<f64> = (0..data.len())
            .into_par_iter()
            .map(|i| {
                let vb = data.valid_box(i);
                let fab = data.fab(i);
                let st = fab.comp_stride();
                let payload = fab.as_slice();
                let nx = vb.size()[0] as usize;
                let mut s: f64 = 0.0;
                for z in vb.lo()[2]..=vb.hi()[2] {
                    for y in vb.lo()[1]..=vb.hi()[1] {
                        let o0 = fab.cell_offset(IntVect::new(vb.lo()[0], y, z));
                        for o in o0..o0 + nx {
                            let w = Conserved {
                                rho: payload[o],
                                mom: [payload[o + st], payload[o + 2 * st], payload[o + 3 * st]],
                                energy: payload[o + 4 * st],
                            }
                            .to_primitive(gamma);
                            let c = w.sound_speed(gamma);
                            for d in 0..DIM {
                                s = s.max(w.vel[d].abs() + c);
                            }
                        }
                    }
                }
                s
            })
            .collect();
        per_grid.into_iter().fold(0.0, f64::max)
    }

    fn advance_level(&self, data: &mut LevelData, dx: f64, dt: f64) {
        let dtdx = dt / dx;
        let gamma = self.gamma;
        // Grids are independent given their (ghost-filled) old state, so the
        // sweep parallelizes per grid. Each interior face is solved once.
        // The old-state snapshot and flux fabs come from the per-worker
        // scratch pool: after the first grid, a step allocates nothing.
        data.par_for_each_mut(|_, valid, fab| {
            let old = scratch::take_fab_clone(fab);
            let fluxes = self.grid_fluxes(&old, &valid, dtdx, gamma);
            Self::apply_fluxes(&valid, fab, &fluxes, dtdx, gamma);
            scratch::recycle_fab(old);
            for f in fluxes {
                scratch::recycle_fab(f);
            }
        });
    }

    fn advance_level_capture(&self, data: &mut LevelData, dx: f64, dt: f64) -> Option<LevelFluxes> {
        let dtdx = dt / dx;
        let gamma = self.gamma;
        // Same per-grid independence as `advance_level`; the indexed
        // parallel map collects each grid's flux fabs in grid order for the
        // refluxing caller. Flux fabs escape to the caller, so only the
        // old-state snapshot can come from the scratch pool here.
        Some(data.par_map_mut(|_, valid, fab| {
            let old = scratch::take_fab_clone(fab);
            let fluxes = self.grid_fluxes(&old, &valid, dtdx, gamma);
            Self::apply_fluxes(&valid, fab, &fluxes, dtdx, gamma);
            scratch::recycle_fab(old);
            fluxes
        }))
    }

    fn tag_cells(&self, data: &LevelData, threshold: f64) -> IntVectSet {
        tag_undivided_gradient(data, self.tag_comp, threshold)
    }
}

impl EulerSolver {
    /// Face fluxes for one grid, the flux-register convention: `flux[d]`
    /// at `iv` holds the HLLC flux through the face between `iv - e_d`
    /// and `iv`.
    ///
    /// Sweep-structured MUSCL–Hancock: conserved→primitive happens once
    /// per cell into a scratch fab, then per direction the limited slopes
    /// and both ±½-predicted face states are cached in one contiguous row
    /// walk, and the HLLC pass reads only cached states and writes flux
    /// rows contiguously. The per-cell reference
    /// ([`Self::grid_fluxes_reference`]) re-derives primitives and slopes
    /// for every face touching a cell (~20+ redundant conversions per cell
    /// per step); this path is bit-identical to it — every cached value is
    /// the same expression the reference evaluates, just evaluated once —
    /// and property tests pin the equivalence.
    pub fn grid_fluxes(&self, old: &Fab, valid: &IBox, dtdx: f64, gamma: f64) -> [Fab; DIM] {
        let avail = old.ibox();
        // Pass A: conserved → primitive once per cell of the ghost-filled
        // box. One flat walk; all five components stream contiguously.
        let mut prim = scratch::take_fab(avail, NCOMP);
        let st = old.comp_stride();
        {
            let src = old.as_slice();
            let dst = prim.as_mut_slice();
            for o in 0..st {
                let w = Conserved {
                    rho: src[o],
                    mom: [src[o + st], src[o + 2 * st], src[o + 3 * st]],
                    energy: src[o + 4 * st],
                }
                .to_primitive(gamma)
                .as_array();
                store5(dst, o, st, w);
            }
        }
        let asize = avail.size();
        let fluxes = std::array::from_fn(|d| {
            // Cells whose predicted face states this direction's faces read:
            // the valid box grown by one in ±d, clipped to what exists.
            let sbox = valid.grow_dir(d, 1).intersect(&avail);
            let ss = sbox.num_cells() as usize;
            let mut wlo = scratch::take_fab(sbox, NCOMP); // state at the cell's −½ face
            let mut whi = scratch::take_fab(sbox, NCOMP); // state at the cell's +½ face
                                                          // Flat-offset step to the ±e_d neighbor inside the prim fab.
            let pstep = match d {
                0 => 1usize,
                1 => asize[0] as usize,
                _ => (asize[0] * asize[1]) as usize,
            };
            // Pass B: limited slopes + MUSCL–Hancock half-step predictor,
            // cached for both faces of every cell in contiguous row walks.
            {
                let p = prim.as_slice();
                let lo_s = wlo.as_mut_slice();
                let hi_s = whi.as_mut_slice();
                let nx = sbox.size()[0] as usize;
                for z in sbox.lo()[2]..=sbox.hi()[2] {
                    for y in sbox.lo()[1]..=sbox.hi()[1] {
                        let row = IntVect::new(sbox.lo()[0], y, z);
                        let op0 = avail.offset(row);
                        let os0 = sbox.offset(row);
                        // Neighbor availability along d is per-row constant
                        // except for d == 0, where it flips at the row ends.
                        let (row_has_m, row_has_p) =
                            (row[d] > avail.lo()[d], row[d] < avail.hi()[d]);
                        for i in 0..nx {
                            let op = op0 + i;
                            let (has_m, has_p) = if d == 0 {
                                let x = row[0] + i as i64;
                                (x > avail.lo()[0], x < avail.hi()[0])
                            } else {
                                (row_has_m, row_has_p)
                            };
                            let wc = [
                                p[op],
                                p[op + st],
                                p[op + 2 * st],
                                p[op + 3 * st],
                                p[op + 4 * st],
                            ];
                            let wp = if has_p {
                                let q = op + pstep;
                                [p[q], p[q + st], p[q + 2 * st], p[q + 3 * st], p[q + 4 * st]]
                            } else {
                                wc
                            };
                            let wm = if has_m {
                                let q = op - pstep;
                                [p[q], p[q + st], p[q + 2 * st], p[q + 3 * st], p[q + 4 * st]]
                            } else {
                                wc
                            };
                            let slope: [f64; NCOMP] =
                                std::array::from_fn(|c| minmod(wp[c] - wc[c], wc[c] - wm[c]));
                            let w = Primitive {
                                rho: wc[0],
                                vel: [wc[1], wc[2], wc[3]],
                                p: wc[4],
                            };
                            let os = os0 + i;
                            let (w_hi, w_lo) = self.predict_faces(w, &slope, d, dtdx);
                            store5(hi_s, os, ss, w_hi);
                            store5(lo_s, os, ss, w_lo);
                        }
                    }
                }
            }
            // Pass C: HLLC over faces, reading only the cached predicted
            // states and writing flux rows contiguously. At a physical
            // boundary the missing cell falls back to the interior one,
            // exactly as the reference's `face_flux` clamps.
            let mut hi = valid.hi();
            hi[d] += 1;
            let fbox = IBox::new(valid.lo(), hi);
            let mut flux = scratch::take_fab(fbox, NCOMP);
            let sf = flux.comp_stride();
            {
                let lo_s = wlo.as_slice();
                let hi_s = whi.as_slice();
                let out = flux.as_mut_slice();
                let nx = fbox.size()[0] as usize;
                for z in fbox.lo()[2]..=fbox.hi()[2] {
                    for y in fbox.lo()[1]..=fbox.hi()[1] {
                        let row = IntVect::new(fbox.lo()[0], y, z);
                        let of0 = fbox.offset(row);
                        if d == 0 {
                            let os0 = sbox.offset(IntVect::new(sbox.lo()[0], y, z));
                            for i in 0..nx {
                                let x = row[0] + i as i64;
                                let lx = if x > avail.lo()[0] { x - 1 } else { x };
                                let rx = if x <= avail.hi()[0] { x } else { x - 1 };
                                let wl = load_prim(hi_s, os0 + (lx - sbox.lo()[0]) as usize, ss);
                                let wr = load_prim(lo_s, os0 + (rx - sbox.lo()[0]) as usize, ss);
                                store5(out, of0 + i, sf, hllc_flux(wl, wr, d, gamma));
                            }
                        } else {
                            let fd = row[d];
                            let ld = if fd > avail.lo()[d] { fd - 1 } else { fd };
                            let rd = if fd <= avail.hi()[d] { fd } else { fd - 1 };
                            let mut lrow = row;
                            lrow[d] = ld;
                            let mut rrow = row;
                            rrow[d] = rd;
                            let ol0 = sbox.offset(lrow);
                            let or0 = sbox.offset(rrow);
                            for i in 0..nx {
                                let wl = load_prim(hi_s, ol0 + i, ss);
                                let wr = load_prim(lo_s, or0 + i, ss);
                                store5(out, of0 + i, sf, hllc_flux(wl, wr, d, gamma));
                            }
                        }
                    }
                }
            }
            scratch::recycle_fab(wlo);
            scratch::recycle_fab(whi);
            flux
        });
        scratch::recycle_fab(prim);
        fluxes
    }

    /// The retained per-cell reference for [`Self::grid_fluxes`]: every
    /// face independently re-derives both cells' primitives and slopes via
    /// [`Self::face_flux`]. Kept for the equivalence property tests and the
    /// sweep-vs-reference benches.
    pub fn grid_fluxes_reference(
        &self,
        old: &Fab,
        valid: &IBox,
        dtdx: f64,
        gamma: f64,
    ) -> [Fab; DIM] {
        let avail = old.ibox();
        std::array::from_fn(|d| {
            let e = IntVect::basis(d);
            let mut hi = valid.hi();
            hi[d] += 1;
            let fbox = IBox::new(valid.lo(), hi);
            let mut flux = scratch::take_fab(fbox, NCOMP);
            let stride = flux.comp_stride();
            for iv in fbox.cells() {
                let f = self.face_flux(old, &avail, iv - e, iv, d, dtdx, gamma);
                let o = flux.cell_offset(iv);
                let out = flux.as_mut_slice();
                for (c, fv) in f.iter().enumerate() {
                    out[o + c * stride] = *fv;
                }
            }
            flux
        })
    }

    /// [`LevelSolver::advance_level`] through the retained per-cell
    /// reference kernel (same parallel per-grid structure, reference
    /// per-face math) — the baseline the sweep is benchmarked against.
    pub fn advance_level_reference(&self, data: &mut LevelData, dx: f64, dt: f64) {
        let dtdx = dt / dx;
        let gamma = self.gamma;
        data.par_for_each_mut(|_, valid, fab| {
            let old = scratch::take_fab_clone(fab);
            let fluxes = self.grid_fluxes_reference(&old, &valid, dtdx, gamma);
            Self::apply_fluxes(&valid, fab, &fluxes, dtdx, gamma);
            scratch::recycle_fab(old);
            for f in fluxes {
                scratch::recycle_fab(f);
            }
        });
    }

    /// [`LevelSolver::advance_level_capture`] as the seed shipped it: a
    /// serial grid loop over the reference kernel. Retained so the AMR
    /// golden tests can prove the parallel capture path leaves refluxed
    /// results and flux-register sums unchanged.
    pub fn advance_level_capture_reference(
        &self,
        data: &mut LevelData,
        dx: f64,
        dt: f64,
    ) -> Option<LevelFluxes> {
        let dtdx = dt / dx;
        let gamma = self.gamma;
        let mut out = Vec::with_capacity(data.len());
        for i in 0..data.len() {
            let valid = data.valid_box(i);
            let old = scratch::take_fab_clone(data.fab(i));
            let fluxes = self.grid_fluxes_reference(&old, &valid, dtdx, gamma);
            Self::apply_fluxes(&valid, data.fab_mut(i), &fluxes, dtdx, gamma);
            scratch::recycle_fab(old);
            out.push(fluxes);
        }
        Some(out)
    }

    /// The retained serial per-cell reference for
    /// [`LevelSolver::max_wave_speed`].
    pub fn max_wave_speed_reference(&self, data: &LevelData) -> f64 {
        let mut s: f64 = 0.0;
        for i in 0..data.len() {
            let vb = data.valid_box(i);
            let fab = data.fab(i);
            for iv in vb.cells() {
                let w = Self::state(fab, iv).to_primitive(self.gamma);
                let c = w.sound_speed(self.gamma);
                for d in 0..DIM {
                    s = s.max(w.vel[d].abs() + c);
                }
            }
        }
        s
    }

    /// Conservative update from face fluxes, with positivity floors.
    fn apply_fluxes(valid: &IBox, fab: &mut Fab, fluxes: &[Fab; DIM], dtdx: f64, gamma: f64) {
        // Row walks: one offset per row for the state fab and each flux fab
        // (every Fab shares the x-fastest layout, so consecutive cells are
        // consecutive offsets). The per-cell arithmetic and its evaluation
        // order are unchanged from the per-cell form, so the update is
        // bit-identical to it.
        let lo = valid.lo();
        let hi = valid.hi();
        let nx = (hi[0] - lo[0] + 1) as usize;
        let s = fab.comp_stride();
        let sf: [usize; DIM] = std::array::from_fn(|d| fluxes[d].comp_stride());
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                let row = IntVect::new(lo[0], y, z);
                let ob = fab.cell_offset(row);
                let f0: [usize; DIM] = std::array::from_fn(|d| fluxes[d].cell_offset(row));
                let f1: [usize; DIM] =
                    std::array::from_fn(|d| fluxes[d].cell_offset(row + IntVect::basis(d)));
                let dst = fab.as_mut_slice();
                for i in 0..nx {
                    let mut du = [0.0; NCOMP];
                    for (d, flux) in fluxes.iter().enumerate() {
                        let fd = flux.as_slice();
                        let (o0, o1) = (f0[d] + i, f1[d] + i);
                        for (c, dv) in du.iter_mut().enumerate() {
                            *dv -= dtdx * (fd[o1 + c * sf[d]] - fd[o0 + c * sf[d]]);
                        }
                    }
                    let o = ob + i;
                    let u = Conserved {
                        rho: dst[o],
                        mom: [dst[o + s], dst[o + 2 * s], dst[o + 3 * s]],
                        energy: dst[o + 4 * s],
                    };
                    let mut new = cons_as_array(u);
                    for (c, dv) in du.iter().enumerate() {
                        new[c] += dv;
                    }
                    // positivity floors via primitive roundtrip
                    let cons = Conserved {
                        rho: new[RHO].max(SMALL),
                        mom: [new[MX], new[MY], new[MZ]],
                        energy: new[ENERGY],
                    };
                    let w = cons.to_primitive(gamma);
                    store5(dst, o, s, cons_as_array(w.to_conserved(gamma)));
                }
            }
        }
    }

    /// MUSCL–Hancock + HLLC flux at the face between `left_cell` and
    /// `right_cell` along `d`. Falls back to first order at physical
    /// boundaries where a neighbor is unavailable.
    #[allow(clippy::too_many_arguments)]
    fn face_flux(
        &self,
        old: &Fab,
        avail: &IBox,
        left_cell: IntVect,
        right_cell: IntVect,
        d: usize,
        dtdx: f64,
        gamma: f64,
    ) -> [f64; NCOMP] {
        // Outside the domain (non-periodic boundary): reflecting-free outflow
        // — use the interior cell's state on both sides.
        let (lc, rc) = (
            if avail.contains(left_cell) {
                left_cell
            } else {
                right_cell
            },
            if avail.contains(right_cell) {
                right_cell
            } else {
                left_cell
            },
        );
        let wl0 = Self::state(old, lc).to_primitive(gamma);
        let wr0 = Self::state(old, rc).to_primitive(gamma);
        let sl = self.slopes(old, lc, d);
        let sr = self.slopes(old, rc, d);
        let wl = self.predict(wl0, &sl, d, 0.5, dtdx);
        let wr = self.predict(wr0, &sr, d, -0.5, dtdx);
        hllc_flux(wl, wr, d, gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::domain::ProblemDomain;
    use xlayer_amr::layout::BoxLayout;

    const GAMMA: f64 = 1.4;

    fn prim(rho: f64, u: f64, p: f64) -> Primitive {
        Primitive {
            rho,
            vel: [u, 0.0, 0.0],
            p,
        }
    }

    #[test]
    fn primitive_conserved_roundtrip() {
        let w = Primitive {
            rho: 1.3,
            vel: [0.4, -0.7, 2.1],
            p: 2.5,
        };
        let back = w.to_conserved(GAMMA).to_primitive(GAMMA);
        assert!((back.rho - w.rho).abs() < 1e-12);
        assert!((back.p - w.p).abs() < 1e-12);
        for d in 0..3 {
            assert!((back.vel[d] - w.vel[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn hllc_consistency_with_uniform_state() {
        // F(w, w) must equal the physical flux of w.
        let w = prim(1.0, 0.5, 1.0);
        let f = hllc_flux(w, w, 0, GAMMA);
        let exact = w.flux(0, GAMMA);
        for c in 0..NCOMP {
            assert!((f[c] - exact[c]).abs() < 1e-12, "comp {c}");
        }
    }

    #[test]
    fn hllc_supersonic_upwinds() {
        // Flow at Mach 5 to the right: flux must be the left flux.
        let l = prim(1.0, 10.0, 1.0);
        let r = prim(0.1, 10.0, 0.1);
        let f = hllc_flux(l, r, 0, GAMMA);
        let exact = l.flux(0, GAMMA);
        for c in 0..NCOMP {
            assert!((f[c] - exact[c]).abs() < 1e-12);
        }
    }

    #[test]
    fn hllc_symmetric_states_zero_mass_flux() {
        // Mirror-symmetric states: no net mass flux through the face.
        let l = prim(1.0, 1.0, 1.0);
        let r = prim(1.0, -1.0, 1.0);
        let f = hllc_flux(l, r, 0, GAMMA);
        assert!(f[RHO].abs() < 1e-12, "mass flux {}", f[RHO]);
    }

    fn uniform_level(n: i64, w: Primitive) -> LevelData {
        let domain = ProblemDomain::periodic(IBox::cube(n));
        let layout = BoxLayout::decompose(&domain, n, 1);
        let mut ld = LevelData::new(layout, domain, NCOMP, 2);
        let c = w.to_conserved(GAMMA);
        ld.for_each_mut(|vb, fab| {
            for iv in vb.cells() {
                EulerSolver::set_state(fab, iv, c);
            }
        });
        ld
    }

    #[test]
    fn uniform_state_is_steady() {
        let solver = EulerSolver::default();
        let w = Primitive {
            rho: 1.0,
            vel: [0.3, -0.2, 0.1],
            p: 1.0,
        };
        let mut ld = uniform_level(8, w);
        ld.exchange();
        solver.advance_level(&mut ld, 0.1, 0.01);
        for i in 0..ld.len() {
            let vb = ld.valid_box(i);
            for iv in vb.cells() {
                let got = EulerSolver::state(ld.fab(i), iv).to_primitive(GAMMA);
                assert!((got.rho - 1.0).abs() < 1e-10, "rho drifted at {iv:?}");
                assert!((got.p - 1.0).abs() < 1e-9, "p drifted at {iv:?}");
            }
        }
    }

    #[test]
    fn sod_shock_tube_conserves_and_stays_positive() {
        // Sod problem along x on a periodic-free box; run a few steps.
        let n = 32;
        let domain = ProblemDomain::new(IBox::cube(n));
        let layout = BoxLayout::decompose(&domain, n, 1);
        let mut ld = LevelData::new(layout, domain, NCOMP, 2);
        ld.for_each_mut(|vb, fab| {
            for iv in vb.cells() {
                let w = if iv[0] < n / 2 {
                    prim(1.0, 0.0, 1.0)
                } else {
                    prim(0.125, 0.0, 0.1)
                };
                EulerSolver::set_state(fab, iv, w.to_conserved(GAMMA));
            }
        });
        let solver = EulerSolver::default();
        let dx = 1.0 / n as f64;
        let mass0: f64 = ld.sum(RHO);
        for _ in 0..10 {
            ld.exchange();
            let smax = solver.max_wave_speed(&ld);
            let dt = 0.4 * dx / smax;
            solver.advance_level(&mut ld, dx, dt);
        }
        // Positivity everywhere.
        for i in 0..ld.len() {
            let vb = ld.valid_box(i);
            for iv in vb.cells() {
                let w = EulerSolver::state(ld.fab(i), iv).to_primitive(GAMMA);
                assert!(w.rho > 0.0 && w.p > 0.0, "unphysical state at {iv:?}");
                // density stays within initial bounds (+small overshoot slack)
                assert!(w.rho < 1.05 && w.rho > 0.1, "rho {} out of range", w.rho);
            }
        }
        // Interior mass conservation: boundary is outflow-free for early
        // times since the wave hasn't reached it.
        let mass1: f64 = ld.sum(RHO);
        assert!(
            (mass1 - mass0).abs() < 1e-8 * mass0,
            "mass drifted {mass0} -> {mass1}"
        );
    }

    #[test]
    fn periodic_advected_pulse_conserves_exactly() {
        // A smooth density pulse advected in a periodic box: total mass,
        // momentum and energy conserved to machine precision.
        let n = 16;
        let domain = ProblemDomain::periodic(IBox::cube(n));
        let layout = BoxLayout::decompose(&domain, 8, 1);
        let mut ld = LevelData::new(layout, domain, NCOMP, 2);
        ld.for_each_mut(|vb, fab| {
            for iv in vb.cells() {
                let x = (iv[0] as f64 + 0.5) / n as f64;
                let rho = 1.0 + 0.2 * (2.0 * std::f64::consts::PI * x).sin();
                let w = Primitive {
                    rho,
                    vel: [1.0, 0.0, 0.0],
                    p: 1.0,
                };
                EulerSolver::set_state(fab, iv, w.to_conserved(GAMMA));
            }
        });
        let solver = EulerSolver::default();
        let dx = 1.0 / n as f64;
        let m0 = ld.sum(RHO);
        let e0 = ld.sum(ENERGY);
        for _ in 0..8 {
            ld.exchange();
            let dt = 0.4 * dx / solver.max_wave_speed(&ld);
            solver.advance_level(&mut ld, dx, dt);
        }
        assert!((ld.sum(RHO) - m0).abs() < 1e-10 * m0);
        assert!((ld.sum(ENERGY) - e0).abs() < 1e-10 * e0);
    }

    #[test]
    fn max_wave_speed_reflects_sound_speed() {
        let w = prim(1.0, 0.0, 1.0); // c = sqrt(1.4)
        let ld = uniform_level(4, w);
        let solver = EulerSolver::default();
        let s = solver.max_wave_speed(&ld);
        assert!((s - GAMMA.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn minmod_limits() {
        assert_eq!(minmod(1.0, 2.0), 1.0);
        assert_eq!(minmod(-3.0, -2.0), -2.0);
        assert_eq!(minmod(1.0, -1.0), 0.0);
        assert_eq!(minmod(0.0, 5.0), 0.0);
    }
}
