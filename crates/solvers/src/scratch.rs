//! Per-thread scratch buffers for the solver hot loops.
//!
//! Every Godunov/upwind sweep needs, per grid per step, a snapshot of the
//! old state plus `DIM` face-flux fabs. Allocating those fresh each time
//! puts a multi-megabyte `malloc`/`free` cycle on the hottest path in the
//! code. This module keeps a small per-thread pool of `Vec<f64>` backing
//! buffers; [`xlayer_amr::Fab::with_storage`] / `clone_with_storage` /
//! `into_storage` move fabs in and out of the pool without touching the
//! allocator once the pool is warm.
//!
//! The pool is thread-local because `advance_level` runs grids in parallel
//! (`LevelData::par_for_each_mut`): each worker warms and reuses its own
//! buffers with no synchronization. Numerics are unaffected — recycled
//! fabs are zero-filled (or overwritten by a full copy) exactly like
//! freshly allocated ones.

use std::cell::RefCell;
use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;

/// Buffers retained per thread. A sweep-structured level step holds, per
/// grid, 1 old-state snapshot + 1 primitive cache + 2 predicted-face caches
/// + up to `DIM` flux fabs in flight at once (7 total); keep headroom.
const MAX_POOLED: usize = 12;

thread_local! {
    static POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Take a backing buffer from this thread's pool (empty on a cold pool).
pub fn take_buffer() -> Vec<f64> {
    POOL.with(|p| p.borrow_mut().pop().unwrap_or_default())
}

/// Return a backing buffer to this thread's pool for reuse.
pub fn recycle_buffer(buf: Vec<f64>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < MAX_POOLED {
            p.push(buf);
        }
    });
}

/// A zero-initialized fab over `bx` backed by pooled storage. Pair with
/// [`recycle_fab`] when done.
pub fn take_fab(bx: IBox, ncomp: usize) -> Fab {
    Fab::with_storage(bx, ncomp, take_buffer())
}

/// A copy of `src` backed by pooled storage — the allocation-free stand-in
/// for `src.clone()` in the sweep hot path.
pub fn take_fab_clone(src: &Fab) -> Fab {
    src.clone_with_storage(take_buffer())
}

/// Retire a fab, returning its storage to this thread's pool.
pub fn recycle_fab(fab: Fab) {
    recycle_buffer(fab.into_storage());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_fabs_reuse_capacity() {
        let f = take_fab(IBox::cube(8), 2);
        assert!(f.as_slice().iter().all(|&v| v == 0.0));
        recycle_fab(f);
        // The next (smaller) request on this thread must reuse the big
        // buffer rather than allocating a fresh one.
        let g = take_fab(IBox::cube(4), 2);
        assert!(g.into_storage().capacity() >= 8 * 8 * 8 * 2);
    }

    #[test]
    fn scratch_clone_matches_clone() {
        let mut f = take_fab(IBox::cube(4), 3);
        for (i, v) in f.as_mut_slice().iter_mut().enumerate() {
            *v = i as f64 * 0.5;
        }
        let c = take_fab_clone(&f);
        assert_eq!(c.ibox(), f.ibox());
        assert_eq!(c.as_slice(), f.as_slice());
        recycle_fab(c);
        recycle_fab(f);
    }

    #[test]
    fn pool_is_bounded() {
        for _ in 0..4 * MAX_POOLED {
            recycle_buffer(vec![0.0; 16]);
        }
        POOL.with(|p| assert!(p.borrow().len() <= MAX_POOLED));
    }
}
