//! The interface an application solver presents to the AMR driver.

use xlayer_amr::fab::Fab;
use xlayer_amr::intvect::DIM;
use xlayer_amr::level_data::LevelData;
use xlayer_amr::tagging::IntVectSet;

/// Per-grid face fluxes: `fluxes[g][d]` holds, at index `iv`, the flux
/// through the face between cells `iv - e_d` and `iv` (the convention
/// `xlayer_amr::flux_register` consumes).
pub type LevelFluxes = Vec<[Fab; DIM]>;

/// A single-level explicit solver advanced by the AMR driver.
///
/// Implementations: [`crate::euler::EulerSolver`] (Polytropic Gas) and
/// [`crate::advect::AdvectDiffuseSolver`] (Advection–Diffusion) — the two
/// Chombo applications of the paper's evaluation.
pub trait LevelSolver {
    /// Number of solution components per cell.
    fn ncomp(&self) -> usize;

    /// Ghost cells the stencil requires (the driver allocates and fills them).
    fn nghost(&self) -> i64;

    /// Maximum signal speed over the level's valid cells, used for the CFL
    /// time-step limit `dt ≤ cfl · dx / max_speed`.
    fn max_wave_speed(&self, data: &LevelData) -> f64;

    /// Advance the level by `dt` with grid spacing `dx`. Ghost cells must be
    /// filled before the call; only valid cells need be updated.
    fn advance_level(&self, data: &mut LevelData, dx: f64, dt: f64);

    /// Mark cells needing refinement.
    fn tag_cells(&self, data: &LevelData, threshold: f64) -> IntVectSet;

    /// An optional extra time-step restriction independent of wave speeds
    /// (e.g. an explicit-diffusion limit). Return `f64::INFINITY` if none.
    fn max_dt(&self, _dx: f64) -> f64 {
        f64::INFINITY
    }

    /// Advance the level *and* return the per-grid face fluxes used —
    /// needed for conservative refluxing at coarse–fine boundaries.
    /// The default falls back to [`Self::advance_level`] and returns `None`
    /// (refluxing is then skipped).
    fn advance_level_capture(&self, data: &mut LevelData, dx: f64, dt: f64) -> Option<LevelFluxes> {
        self.advance_level(data, dx, dt);
        None
    }
}
