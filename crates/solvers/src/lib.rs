//! # xlayer-solvers — the paper's AMR applications
//!
//! The two Chombo example applications used in the SC '13 evaluation,
//! implemented from scratch on `xlayer-amr`:
//!
//! * [`euler::EulerSolver`] — the *AMR Polytropic Gas* workload: an unsplit
//!   MUSCL–Hancock Godunov method with an HLLC Riemann solver for the 3-D
//!   Euler equations (memory- and compute-intensive; Figs. 1, 5, 9).
//! * [`advect::AdvectDiffuseSolver`] — the *AMR Advection–Diffusion*
//!   workload: conservative upwind transport plus explicit diffusion
//!   (Figs. 7, 8, 10, 11, Table 2).
//!
//! [`amr_driver::AmrSimulation`] runs either solver over a dynamic hierarchy
//! and emits the per-step observables ([`amr_driver::StepStats`]) consumed by
//! the adaptation runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advect;
pub mod amr_driver;
pub mod euler;
pub mod level_solver;
pub mod problems;
pub mod riemann_exact;
pub mod scratch;

pub use advect::{AdvectDiffuseSolver, VelocityField};
pub use amr_driver::{AmrSimulation, DriverConfig, StepStats};
pub use euler::EulerSolver;
pub use level_solver::LevelSolver;
pub use problems::{GasProblem, ScalarProblem};
pub use riemann_exact::{ExactRiemann, State1d};
