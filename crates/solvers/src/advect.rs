//! The AMR Advection–Diffusion application: a conservative upwind transport
//! solver with explicit diffusion, the lighter of the paper's two workloads
//! (§5.1), used for the middleware-layer and cross-layer experiments
//! (Figs. 7, 8, 10, 11, Table 2).

use crate::level_solver::{LevelFluxes, LevelSolver};
use crate::scratch;
use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;
use xlayer_amr::intvect::{IntVect, DIM};
use xlayer_amr::level_data::LevelData;
use xlayer_amr::tagging::{tag_undivided_gradient, IntVectSet};

/// The advecting velocity field.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VelocityField {
    /// Uniform translation.
    Constant([f64; 3]),
    /// A solenoidal single-vortex field in the x–y plane about `center`
    /// (grid coordinates), scaled by `strength`. w = 0.
    Vortex {
        /// Center of rotation in cell coordinates.
        center: [f64; 2],
        /// Angular velocity scale.
        strength: f64,
    },
}

impl VelocityField {
    /// Velocity at the center of cell `iv` (cell coordinates; dx = 1 unit of
    /// index space scaled outside).
    pub fn at(&self, iv: IntVect) -> [f64; 3] {
        match *self {
            VelocityField::Constant(v) => v,
            VelocityField::Vortex { center, strength } => {
                let x = iv[0] as f64 + 0.5 - center[0];
                let y = iv[1] as f64 + 0.5 - center[1];
                [-strength * y, strength * x, 0.0]
            }
        }
    }

    /// An upper bound on |velocity| over box side `n` (for CFL).
    pub fn max_speed(&self, n: i64) -> f64 {
        match *self {
            VelocityField::Constant(v) => v.iter().map(|c| c.abs()).fold(0.0, f64::max),
            VelocityField::Vortex { strength, .. } => {
                // max radius ~ diagonal of the domain
                strength.abs() * (2.0f64).sqrt() * n as f64
            }
        }
    }
}

/// Conservative first-order upwind advection plus explicit centered
/// diffusion for one scalar component.
#[derive(Clone, Copy, Debug)]
pub struct AdvectDiffuseSolver {
    /// The advecting velocity field.
    pub velocity: VelocityField,
    /// Diffusion coefficient D (0 disables diffusion).
    pub diffusion: f64,
    /// Domain side length in cells, for the vortex CFL bound.
    pub domain_cells: i64,
}

impl AdvectDiffuseSolver {
    /// A solver translating with velocity `v` and diffusivity `d`.
    pub fn new(velocity: VelocityField, diffusion: f64, domain_cells: i64) -> Self {
        AdvectDiffuseSolver {
            velocity,
            diffusion,
            domain_cells,
        }
    }

    /// Face fluxes for one grid: `flux[d]` at `iv` holds the upwind
    /// advective plus diffusive flux through the face between `iv - e_d`
    /// and `iv` (the flux-register convention).
    ///
    /// Sweep-structured like the Euler kernel: both upwind states stream
    /// from flat row offsets into `old` and the flux rows are written
    /// contiguously, instead of per-face `get`/`set` index math. Bit-
    /// identical to [`Self::grid_fluxes_reference`] (same expressions on
    /// the same values, evaluated in the same order); property tests pin
    /// the equivalence.
    pub fn grid_fluxes(&self, old: &Fab, valid: &IBox, dx: f64) -> [Fab; DIM] {
        let avail = old.ibox();
        let src = old.as_slice();
        std::array::from_fn(|d| {
            let e = IntVect::basis(d);
            let mut hi = valid.hi();
            hi[d] += 1;
            let fbox = IBox::new(valid.lo(), hi);
            let mut flux = scratch::take_fab(fbox, 1);
            let out = flux.as_mut_slice();
            let nx = fbox.size()[0] as usize;
            for z in fbox.lo()[2]..=fbox.hi()[2] {
                for y in fbox.lo()[1]..=fbox.hi()[1] {
                    let row = IntVect::new(fbox.lo()[0], y, z);
                    let of0 = fbox.offset(row);
                    if d == 0 {
                        // Availability along x flips only at the row ends.
                        let ob = avail.offset(IntVect::new(avail.lo()[0], y, z));
                        let albx = avail.lo()[0];
                        for i in 0..nx {
                            let x = row[0] + i as i64;
                            let have_lo = x > albx;
                            let have_hi = x <= avail.hi()[0];
                            let hx = if have_hi { x } else { x - 1 };
                            let u_hi = src[ob + (hx - albx) as usize];
                            let u_lo = if have_lo {
                                src[ob + (x - 1 - albx) as usize]
                            } else {
                                u_hi
                            };
                            let iv = IntVect::new(x, y, z);
                            let v = 0.5 * (self.velocity.at(iv - e)[d] + self.velocity.at(iv)[d]);
                            let mut f = if v >= 0.0 { v * u_lo } else { v * u_hi };
                            // Diffusive flux only across interior faces
                            // (zero-gradient at physical boundaries).
                            if self.diffusion > 0.0 && have_lo && have_hi {
                                f -= self.diffusion * (u_hi - u_lo) / dx;
                            }
                            out[of0 + i] = f;
                        }
                    } else {
                        // Availability along d is constant over the row;
                        // a missing side clamps to the interior row base.
                        let have_lo = row[d] > avail.lo()[d];
                        let have_hi = row[d] <= avail.hi()[d];
                        let ohi0 = avail.offset(if have_hi { row } else { row - e });
                        let olo0 = if have_lo { avail.offset(row - e) } else { ohi0 };
                        let diffusive = self.diffusion > 0.0 && have_lo && have_hi;
                        for i in 0..nx {
                            let u_hi = src[ohi0 + i];
                            let u_lo = src[olo0 + i];
                            let iv = IntVect::new(row[0] + i as i64, y, z);
                            let v = 0.5 * (self.velocity.at(iv - e)[d] + self.velocity.at(iv)[d]);
                            let mut f = if v >= 0.0 { v * u_lo } else { v * u_hi };
                            if diffusive {
                                f -= self.diffusion * (u_hi - u_lo) / dx;
                            }
                            out[of0 + i] = f;
                        }
                    }
                }
            }
            flux
        })
    }

    /// The retained per-face reference for [`Self::grid_fluxes`]: every
    /// face independently resolves its cells through `Fab::get`. Kept for
    /// the equivalence property tests and the sweep-vs-reference benches.
    pub fn grid_fluxes_reference(&self, old: &Fab, valid: &IBox, dx: f64) -> [Fab; DIM] {
        let avail = old.ibox();
        std::array::from_fn(|d| {
            let e = IntVect::basis(d);
            let mut hi = valid.hi();
            hi[d] += 1;
            let fbox = IBox::new(valid.lo(), hi);
            let mut flux = scratch::take_fab(fbox, 1);
            for iv in fbox.cells() {
                let lo_cell = iv - e;
                let have_lo = avail.contains(lo_cell);
                let have_hi = avail.contains(iv);
                let u_hi = if have_hi {
                    old.get(iv, 0)
                } else {
                    old.get(lo_cell, 0)
                };
                let u_lo = if have_lo { old.get(lo_cell, 0) } else { u_hi };
                let v = 0.5 * (self.velocity.at(lo_cell)[d] + self.velocity.at(iv)[d]);
                let mut f = if v >= 0.0 { v * u_lo } else { v * u_hi };
                if self.diffusion > 0.0 && have_lo && have_hi {
                    f -= self.diffusion * (u_hi - u_lo) / dx;
                }
                flux.set(iv, 0, f);
            }
            flux
        })
    }

    /// [`LevelSolver::advance_level`] through the retained per-face
    /// reference kernel — the baseline the sweep is tested against.
    pub fn advance_level_reference(&self, data: &mut LevelData, dx: f64, dt: f64) {
        let dtdx = dt / dx;
        data.par_for_each_mut(|_, valid, fab| {
            let old = scratch::take_fab_clone(fab);
            let fluxes = self.grid_fluxes_reference(&old, &valid, dx);
            Self::apply_fluxes(&valid, fab, &fluxes, dtdx);
            scratch::recycle_fab(old);
            for f in fluxes {
                scratch::recycle_fab(f);
            }
        });
    }

    /// [`LevelSolver::advance_level_capture`] as the seed shipped it: a
    /// serial grid loop over the reference kernel, retained for the AMR
    /// refluxing golden tests.
    pub fn advance_level_capture_reference(
        &self,
        data: &mut LevelData,
        dx: f64,
        dt: f64,
    ) -> Option<LevelFluxes> {
        let dtdx = dt / dx;
        let mut out = Vec::with_capacity(data.len());
        for i in 0..data.len() {
            let valid = data.valid_box(i);
            let old = scratch::take_fab_clone(data.fab(i));
            let fluxes = self.grid_fluxes_reference(&old, &valid, dx);
            Self::apply_fluxes(&valid, data.fab_mut(i), &fluxes, dtdx);
            scratch::recycle_fab(old);
            out.push(fluxes);
        }
        Some(out)
    }

    /// Conservative update from face fluxes.
    fn apply_fluxes(valid: &IBox, fab: &mut Fab, fluxes: &[Fab; DIM], dtdx: f64) {
        for iv in valid.cells() {
            let mut du = 0.0;
            for (d, flux) in fluxes.iter().enumerate() {
                let e = IntVect::basis(d);
                du -= dtdx * (flux.get(iv + e, 0) - flux.get(iv, 0));
            }
            let u = fab.get(iv, 0);
            fab.set(iv, 0, u + du);
        }
    }
}

impl LevelSolver for AdvectDiffuseSolver {
    fn ncomp(&self) -> usize {
        1
    }

    fn nghost(&self) -> i64 {
        1
    }

    fn max_wave_speed(&self, _data: &LevelData) -> f64 {
        self.velocity.max_speed(self.domain_cells).max(1e-30)
    }

    fn max_dt(&self, dx: f64) -> f64 {
        if self.diffusion > 0.0 {
            // Explicit 3-D diffusion stability: dt ≤ dx²/(6D), with margin.
            0.9 * dx * dx / (6.0 * self.diffusion)
        } else {
            f64::INFINITY
        }
    }

    fn advance_level(&self, data: &mut LevelData, dx: f64, dt: f64) {
        let dtdx = dt / dx;
        // Grids are independent given their ghost-filled old state. The
        // old-state snapshot and flux fabs come from the per-worker scratch
        // pool: after the first grid, a step allocates nothing.
        data.par_for_each_mut(|_, valid, fab| {
            let old = scratch::take_fab_clone(fab);
            let fluxes = self.grid_fluxes(&old, &valid, dx);
            Self::apply_fluxes(&valid, fab, &fluxes, dtdx);
            scratch::recycle_fab(old);
            for f in fluxes {
                scratch::recycle_fab(f);
            }
        });
    }

    fn advance_level_capture(&self, data: &mut LevelData, dx: f64, dt: f64) -> Option<LevelFluxes> {
        let dtdx = dt / dx;
        // Grids are independent; the indexed parallel map collects each
        // grid's flux fabs in grid order for the refluxing caller. Flux
        // fabs escape to the caller, so only the snapshot is pooled.
        Some(data.par_map_mut(|_, valid, fab| {
            let old = scratch::take_fab_clone(fab);
            let fluxes = self.grid_fluxes(&old, &valid, dx);
            Self::apply_fluxes(&valid, fab, &fluxes, dtdx);
            scratch::recycle_fab(old);
            fluxes
        }))
    }

    fn tag_cells(&self, data: &LevelData, threshold: f64) -> IntVectSet {
        tag_undivided_gradient(data, 0, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::boxes::IBox;
    use xlayer_amr::domain::ProblemDomain;
    use xlayer_amr::layout::BoxLayout;

    fn level(n: i64, periodic: bool) -> LevelData {
        let b = IBox::cube(n);
        let domain = if periodic {
            ProblemDomain::periodic(b)
        } else {
            ProblemDomain::new(b)
        };
        let layout = BoxLayout::decompose(&domain, 8, 1);
        LevelData::new(layout, domain, 1, 1)
    }

    fn set_pulse(ld: &mut LevelData, at: IntVect) {
        ld.for_each_mut(|vb, fab| {
            if vb.contains(at) {
                fab.set(at, 0, 1.0);
            }
        });
    }

    #[test]
    fn advection_conserves_mass_periodic() {
        let mut ld = level(16, true);
        set_pulse(&mut ld, IntVect::splat(8));
        let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.5, -0.25]), 0.0, 16);
        let m0 = ld.sum(0);
        for _ in 0..20 {
            ld.exchange();
            solver.advance_level(&mut ld, 1.0, 0.5);
        }
        assert!((ld.sum(0) - m0).abs() < 1e-12 * m0.max(1.0));
    }

    #[test]
    fn advection_moves_pulse_downstream() {
        let mut ld = level(16, true);
        set_pulse(&mut ld, IntVect::splat(4));
        let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, 16);
        // advance by total time 4 with dt=0.5 => pulse centroid moves +4 in x
        for _ in 0..8 {
            ld.exchange();
            solver.advance_level(&mut ld, 1.0, 0.5);
        }
        // centroid x
        let mut cx = 0.0;
        let mut m = 0.0;
        for i in 0..ld.len() {
            let vb = ld.valid_box(i);
            for iv in vb.cells() {
                let u = ld.fab(i).get(iv, 0);
                cx += u * (iv[0] as f64 + 0.5);
                m += u;
            }
        }
        cx /= m;
        assert!(
            (cx - 8.5).abs() < 0.5,
            "pulse centroid at {cx}, expected ≈ 8.5"
        );
    }

    #[test]
    fn diffusion_spreads_and_conserves() {
        let mut ld = level(16, true);
        set_pulse(&mut ld, IntVect::splat(8));
        let solver = AdvectDiffuseSolver::new(VelocityField::Constant([0.0; 3]), 0.5, 16);
        let m0 = ld.sum(0);
        let peak0 = ld.max(0);
        let dt = solver.max_dt(1.0);
        for _ in 0..10 {
            ld.exchange();
            solver.advance_level(&mut ld, 1.0, dt);
        }
        assert!((ld.sum(0) - m0).abs() < 1e-12 * m0.max(1.0));
        assert!(ld.max(0) < peak0, "diffusion must reduce the peak");
        assert!(ld.min(0) >= -1e-12, "diffusion must stay non-negative");
    }

    #[test]
    fn vortex_field_is_divergence_free_rotation() {
        let v = VelocityField::Vortex {
            center: [8.0, 8.0],
            strength: 0.1,
        };
        // At (8, 6) (i.e. below center): velocity points +x.
        let at = v.at(IntVect::new(8, 5, 0)); // cell center (8.5, 5.5)
        assert!(at[0] > 0.0 && at[2] == 0.0);
        // Opposite side: -x.
        let at2 = v.at(IntVect::new(8, 11, 0));
        assert!(at2[0] < 0.0);
    }

    #[test]
    fn max_dt_respects_diffusion_limit() {
        let s = AdvectDiffuseSolver::new(VelocityField::Constant([0.0; 3]), 2.0, 16);
        let dt = s.max_dt(0.1);
        assert!(dt <= 0.1 * 0.1 / (6.0 * 2.0));
        let s0 = AdvectDiffuseSolver::new(VelocityField::Constant([0.0; 3]), 0.0, 16);
        assert_eq!(s0.max_dt(0.1), f64::INFINITY);
    }

    #[test]
    fn tagging_finds_pulse_edges() {
        let mut ld = level(16, true);
        set_pulse(&mut ld, IntVect::splat(8));
        ld.exchange();
        let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, 16);
        let tags = solver.tag_cells(&ld, 0.1);
        assert!(!tags.is_empty());
        // Tags cluster around the pulse.
        for iv in tags.iter() {
            assert!((*iv - IntVect::splat(8)).0.iter().all(|&c| c.abs() <= 2));
        }
    }
}
