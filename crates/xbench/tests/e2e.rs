//! End-to-end loopback test: a controller drives two in-process agents
//! against a two-shard staging cluster, and the merged measure-phase
//! report must match the spec's predicted totals *exactly* — the
//! workload streams are seeded, so the controller can know in advance
//! how many ops and how many put bytes a phase will deliver.

use std::time::Duration;

use xlayer_net::service::ServiceConfig;
use xlayer_net::StagingCluster;
use xlayer_xbench::ctl::merge_reports;
use xlayer_xbench::{AgentConn, AgentServer, Phase, RunCmd, WorkloadSpec};

#[test]
fn controller_drives_two_agents_to_the_spec_exact_totals() {
    let cluster = StagingCluster::start(2, &ServiceConfig::default()).expect("cluster start");
    let spec = WorkloadSpec {
        seed: 11,
        agents: 2,
        connections: 2,
        ops_per_conn: 30,
        warmup_ops: 5,
        side_min: 4,
        side_max: 8,
        names: 3,
        spread: 2,
        targets: cluster.addrs(),
        ..WorkloadSpec::default()
    };
    let expected = spec.expected_totals();
    assert!(expected.puts > 0, "spec must plan at least one put");

    // Two agents on ephemeral loopback ports, served from plain threads.
    let mut conns: Vec<AgentConn> = Vec::new();
    let mut serve_threads = Vec::new();
    for i in 0..2 {
        let server = std::sync::Arc::new(
            AgentServer::bind("127.0.0.1:0", &format!("e2e-{i}")).expect("agent bind"),
        );
        let addr = server.local_addr();
        let srv = std::sync::Arc::clone(&server);
        serve_threads.push(std::thread::spawn(move || {
            let _ = srv.serve();
        }));
        let conn =
            AgentConn::connect(&addr.to_string(), Duration::from_secs(5)).expect("agent connect");
        assert_eq!(conn.name(), &format!("e2e-{i}"));
        conns.push(conn);
    }

    // One unpaced measure phase per agent. Sequential on the controller
    // side: determinism is the point of this test, and each agent still
    // runs its connections concurrently internally.
    let spec_text = spec.to_text();
    let mut reports = Vec::new();
    for (i, conn) in conns.iter_mut().enumerate() {
        let report = conn
            .run(RunCmd {
                phase: Phase::Measure,
                agent_index: i as u32,
                version_base: 1,
                rate_bytes_per_sec: 0,
                spec_text: spec_text.clone(),
            })
            .expect("measure phase");
        assert_eq!(report.failed, 0, "agent {i} had failed ops");
        assert_eq!(report.rejected_oom, 0, "agent {i} hit the memory cap");
        reports.push(report);
    }

    // The merge must be the component-wise sum of the per-agent reports…
    let merged = merge_reports(&reports);
    let sum = |f: fn(&xlayer_xbench::AgentReport) -> u64| reports.iter().map(f).sum::<u64>();
    assert_eq!(merged.puts, sum(|r| r.puts));
    assert_eq!(merged.gets, sum(|r| r.gets));
    assert_eq!(merged.drains, sum(|r| r.drains));
    assert_eq!(merged.put_bytes, sum(|r| r.put_bytes));
    assert_eq!(merged.get_bytes, sum(|r| r.get_bytes));
    assert_eq!(
        merged.put_ns.count(),
        reports.iter().map(|r| r.put_ns.count()).sum::<u64>()
    );

    // …and the sum must equal what the spec predicted, op for op and
    // byte for byte.
    assert_eq!(merged.puts, expected.puts);
    assert_eq!(merged.gets, expected.gets);
    assert_eq!(merged.drains, expected.drains);
    assert_eq!(merged.put_bytes, expected.put_bytes);
    // Every get re-reads this connection's last put, so delivered get
    // bytes are at least one minimum-sized object per get.
    let min_obj = 8 * u64::from(spec.side_min).pow(3);
    assert!(merged.get_bytes >= merged.gets * min_obj);

    for conn in &mut conns {
        conn.stop().expect("agent stop");
    }
    for t in serve_threads {
        t.join().expect("serve thread");
    }
    cluster.shutdown();
}
