//! The xbench controller binary.
//!
//! ```text
//! xbench-ctl --agents HOST:P1,HOST:P2 --spec FILE [--out FILE]
//!            [--start-rate-mib R] [--max-steps N]
//! xbench-ctl --smoke
//! ```
//!
//! With `--agents`/`--spec`, connects to each running `xbench-agent`,
//! drives the saturation sweep (warmup → measure → drain per offered-load
//! step) against the staging targets named in the spec, prints a
//! human-readable curve on stdout, and writes the bench-summary-style
//! JSON to `--out` (default `xbench_summary.json`).
//!
//! `--smoke` needs no external processes: it spins up an in-process
//! 2-shard staging cluster plus two in-process agents on loopback, runs
//! a short two-step sweep, validates the sweep invariants, and prints
//! the JSON on stdout. CI runs exactly this.

use std::time::Duration;

use xlayer_xbench::ctl::{saturation_sweep, summary_json, AgentConn, SweepOptions, SweepResult};
use xlayer_xbench::WorkloadSpec;

struct Args {
    agents: Vec<String>,
    spec_path: Option<String>,
    out: String,
    smoke: bool,
    opts: SweepOptions,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        agents: Vec::new(),
        spec_path: None,
        out: "xbench_summary.json".to_string(),
        smoke: false,
        opts: SweepOptions::default(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag_name: &str| -> Result<&String, String> {
            it.next()
                .ok_or_else(|| format!("{flag_name} needs a value"))
        };
        match flag.as_str() {
            "--agents" => {
                parsed.agents = value("--agents")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--spec" => parsed.spec_path = Some(value("--spec")?.clone()),
            "--out" => parsed.out = value("--out")?.clone(),
            "--smoke" => parsed.smoke = true,
            "--start-rate-mib" => {
                let mib: u64 = value("--start-rate-mib")?
                    .parse()
                    .map_err(|e| format!("--start-rate-mib: {e}"))?;
                parsed.opts.start_rate_bytes_per_sec = mib << 20;
            }
            "--max-steps" => {
                parsed.opts.max_steps = value("--max-steps")?
                    .parse()
                    .map_err(|e| format!("--max-steps: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: xbench-ctl --agents A1,A2 --spec FILE [--out FILE] \
                     [--start-rate-mib R] [--max-steps N] | xbench-ctl --smoke"
                    .to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !parsed.smoke {
        if parsed.agents.is_empty() {
            return Err("--agents is required (or use --smoke)".to_string());
        }
        if parsed.spec_path.is_none() {
            return Err("--spec is required (or use --smoke)".to_string());
        }
    }
    Ok(parsed)
}

fn print_curve(result: &SweepResult) {
    println!("offered_mibps  goodput_mibps  put_p99_us  busy/s  retry_amp");
    for row in &result.rows {
        println!(
            "{:>13.2}  {:>13.2}  {:>10.1}  {:>6.1}  {:>9.3}",
            row.offered_mibps,
            row.goodput_mibps,
            row.put_lat.p99_ns as f64 / 1e3,
            row.busy_per_sec,
            row.retry_amplification
        );
    }
    println!(
        "knee at {:.2} MiB/s offered, {:.2} MiB/s goodput, retry amplification {:.3}",
        result.knee_offered_mibps, result.saturation_goodput_mibps, result.retry_amplification
    );
}

fn run_sweep(args: &Args) -> Result<SweepResult, String> {
    let Some(spec_path) = &args.spec_path else {
        return Err("--spec is required".to_string());
    };
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read spec {spec_path}: {e}"))?;
    let spec = WorkloadSpec::parse(&text).map_err(|e| format!("bad spec {spec_path}: {e}"))?;
    if spec.targets.is_empty() {
        return Err(format!("spec {spec_path} names no staging targets"));
    }
    let mut conns = Vec::with_capacity(args.agents.len());
    for addr in &args.agents {
        let conn = AgentConn::connect(addr, Duration::from_secs(10))
            .map_err(|e| format!("cannot reach agent {addr}: {e}"))?;
        println!("agent {} at {addr}", conn.name());
        conns.push(conn);
    }
    saturation_sweep(&mut conns, &spec, &args.opts).map_err(|e| format!("sweep failed: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if args.smoke {
        match xlayer_xbench::ctl::run_smoke() {
            Ok(result) => {
                print_curve(&result);
                print!("{}", summary_json(&result));
                println!("smoke OK");
            }
            Err(e) => {
                eprintln!("smoke failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    match run_sweep(&args) {
        Ok(result) => {
            print_curve(&result);
            let json = summary_json(&result);
            if let Err(e) = std::fs::write(&args.out, &json) {
                eprintln!("cannot write {}: {e}", args.out);
                std::process::exit(1);
            }
            println!("wrote {}", args.out);
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
