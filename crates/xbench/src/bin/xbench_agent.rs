//! Standalone xbench load-generation agent.
//!
//! ```text
//! xbench-agent [--listen HOST:PORT] [--name NAME]
//! ```
//!
//! Binds a control listener (default `127.0.0.1:0` — an ephemeral port,
//! printed on stdout so a controller script can scrape it) and serves
//! controllers until one sends `Stop`. The staging targets, connection
//! counts, and op mix all arrive with each `Run` command's workload
//! spec, so one running agent can serve many different experiments.

use xlayer_xbench::AgentServer;

struct Args {
    listen: String,
    name: String,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut listen = "127.0.0.1:0".to_string();
    let mut name = "agent".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag_name: &str| -> Result<&String, String> {
            it.next()
                .ok_or_else(|| format!("{flag_name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => listen = value("--listen")?.clone(),
            "--name" => name = value("--name")?.clone(),
            "--help" | "-h" => {
                return Err("usage: xbench-agent [--listen HOST:PORT] [--name NAME]".to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args { listen, name })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Args { listen, name } = match parse_args(&args) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let server = match AgentServer::bind(&listen, &name) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    println!("agent {name} listening on {}", server.local_addr());
    if let Err(e) = server.serve() {
        eprintln!("agent terminated: {e}");
        std::process::exit(1);
    }
}
