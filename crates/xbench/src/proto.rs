//! The xbench control protocol: how a controller drives agents.
//!
//! Frames reuse the staging wire's conventions — the same 24-byte header
//! layout (magic, version u16, opcode u8, flags u8, request id u64,
//! payload length u32, FNV-1a-32 payload checksum u32, all LE) and the
//! same total, panic-free decoding discipline — but under a distinct
//! magic (`XBCH`) and version counter, so a control frame aimed at a
//! staging service (or vice versa) is rejected at the first four bytes.
//!
//! The protocol is a sequential RPC per agent: `Hello` handshakes,
//! `Run` carries one phase of one workload (the spec travels as its
//! canonical text — both sides share the parser in [`crate::spec`]) and
//! blocks until the agent finishes the phase, answering `RunOk` with an
//! [`AgentReport`]; `Stop` shuts the agent down. Reports carry the
//! latency histograms sparsely: exact max, then `(bucket, count)` pairs
//! — merged controller-side with [`Hist::merge`].

use xlayer_net::hist::Hist;
use xlayer_net::wire::checksum;

use crate::spec::{SpecError, WorkloadSpec};

/// Control-frame magic: first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"XBCH";

/// Control-protocol version; peers refuse any other outright.
pub const VERSION: u16 = 1;

/// Header size in bytes (same layout as the staging wire header).
pub const HEADER_LEN: usize = 24;

/// Largest accepted control payload (16 MiB — reports are small; this
/// bounds a hostile header's allocation).
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// Control-frame opcodes. Requests are low, responses have the top bit
/// set, errors share `0x7F` with the staging wire's convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CtlOpcode {
    /// Controller → agent greeting.
    Hello = 0x01,
    /// Run one phase of a workload.
    Run = 0x02,
    /// Shut the agent down.
    Stop = 0x03,
    /// Greeting answer (carries the agent's name).
    HelloOk = 0x81,
    /// Phase finished; carries an [`AgentReport`].
    RunOk = 0x82,
    /// Stop acknowledged.
    StopOk = 0x83,
    /// Typed failure.
    Error = 0x7F,
}

impl CtlOpcode {
    fn from_u8(b: u8) -> Option<CtlOpcode> {
        Some(match b {
            0x01 => CtlOpcode::Hello,
            0x02 => CtlOpcode::Run,
            0x03 => CtlOpcode::Stop,
            0x81 => CtlOpcode::HelloOk,
            0x82 => CtlOpcode::RunOk,
            0x83 => CtlOpcode::StopOk,
            0x7F => CtlOpcode::Error,
            _ => return None,
        })
    }
}

/// Why a control frame could not be handled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtlError {
    /// Wrong magic (not a control frame at all).
    BadMagic,
    /// Version mismatch.
    BadVersion {
        /// The version the peer sent.
        got: u16,
    },
    /// Unknown opcode byte.
    BadOpcode {
        /// The unrecognised byte.
        got: u8,
    },
    /// Payload longer than [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        len: u32,
    },
    /// Checksum mismatch between header and payload.
    ChecksumMismatch,
    /// Body ended before its declared contents.
    Truncated,
    /// Body bytes were not valid for the opcode (bad UTF-8, bad
    /// enum tag, out-of-range histogram bucket, embedded spec error…).
    Malformed {
        /// Human-readable diagnosis.
        detail: String,
    },
    /// Transport failure underneath the protocol.
    Io {
        /// Stringified `std::io::Error` (kept owned so the type is `Eq`).
        detail: String,
    },
    /// The peer answered with a typed `Error` frame.
    Remote {
        /// The peer's diagnosis.
        detail: String,
    },
}

impl std::fmt::Display for CtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtlError::BadMagic => write!(f, "not an xbench control frame (bad magic)"),
            CtlError::BadVersion { got } => {
                write!(f, "control protocol version {got} (expected {VERSION})")
            }
            CtlError::BadOpcode { got } => write!(f, "unknown control opcode {got:#04x}"),
            CtlError::Oversized { len } => {
                write!(f, "control payload of {len} B exceeds {MAX_PAYLOAD} B")
            }
            CtlError::ChecksumMismatch => write!(f, "control payload checksum mismatch"),
            CtlError::Truncated => write!(f, "control frame body truncated"),
            CtlError::Malformed { detail } => write!(f, "malformed control body: {detail}"),
            CtlError::Io { detail } => write!(f, "control transport error: {detail}"),
            CtlError::Remote { detail } => write!(f, "peer reported: {detail}"),
        }
    }
}

impl std::error::Error for CtlError {}

impl From<std::io::Error> for CtlError {
    fn from(e: std::io::Error) -> Self {
        CtlError::Io {
            detail: e.to_string(),
        }
    }
}

impl From<SpecError> for CtlError {
    fn from(e: SpecError) -> Self {
        CtlError::Malformed {
            detail: e.to_string(),
        }
    }
}

/// A workload phase. The controller sequences Warmup → Measure → Drain;
/// only Measure results feed the saturation curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Prime connections, pools, and caches; results discarded.
    Warmup = 0,
    /// The timed phase whose counters and histograms are reported.
    Measure = 1,
    /// Evict everything this workload staged, resetting occupancy.
    Drain = 2,
}

impl Phase {
    fn from_u8(b: u8) -> Option<Phase> {
        Some(match b {
            0 => Phase::Warmup,
            1 => Phase::Measure,
            2 => Phase::Drain,
            _ => return None,
        })
    }
}

/// One `Run` command: which phase, which agent slot, and under what
/// pacing.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCmd {
    /// The phase to execute.
    pub phase: Phase,
    /// This agent's index into the spec's `agents` (selects its streams).
    pub agent_index: u32,
    /// Version numbering base for this phase's puts; the controller
    /// advances it between phases so keys never collide across steps.
    pub version_base: u64,
    /// Offered-load pacing for this agent in bytes/second of put payload;
    /// 0 means unpaced (as fast as the wire accepts).
    pub rate_bytes_per_sec: u64,
    /// The workload, as canonical spec text (see
    /// [`WorkloadSpec::to_text`]).
    pub spec_text: String,
}

impl RunCmd {
    /// Parse the embedded spec text.
    pub fn spec(&self) -> Result<WorkloadSpec, SpecError> {
        WorkloadSpec::parse(&self.spec_text)
    }
}

/// A controller → agent request.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlRequest {
    /// Handshake.
    Hello,
    /// Execute one phase.
    Run(RunCmd),
    /// Shut down.
    Stop,
}

/// An agent → controller response.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlResponse {
    /// Handshake answer.
    HelloOk {
        /// The agent's self-reported name.
        agent: String,
    },
    /// Phase finished.
    RunOk(Box<AgentReport>),
    /// Stop acknowledged; the agent exits after sending this.
    StopOk,
    /// Typed failure (the connection stays usable).
    Error {
        /// Human-readable diagnosis.
        detail: String,
    },
}

/// Everything one agent measured in one phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AgentReport {
    /// Wall time of the phase on the agent, nanoseconds.
    pub elapsed_ns: u64,
    /// Completed put operations.
    pub puts: u64,
    /// Completed get operations.
    pub gets: u64,
    /// Completed drain operations.
    pub drains: u64,
    /// Payload bytes delivered by puts.
    pub put_bytes: u64,
    /// Payload bytes fetched by gets.
    pub get_bytes: u64,
    /// Puts rejected by the staging memory cap (policy signal, not an
    /// error).
    pub rejected_oom: u64,
    /// Operations that failed outright after retries.
    pub failed: u64,
    /// Client retries caused by `Busy` frames.
    pub retries_busy: u64,
    /// Client retries caused by transient transport failures.
    pub retries_io: u64,
    /// Client retries caused by undecodable frames.
    pub retries_wire: u64,
    /// Put latency histogram (successful ops).
    pub put_ns: Hist,
    /// Get latency histogram (successful ops).
    pub get_ns: Hist,
}

impl AgentReport {
    /// Completed operations across all kinds.
    pub fn completed(&self) -> u64 {
        self.puts + self.gets + self.drains
    }

    /// Total client retries across all causes.
    pub fn retries(&self) -> u64 {
        self.retries_busy + self.retries_io + self.retries_wire
    }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

struct Wr {
    buf: Vec<u8>,
}

impl Wr {
    fn new() -> Self {
        Wr { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn hist(&mut self, h: &Hist) {
        self.u64(h.max_ns());
        let pairs: Vec<(u16, u64)> = h.nonzero_buckets().collect();
        self.u32(pairs.len() as u32);
        for (idx, n) in pairs {
            self.u16(idx);
            self.u64(n);
        }
    }
}

struct Rd<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, at: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CtlError> {
        let end = self.at.checked_add(n).ok_or(CtlError::Truncated)?;
        let s = self.buf.get(self.at..end).ok_or(CtlError::Truncated)?;
        self.at = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CtlError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }
    fn u16(&mut self) -> Result<u16, CtlError> {
        let s = self.take(2)?;
        let mut b = [0u8; 2];
        b.copy_from_slice(s);
        Ok(u16::from_le_bytes(b))
    }
    fn u32(&mut self) -> Result<u32, CtlError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, CtlError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }
    fn string(&mut self) -> Result<String, CtlError> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| CtlError::Malformed {
            detail: "string is not UTF-8".to_string(),
        })
    }
    fn hist(&mut self) -> Result<Hist, CtlError> {
        let max = self.u64()?;
        let npairs = self.u32()? as usize;
        let mut h = Hist::new();
        for _ in 0..npairs {
            let idx = self.u16()?;
            let count = self.u64()?;
            if !h.add_bucket(idx, count) {
                return Err(CtlError::Malformed {
                    detail: format!("histogram bucket {idx} out of range"),
                });
            }
        }
        h.raise_max(max);
        Ok(h)
    }
    fn done(&self) -> Result<(), CtlError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(CtlError::Malformed {
                detail: "trailing bytes after body".to_string(),
            })
        }
    }
}

fn encode_report(w: &mut Wr, r: &AgentReport) {
    for v in [
        r.elapsed_ns,
        r.puts,
        r.gets,
        r.drains,
        r.put_bytes,
        r.get_bytes,
        r.rejected_oom,
        r.failed,
        r.retries_busy,
        r.retries_io,
        r.retries_wire,
    ] {
        w.u64(v);
    }
    w.hist(&r.put_ns);
    w.hist(&r.get_ns);
}

fn decode_report(r: &mut Rd<'_>) -> Result<AgentReport, CtlError> {
    Ok(AgentReport {
        elapsed_ns: r.u64()?,
        puts: r.u64()?,
        gets: r.u64()?,
        drains: r.u64()?,
        put_bytes: r.u64()?,
        get_bytes: r.u64()?,
        rejected_oom: r.u64()?,
        failed: r.u64()?,
        retries_busy: r.u64()?,
        retries_io: r.u64()?,
        retries_wire: r.u64()?,
        put_ns: r.hist()?,
        get_ns: r.hist()?,
    })
}

/// A decoded control-frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtlHeader {
    /// Frame opcode.
    pub opcode: CtlOpcode,
    /// Request id (echoed by responses).
    pub request_id: u64,
    /// Declared payload length.
    pub payload_len: u32,
    /// Declared payload checksum.
    pub checksum: u32,
}

/// Build a complete frame for `body` under `opcode`/`request_id`.
pub fn encode_ctl_frame(opcode: CtlOpcode, request_id: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(opcode as u8);
    out.push(0);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Decode and validate a 24-byte control header.
pub fn decode_ctl_header(h: &[u8; HEADER_LEN]) -> Result<CtlHeader, CtlError> {
    let mut r = Rd::new(h);
    if r.take(4)? != MAGIC {
        return Err(CtlError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(CtlError::BadVersion { got: version });
    }
    let op = r.u8()?;
    let opcode = CtlOpcode::from_u8(op).ok_or(CtlError::BadOpcode { got: op })?;
    let _flags = r.u8()?;
    let request_id = r.u64()?;
    let payload_len = r.u32()?;
    if payload_len > MAX_PAYLOAD {
        return Err(CtlError::Oversized { len: payload_len });
    }
    Ok(CtlHeader {
        opcode,
        request_id,
        payload_len,
        checksum: r.u32()?,
    })
}

/// Verify a payload against its header's checksum.
pub fn verify_ctl_payload(header: &CtlHeader, payload: &[u8]) -> Result<(), CtlError> {
    if payload.len() as u64 != u64::from(header.payload_len) {
        return Err(CtlError::Truncated);
    }
    if checksum(payload) != header.checksum {
        return Err(CtlError::ChecksumMismatch);
    }
    Ok(())
}

impl CtlRequest {
    /// This request's opcode.
    pub fn opcode(&self) -> CtlOpcode {
        match self {
            CtlRequest::Hello => CtlOpcode::Hello,
            CtlRequest::Run(_) => CtlOpcode::Run,
            CtlRequest::Stop => CtlOpcode::Stop,
        }
    }

    /// Encode into a complete frame.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        let mut w = Wr::new();
        if let CtlRequest::Run(cmd) = self {
            w.u8(cmd.phase as u8);
            w.u32(cmd.agent_index);
            w.u64(cmd.version_base);
            w.u64(cmd.rate_bytes_per_sec);
            w.string(&cmd.spec_text);
        }
        encode_ctl_frame(self.opcode(), request_id, &w.buf)
    }

    /// Decode a request body from its opcode and verified payload.
    pub fn decode_body(opcode: CtlOpcode, payload: &[u8]) -> Result<CtlRequest, CtlError> {
        let mut r = Rd::new(payload);
        let req = match opcode {
            CtlOpcode::Hello => CtlRequest::Hello,
            CtlOpcode::Stop => CtlRequest::Stop,
            CtlOpcode::Run => {
                let phase_b = r.u8()?;
                let phase = Phase::from_u8(phase_b).ok_or(CtlError::Malformed {
                    detail: format!("unknown phase {phase_b}"),
                })?;
                CtlRequest::Run(RunCmd {
                    phase,
                    agent_index: r.u32()?,
                    version_base: r.u64()?,
                    rate_bytes_per_sec: r.u64()?,
                    spec_text: r.string()?,
                })
            }
            other => {
                return Err(CtlError::Malformed {
                    detail: format!("opcode {:#04x} is not a request", other as u8),
                })
            }
        };
        r.done()?;
        Ok(req)
    }
}

impl CtlResponse {
    /// This response's opcode.
    pub fn opcode(&self) -> CtlOpcode {
        match self {
            CtlResponse::HelloOk { .. } => CtlOpcode::HelloOk,
            CtlResponse::RunOk(_) => CtlOpcode::RunOk,
            CtlResponse::StopOk => CtlOpcode::StopOk,
            CtlResponse::Error { .. } => CtlOpcode::Error,
        }
    }

    /// Encode into a complete frame echoing `request_id`.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        let mut w = Wr::new();
        match self {
            CtlResponse::HelloOk { agent } => w.string(agent),
            CtlResponse::RunOk(report) => encode_report(&mut w, report),
            CtlResponse::StopOk => {}
            CtlResponse::Error { detail } => w.string(detail),
        }
        encode_ctl_frame(self.opcode(), request_id, &w.buf)
    }

    /// Decode a response body from its opcode and verified payload.
    pub fn decode_body(opcode: CtlOpcode, payload: &[u8]) -> Result<CtlResponse, CtlError> {
        let mut r = Rd::new(payload);
        let resp = match opcode {
            CtlOpcode::HelloOk => CtlResponse::HelloOk { agent: r.string()? },
            CtlOpcode::RunOk => CtlResponse::RunOk(Box::new(decode_report(&mut r)?)),
            CtlOpcode::StopOk => CtlResponse::StopOk,
            CtlOpcode::Error => CtlResponse::Error {
                detail: r.string()?,
            },
            other => {
                return Err(CtlError::Malformed {
                    detail: format!("opcode {:#04x} is not a response", other as u8),
                })
            }
        };
        r.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_request_whole(frame: &[u8]) -> Result<CtlRequest, CtlError> {
        let mut h = [0u8; HEADER_LEN];
        h.copy_from_slice(&frame[..HEADER_LEN]);
        let header = decode_ctl_header(&h)?;
        let payload = &frame[HEADER_LEN..];
        verify_ctl_payload(&header, payload)?;
        CtlRequest::decode_body(header.opcode, payload)
    }

    fn decode_response_whole(frame: &[u8]) -> Result<CtlResponse, CtlError> {
        let mut h = [0u8; HEADER_LEN];
        h.copy_from_slice(&frame[..HEADER_LEN]);
        let header = decode_ctl_header(&h)?;
        let payload = &frame[HEADER_LEN..];
        verify_ctl_payload(&header, payload)?;
        CtlResponse::decode_body(header.opcode, payload)
    }

    #[test]
    fn requests_roundtrip() {
        let spec = crate::spec::WorkloadSpec::default();
        let cases = vec![
            CtlRequest::Hello,
            CtlRequest::Stop,
            CtlRequest::Run(RunCmd {
                phase: Phase::Measure,
                agent_index: 3,
                version_base: 1_000,
                rate_bytes_per_sec: 64 << 20,
                spec_text: spec.to_text(),
            }),
        ];
        for req in cases {
            let back = decode_request_whole(&req.encode(9)).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn responses_roundtrip_including_hists() {
        let mut put_ns = Hist::new();
        let mut get_ns = Hist::new();
        for ns in [120u64, 4_000, 4_001, 9_999_999] {
            put_ns.record(ns);
        }
        get_ns.record(77);
        let report = AgentReport {
            elapsed_ns: 1,
            puts: 2,
            gets: 3,
            drains: 4,
            put_bytes: 5,
            get_bytes: 6,
            rejected_oom: 7,
            failed: 8,
            retries_busy: 9,
            retries_io: 10,
            retries_wire: 11,
            put_ns,
            get_ns,
        };
        let cases = vec![
            CtlResponse::HelloOk {
                agent: "a0".to_string(),
            },
            CtlResponse::StopOk,
            CtlResponse::Error {
                detail: "nope".to_string(),
            },
            CtlResponse::RunOk(Box::new(report.clone())),
        ];
        for resp in cases {
            let back = decode_response_whole(&resp.encode(4)).unwrap();
            match (&resp, &back) {
                (CtlResponse::RunOk(a), CtlResponse::RunOk(b)) => {
                    assert_eq!(a.elapsed_ns, b.elapsed_ns);
                    assert_eq!(a.completed(), b.completed());
                    assert_eq!(a.retries(), b.retries());
                    assert_eq!(a.put_ns.snapshot(), b.put_ns.snapshot());
                    assert_eq!(a.get_ns.snapshot(), b.get_ns.snapshot());
                }
                (a, b) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
            }
        }
    }

    #[test]
    fn hostile_headers_are_rejected_typed() {
        let good = CtlRequest::Hello.encode(1);
        let mut h = [0u8; HEADER_LEN];
        h.copy_from_slice(&good[..HEADER_LEN]);

        let mut bad = h;
        bad[0] = b'Y';
        assert_eq!(decode_ctl_header(&bad), Err(CtlError::BadMagic));

        let mut bad = h;
        bad[4] = 99;
        assert!(matches!(
            decode_ctl_header(&bad),
            Err(CtlError::BadVersion { got: 99 })
        ));

        let mut bad = h;
        bad[6] = 0x55;
        assert!(matches!(
            decode_ctl_header(&bad),
            Err(CtlError::BadOpcode { got: 0x55 })
        ));

        let mut bad = h;
        bad[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_ctl_header(&bad),
            Err(CtlError::Oversized { .. })
        ));
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder() {
        // Deterministic fuzz, same spirit as the staging wire's.
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for _ in 0..2000 {
            let mut h = [0u8; HEADER_LEN];
            for b in h.iter_mut() {
                *b = next();
            }
            if let Ok(header) = decode_ctl_header(&h) {
                let payload: Vec<u8> = (0..(header.payload_len.min(64) as usize))
                    .map(|_| next())
                    .collect();
                let _ = CtlRequest::decode_body(header.opcode, &payload);
                let _ = CtlResponse::decode_body(header.opcode, &payload);
            }
        }
    }
}
