//! Declarative workload specs and their deterministic operation streams.
//!
//! A spec is a tiny `key = value` file (TOML subset: blank lines, `#`
//! comments, and one optional `[workload]` section header are accepted;
//! nothing else is). The controller parses it once, serialises it back to
//! canonical text with [`WorkloadSpec::to_text`], and ships that text to
//! every agent — the agents re-parse with the same parser, so both sides
//! provably run the same workload.
//!
//! Determinism is the point: every `(agent, connection)` pair owns an
//! independent LCG stream seeded from `(seed, agent, conn)`, and
//! [`WorkloadSpec::expected_totals`] replays all streams without touching
//! a socket, so a test can assert the exact number of puts and the exact
//! payload bytes a cluster must have received.

/// Why a spec failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A line was not `key = value`, a comment, a blank, or `[workload]`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A key appeared twice.
    Duplicate {
        /// The repeated key.
        key: String,
    },
    /// A key this parser does not know (typos must not silently skew a
    /// measurement).
    UnknownKey {
        /// The unrecognised key.
        key: String,
    },
    /// A value failed to parse as the key's type.
    BadValue {
        /// The key whose value was bad.
        key: String,
        /// The unparseable text.
        value: String,
    },
    /// The parsed spec violates a structural constraint.
    Invalid {
        /// Human-readable constraint description.
        detail: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Malformed { line, text } => {
                write!(f, "spec line {line} is not `key = value`: {text:?}")
            }
            SpecError::Duplicate { key } => write!(f, "spec key {key:?} appears twice"),
            SpecError::UnknownKey { key } => write!(f, "unknown spec key {key:?}"),
            SpecError::BadValue { key, value } => {
                write!(f, "spec key {key:?} has unparseable value {value:?}")
            }
            SpecError::Invalid { detail } => write!(f, "invalid spec: {detail}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A parsed, validated workload description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Master seed; every agent/connection stream derives from it.
    pub seed: u64,
    /// Number of agents the controller will drive (streams are carved
    /// per agent, so the expectation replay needs it).
    pub agents: u32,
    /// Concurrent connections (worker threads) per agent.
    pub connections: u32,
    /// Operations per connection in a measure phase.
    pub ops_per_conn: u64,
    /// Operations per connection in a warmup phase.
    pub warmup_ops: u64,
    /// Relative weight of put operations.
    pub put_weight: u32,
    /// Relative weight of get operations.
    pub get_weight: u32,
    /// Relative weight of drain (eviction) operations.
    pub drain_weight: u32,
    /// Smallest object cube side, in cells (payload is `8 * side³` B).
    pub side_min: u32,
    /// Largest object cube side, in cells.
    pub side_max: u32,
    /// Distinct object names the workload cycles through.
    pub names: u32,
    /// Placement spread: object boxes land at origins spanning
    /// `spread³` shard-map buckets, so puts scatter across shards.
    pub spread: u32,
    /// Versions kept per name when a drain op trims history; an
    /// oversized working set (large sides, rare drains) is the tier
    /// pressure knob.
    pub retain_versions: u64,
    /// Staging service addresses. One address → [`xlayer_net::RemoteClient`];
    /// several → [`xlayer_net::ShardedClient`] over the list (a `remote:`
    /// shard list in workflow terms).
    pub targets: Vec<String>,
    /// Shard-map span (cells per placement bucket) for sharded targets.
    pub span: i64,
    /// Objects at least this large go down the chunked-stream path.
    pub chunk_threshold: u64,
    /// Client retry budget per op.
    pub max_retries: u32,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 42,
            agents: 1,
            connections: 2,
            ops_per_conn: 100,
            warmup_ops: 10,
            put_weight: 8,
            get_weight: 3,
            drain_weight: 1,
            side_min: 8,
            side_max: 16,
            names: 4,
            spread: 4,
            retain_versions: 4,
            targets: Vec::new(),
            span: xlayer_staging::shard::DEFAULT_SPAN,
            chunk_threshold: 8 << 20,
            max_retries: 3,
        }
    }
}

/// Every key the parser accepts, in canonical serialisation order.
const KEYS: &[&str] = &[
    "seed",
    "agents",
    "connections",
    "ops_per_conn",
    "warmup_ops",
    "put_weight",
    "get_weight",
    "drain_weight",
    "side_min",
    "side_max",
    "names",
    "spread",
    "retain_versions",
    "targets",
    "span",
    "chunk_threshold",
    "max_retries",
];

impl WorkloadSpec {
    /// Parse a spec from `key = value` text. Unknown keys, duplicate
    /// keys, and malformed lines are hard errors; keys not present keep
    /// their defaults.
    pub fn parse(text: &str) -> Result<WorkloadSpec, SpecError> {
        let mut spec = WorkloadSpec::default();
        let mut seen: Vec<&str> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[workload]" {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(SpecError::Malformed {
                    line: lineno + 1,
                    text: line.to_string(),
                });
            };
            let key = key.trim();
            let value = value.trim().trim_matches('"');
            let Some(&canon) = KEYS.iter().find(|&&k| k == key) else {
                return Err(SpecError::UnknownKey {
                    key: key.to_string(),
                });
            };
            if seen.contains(&canon) {
                return Err(SpecError::Duplicate {
                    key: key.to_string(),
                });
            }
            seen.push(canon);
            spec.set(canon, value)?;
        }
        spec.validate()?;
        Ok(spec)
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, SpecError> {
            value.parse().map_err(|_| SpecError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
            })
        }
        match key {
            "seed" => self.seed = num(key, value)?,
            "agents" => self.agents = num(key, value)?,
            "connections" => self.connections = num(key, value)?,
            "ops_per_conn" => self.ops_per_conn = num(key, value)?,
            "warmup_ops" => self.warmup_ops = num(key, value)?,
            "put_weight" => self.put_weight = num(key, value)?,
            "get_weight" => self.get_weight = num(key, value)?,
            "drain_weight" => self.drain_weight = num(key, value)?,
            "side_min" => self.side_min = num(key, value)?,
            "side_max" => self.side_max = num(key, value)?,
            "names" => self.names = num(key, value)?,
            "spread" => self.spread = num(key, value)?,
            "retain_versions" => self.retain_versions = num(key, value)?,
            "span" => self.span = num(key, value)?,
            "chunk_threshold" => self.chunk_threshold = num(key, value)?,
            "max_retries" => self.max_retries = num(key, value)?,
            "targets" => {
                self.targets = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            _ => {
                return Err(SpecError::UnknownKey {
                    key: key.to_string(),
                })
            }
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), SpecError> {
        let bad = |detail: &str| {
            Err(SpecError::Invalid {
                detail: detail.to_string(),
            })
        };
        if self.agents == 0 {
            return bad("agents must be >= 1");
        }
        if self.connections == 0 {
            return bad("connections must be >= 1");
        }
        if self.side_min == 0 {
            return bad("side_min must be >= 1");
        }
        if self.side_max < self.side_min {
            return bad("side_max must be >= side_min");
        }
        if self.put_weight == 0 {
            return bad("put_weight must be >= 1 (a workload with no puts measures nothing)");
        }
        if self.names == 0 {
            return bad("names must be >= 1");
        }
        if self.spread == 0 {
            return bad("spread must be >= 1");
        }
        if self.span <= 0 {
            return bad("span must be positive");
        }
        // A cube side's payload must stay far below the wire's frame
        // ceiling even on the whole-object path.
        let max_bytes = 8u64.saturating_mul(u64::from(self.side_max).pow(3));
        if max_bytes > (1 << 31) {
            return bad("side_max cubes exceed 2 GiB payloads");
        }
        Ok(())
    }

    /// Canonical serialisation: parses back to an identical spec. This is
    /// the form the controller ships to agents.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("[workload]\n");
        let mut kv = |k: &str, v: String| {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v);
            out.push('\n');
        };
        kv("seed", self.seed.to_string());
        kv("agents", self.agents.to_string());
        kv("connections", self.connections.to_string());
        kv("ops_per_conn", self.ops_per_conn.to_string());
        kv("warmup_ops", self.warmup_ops.to_string());
        kv("put_weight", self.put_weight.to_string());
        kv("get_weight", self.get_weight.to_string());
        kv("drain_weight", self.drain_weight.to_string());
        kv("side_min", self.side_min.to_string());
        kv("side_max", self.side_max.to_string());
        kv("names", self.names.to_string());
        kv("spread", self.spread.to_string());
        kv("retain_versions", self.retain_versions.to_string());
        kv("targets", self.targets.join(","));
        kv("span", self.span.to_string());
        kv("chunk_threshold", self.chunk_threshold.to_string());
        kv("max_retries", self.max_retries.to_string());
        out
    }

    /// The deterministic op stream for one `(agent, conn)` pair, `ops`
    /// operations long.
    pub fn stream(&self, agent: u32, conn: u32, ops: u64) -> OpStream {
        OpStream::new(self, agent, conn, ops)
    }

    /// Replay every agent's every connection stream (measure-phase
    /// length) without any I/O and total it up — the ground truth a
    /// loopback test compares delivered counters against.
    pub fn expected_totals(&self) -> SpecTotals {
        let mut t = SpecTotals::default();
        for agent in 0..self.agents {
            for conn in 0..self.connections {
                for op in self.stream(agent, conn, self.ops_per_conn) {
                    match op {
                        PlannedOp::Put { side, .. } => {
                            t.puts += 1;
                            t.put_bytes += 8 * u64::from(side).pow(3);
                        }
                        PlannedOp::Get => t.gets += 1,
                        PlannedOp::Drain => t.drains += 1,
                    }
                }
            }
        }
        t
    }
}

/// Totals of a replayed spec (see [`WorkloadSpec::expected_totals`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecTotals {
    /// Put operations across all agents and connections.
    pub puts: u64,
    /// Get operations.
    pub gets: u64,
    /// Drain operations.
    pub drains: u64,
    /// Exact payload bytes the puts deliver.
    pub put_bytes: u64,
}

/// One operation a connection worker will perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedOp {
    /// Store a `side³`-cell cube under name index `name_idx`, its box
    /// origin at `origin` (units of the shard-map span).
    Put {
        /// Which of the spec's `names` this object goes under.
        name_idx: u32,
        /// Cube side in cells.
        side: u32,
        /// Box origin in span-sized buckets per axis.
        origin: [u32; 3],
    },
    /// Fetch this connection's most recent put.
    Get,
    /// Trim this connection's names down to `retain_versions` versions.
    Drain,
}

/// Deterministic per-connection operation stream. The first operation of
/// a stream is always a put (a get or drain before any put would have
/// nothing to address), after which the weighted mix applies.
pub struct OpStream {
    state: u64,
    remaining: u64,
    puts_done: u64,
    side_min: u64,
    side_span: u64,
    names: u64,
    spread: u64,
    wp: u64,
    wg: u64,
    wd: u64,
}

impl OpStream {
    fn new(spec: &WorkloadSpec, agent: u32, conn: u32, ops: u64) -> Self {
        // Same LCG constants as the rest of the workspace; the stream id
        // is folded in with odd multipliers so neighbouring (agent, conn)
        // pairs land in unrelated parts of the sequence.
        let mut state = spec
            .seed
            .wrapping_add(u64::from(agent).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(conn).wrapping_mul(0xD2B7_4407_B1CE_6E93));
        state = lcg(lcg(state));
        // The `.max(1)` floors make the stream total even on a spec built
        // programmatically without `parse`'s validation — modulo by zero
        // must be unreachable.
        OpStream {
            state,
            remaining: ops,
            puts_done: 0,
            side_min: u64::from(spec.side_min.max(1)),
            side_span: u64::from(spec.side_max.saturating_sub(spec.side_min)) + 1,
            names: u64::from(spec.names.max(1)),
            spread: u64::from(spec.spread.max(1)),
            wp: u64::from(spec.put_weight.max(1)),
            wg: u64::from(spec.get_weight),
            wd: u64::from(spec.drain_weight),
        }
    }

    fn draw(&mut self) -> u64 {
        self.state = lcg(self.state);
        // The low bits of a pure LCG are weak; mix the halves.
        (self.state >> 33) ^ self.state
    }
}

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

impl Iterator for OpStream {
    type Item = PlannedOp;

    fn next(&mut self) -> Option<PlannedOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let total = self.wp + self.wg + self.wd;
        let r = self.draw() % total;
        let put = r < self.wp || self.puts_done == 0;
        if put {
            self.puts_done += 1;
            let side = (self.side_min + self.draw() % self.side_span) as u32;
            let name_idx = (self.draw() % self.names) as u32;
            let origin = [
                (self.draw() % self.spread) as u32,
                (self.draw() % self.spread) as u32,
                (self.draw() % self.spread) as u32,
            ];
            Some(PlannedOp::Put {
                name_idx,
                side,
                origin,
            })
        } else if r < self.wp + self.wg {
            Some(PlannedOp::Get)
        } else {
            Some(PlannedOp::Drain)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOLDEN: &str = "\
# saturation workload, two shards
[workload]
seed = 7
agents = 2
connections = 3
ops_per_conn = 50
put_weight = 6
get_weight = 2
drain_weight = 1
side_min = 4
side_max = 9
names = 2
targets = 127.0.0.1:7001, 127.0.0.1:7002
span = 32
";

    #[test]
    fn golden_spec_parses() {
        let spec = WorkloadSpec::parse(GOLDEN).unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.agents, 2);
        assert_eq!(spec.connections, 3);
        assert_eq!(spec.ops_per_conn, 50);
        assert_eq!(spec.put_weight, 6);
        assert_eq!(spec.get_weight, 2);
        assert_eq!(spec.drain_weight, 1);
        assert_eq!(spec.side_min, 4);
        assert_eq!(spec.side_max, 9);
        assert_eq!(spec.names, 2);
        assert_eq!(spec.targets, vec!["127.0.0.1:7001", "127.0.0.1:7002"]);
        assert_eq!(spec.span, 32);
        // Unset keys keep their defaults.
        assert_eq!(spec.warmup_ops, WorkloadSpec::default().warmup_ops);
        assert_eq!(spec.max_retries, WorkloadSpec::default().max_retries);
    }

    #[test]
    fn canonical_text_roundtrips() {
        let spec = WorkloadSpec::parse(GOLDEN).unwrap();
        let back = WorkloadSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(spec, back);
        let dflt = WorkloadSpec::default();
        assert_eq!(WorkloadSpec::parse(&dflt.to_text()).unwrap(), dflt);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        // Not key = value.
        assert!(matches!(
            WorkloadSpec::parse("seed 42"),
            Err(SpecError::Malformed { line: 1, .. })
        ));
        // Unknown key.
        assert!(matches!(
            WorkloadSpec::parse("sede = 42"),
            Err(SpecError::UnknownKey { .. })
        ));
        // Duplicate key.
        assert!(matches!(
            WorkloadSpec::parse("seed = 1\nseed = 2"),
            Err(SpecError::Duplicate { .. })
        ));
        // Unparseable value.
        assert!(matches!(
            WorkloadSpec::parse("seed = banana"),
            Err(SpecError::BadValue { .. })
        ));
        // Structural violations.
        assert!(matches!(
            WorkloadSpec::parse("connections = 0"),
            Err(SpecError::Invalid { .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("side_min = 9\nside_max = 4"),
            Err(SpecError::Invalid { .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("put_weight = 0"),
            Err(SpecError::Invalid { .. })
        ));
    }

    #[test]
    fn streams_are_deterministic_and_start_with_put() {
        let spec = WorkloadSpec::parse(GOLDEN).unwrap();
        for agent in 0..spec.agents {
            for conn in 0..spec.connections {
                let a: Vec<PlannedOp> = spec.stream(agent, conn, 20).collect();
                let b: Vec<PlannedOp> = spec.stream(agent, conn, 20).collect();
                assert_eq!(a, b);
                assert!(matches!(a.first(), Some(PlannedOp::Put { .. })));
                for op in &a {
                    if let PlannedOp::Put {
                        name_idx,
                        side,
                        origin,
                    } = op
                    {
                        assert!(*name_idx < spec.names);
                        assert!(*side >= spec.side_min && *side <= spec.side_max);
                        assert!(origin.iter().all(|&o| o < spec.spread));
                    }
                }
            }
        }
        // Distinct connections get distinct streams (overwhelmingly).
        let a: Vec<PlannedOp> = spec.stream(0, 0, 20).collect();
        let b: Vec<PlannedOp> = spec.stream(0, 1, 20).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn expected_totals_match_a_manual_replay() {
        let spec = WorkloadSpec::parse(GOLDEN).unwrap();
        let t = spec.expected_totals();
        assert_eq!(
            t.puts + t.gets + t.drains,
            u64::from(spec.agents) * u64::from(spec.connections) * spec.ops_per_conn
        );
        let mut put_bytes = 0u64;
        for agent in 0..spec.agents {
            for conn in 0..spec.connections {
                for op in spec.stream(agent, conn, spec.ops_per_conn) {
                    if let PlannedOp::Put { side, .. } = op {
                        put_bytes += 8 * u64::from(side).pow(3);
                    }
                }
            }
        }
        assert_eq!(t.put_bytes, put_bytes);
        assert!(t.puts > 0 && t.put_bytes > 0);
    }
}
