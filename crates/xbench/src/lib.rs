//! xbench: distributed load generation for the staging wire.
//!
//! The cross-layer adaptations in this workspace only matter under load,
//! and a single client process cannot drive a sharded, tiered staging
//! cluster to saturation. xbench splits the problem the way fleet-scale
//! measurement planes do:
//!
//! - [`agent`] — `xbench-agent`, a process that opens many concurrent
//!   connections (thread-per-connection over the existing
//!   [`xlayer_net::RemoteClient`] / [`xlayer_net::ShardedClient`]) and
//!   replays an AMR-realistic workload mix: put/get/drain ratios and
//!   object-size distributions drawn from a seeded LCG, whole-object and
//!   chunked transfer paths, and tier pressure via oversized working
//!   sets.
//! - [`ctl`] — `xbench-ctl`, the controller: fans a declarative workload
//!   spec out to agents over a versioned length-prefixed control
//!   protocol, runs timed phases (warmup → measure → drain), merges
//!   per-agent results (log-bucket histograms fold with
//!   [`xlayer_net::Hist::merge`]), and steps offered load in a closed
//!   loop until goodput stops improving — the saturation curve.
//! - [`spec`] — the workload spec: a hand-rolled `key = value`
//!   TOML-subset parser (no new dependencies) plus the deterministic
//!   per-connection operation stream, so a controller can predict the
//!   exact bytes a seeded workload will deliver.
//! - [`proto`] — the control protocol frames, reusing the staging wire's
//!   framing conventions (magic, version, opcode, request id, length,
//!   FNV-1a checksum) with its own magic so the two wires can never be
//!   confused.
//!
//! Everything is `std::net` blocking sockets plus threads, like the
//! staging wire itself; the workspace stays free of async runtimes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod ctl;
pub mod proto;
pub mod spec;

pub use agent::AgentServer;
pub use ctl::{AgentConn, MergedReport, SweepOptions, SweepResult, SweepRow};
pub use proto::{AgentReport, CtlError, CtlRequest, CtlResponse, Phase, RunCmd};
pub use spec::{PlannedOp, SpecError, SpecTotals, WorkloadSpec};
