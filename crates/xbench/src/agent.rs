//! The xbench agent: a TCP server that executes workload phases.
//!
//! An agent binds one control listener and waits for a controller. Each
//! `Run` command spawns one worker thread per spec'd connection — the
//! thread-per-connection shape of the staging service mirrored on the
//! client side — and every worker owns its own [`RemoteClient`] (one
//! target) or [`ShardedClient`] (a `remote:`-style shard list), so its
//! connection pools, retry counters, and latency histograms are private
//! to that connection and sum cleanly into the phase's [`AgentReport`].
//!
//! Workers replay the deterministic per-connection op stream from
//! [`crate::spec`]: puts build AMR-shaped cube objects (chunked or whole
//! depending on size vs. the spec's `chunk_threshold`), gets fetch the
//! connection's most recent put through the same scatter/gather path a
//! consumer would use, and drains trim version history with `Delete` ops.
//! Offered load is paced by sleeping whenever delivered put bytes run
//! ahead of the commanded rate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::Bytes;
use xlayer_amr::boxes::IBox;
use xlayer_amr::intvect::IntVect;
use xlayer_net::client::ClientStats;
use xlayer_net::hist::Hist;
use xlayer_net::{ClientConfig, RemoteClient, RemoteError, ShardedClient};
use xlayer_staging::{DataObject, ObjectDesc, ObjectKey};

use crate::proto::{
    decode_ctl_header, verify_ctl_payload, AgentReport, CtlError, CtlRequest, CtlResponse, Phase,
    RunCmd, HEADER_LEN,
};
use crate::spec::{PlannedOp, WorkloadSpec};

/// Nanoseconds since `t0`, saturating (same contract as the net crate's).
fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// One staging client for a load worker: single service or shard list.
enum LoadClient {
    Single(RemoteClient),
    Sharded(ShardedClient),
}

/// How a load op failed, reduced to what the report distinguishes.
enum OpFail {
    /// The staging memory cap rejected the op (policy signal).
    Oom,
    /// Anything else that outlasted the retries.
    Other,
}

fn classify(e: &RemoteError) -> OpFail {
    match e {
        RemoteError::OutOfMemory { .. } => OpFail::Oom,
        _ => OpFail::Other,
    }
}

impl LoadClient {
    fn connect(spec: &WorkloadSpec) -> std::io::Result<LoadClient> {
        let cfg = ClientConfig {
            max_retries: spec.max_retries,
            chunk_threshold: spec.chunk_threshold,
            ..ClientConfig::default()
        };
        match spec.targets.as_slice() {
            [] => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "spec has no targets",
            )),
            [one] => RemoteClient::connect(one, cfg).map(LoadClient::Single),
            many => ShardedClient::connect(many, spec.span, cfg).map(LoadClient::Sharded),
        }
    }

    fn put(&self, obj: &DataObject) -> Result<(), OpFail> {
        match self {
            LoadClient::Single(c) => c.put(obj).map(|_| ()).map_err(|e| classify(&e)),
            LoadClient::Sharded(c) => c.put(obj).map(|_| ()).map_err(|e| classify(&e.source)),
        }
    }

    /// Fetch `(name, version)` clipped to `query`; returns payload bytes
    /// received.
    fn get(&self, name: &str, version: u64, query: IBox) -> Result<u64, OpFail> {
        let objs = match self {
            LoadClient::Single(c) => c
                .get(name, version, Some(query))
                .map_err(|e| classify(&e))?,
            LoadClient::Sharded(c) => c
                .get(name, version, Some(query))
                .map_err(|e| classify(&e.source))?,
        };
        Ok(objs.iter().map(|o| o.desc.bytes).sum())
    }

    fn evict_before(&self, name: &str, before_version: u64) -> Result<(), OpFail> {
        match self {
            LoadClient::Single(c) => c
                .evict_before(name, before_version)
                .map(|_| ())
                .map_err(|e| classify(&e)),
            LoadClient::Sharded(c) => c
                .evict_before(name, before_version)
                .map(|_| ())
                .map_err(|e| classify(&e.source)),
        }
    }

    fn stats(&self) -> ClientStats {
        match self {
            LoadClient::Single(c) => c.client_stats(),
            LoadClient::Sharded(c) => c.client_stats_total(),
        }
    }
}

/// The shared object names the workload cycles through.
fn object_name(name_idx: u32) -> String {
    format!("xb{name_idx}")
}

/// Build the put object for one planned op: a `side³`-cell cube whose
/// box origin lands in span-sized placement bucket `origin`, so puts
/// scatter across a sharded cluster's `ShardMap`.
fn build_object(
    spec: &WorkloadSpec,
    name_idx: u32,
    version: u64,
    side: u32,
    origin: [u32; 3],
    origin_rank: usize,
) -> Option<DataObject> {
    let side = i64::from(side.max(1));
    let [ox, oy, oz] = origin;
    let lo = IntVect::new(
        i64::from(ox) * spec.span,
        i64::from(oy) * spec.span,
        i64::from(oz) * spec.span,
    );
    let bbox = IBox::new(lo, lo + IntVect::splat(side - 1));
    let bytes = bbox.num_cells().checked_mul(8)?;
    let desc = ObjectDesc {
        key: ObjectKey::new(object_name(name_idx), version),
        bbox,
        core: bbox,
        dx: 1.0,
        bytes,
        origin_rank,
    };
    DataObject::from_wire(desc, Bytes::from(vec![0u8; bytes as usize]))
}

/// Everything one connection worker accumulated.
#[derive(Default)]
struct WorkerOut {
    puts: u64,
    gets: u64,
    drains: u64,
    put_bytes: u64,
    get_bytes: u64,
    rejected_oom: u64,
    failed: u64,
    put_ns: Hist,
    get_ns: Hist,
    stats: ClientStats,
}

/// Replay one connection's op stream against the cluster.
fn run_worker(
    spec: &WorkloadSpec,
    agent_index: u32,
    conn: u32,
    ops: u64,
    version_base: u64,
    rate_bytes_per_sec: u64,
) -> WorkerOut {
    let mut out = WorkerOut::default();
    let client = match LoadClient::connect(spec) {
        Ok(c) => c,
        Err(_) => {
            out.failed = ops;
            return out;
        }
    };
    let origin_rank = (agent_index as usize) * (spec.connections as usize) + conn as usize;
    // Puts-so-far per name on this connection; version = base + count.
    let mut put_counts: Vec<u64> = vec![0; spec.names as usize];
    let mut last_put: Option<(u32, u64, IBox)> = None;
    let t0 = Instant::now();
    for op in spec.stream(agent_index, conn, ops) {
        match op {
            PlannedOp::Put {
                name_idx,
                side,
                origin,
            } => {
                let count = put_counts.get(name_idx as usize).copied().unwrap_or(0);
                let version = version_base + count;
                let Some(obj) = build_object(spec, name_idx, version, side, origin, origin_rank)
                else {
                    out.failed += 1;
                    continue;
                };
                let bytes = obj.desc.bytes;
                if rate_bytes_per_sec > 0 {
                    // Offered-load pacing: sleep while delivered bytes run
                    // ahead of the commanded rate.
                    let target_ns = (u128::from(out.put_bytes) * 1_000_000_000
                        / u128::from(rate_bytes_per_sec))
                    .min(u64::MAX as u128) as u64;
                    let now_ns = elapsed_ns(t0);
                    if target_ns > now_ns {
                        std::thread::sleep(Duration::from_nanos(target_ns - now_ns));
                    }
                }
                let t = Instant::now();
                match client.put(&obj) {
                    Ok(()) => {
                        out.put_ns.record(elapsed_ns(t));
                        out.puts += 1;
                        out.put_bytes += bytes;
                        if let Some(c) = put_counts.get_mut(name_idx as usize) {
                            *c += 1;
                        }
                        last_put = Some((name_idx, version, obj.desc.bbox));
                    }
                    Err(OpFail::Oom) => out.rejected_oom += 1,
                    Err(OpFail::Other) => out.failed += 1,
                }
            }
            PlannedOp::Get => {
                let Some((name_idx, version, bbox)) = last_put else {
                    // Only reachable when this stream's first put failed.
                    out.failed += 1;
                    continue;
                };
                let t = Instant::now();
                match client.get(&object_name(name_idx), version, bbox) {
                    Ok(bytes) => {
                        out.get_ns.record(elapsed_ns(t));
                        out.gets += 1;
                        out.get_bytes += bytes;
                    }
                    Err(OpFail::Oom) => out.rejected_oom += 1,
                    Err(OpFail::Other) => out.failed += 1,
                }
            }
            PlannedOp::Drain => {
                // Trim every name this connection wrote down to the spec's
                // retained version window.
                let mut ok = true;
                for (ni, &count) in put_counts.iter().enumerate() {
                    if count <= spec.retain_versions {
                        continue;
                    }
                    let before = version_base + count - spec.retain_versions;
                    if client
                        .evict_before(&object_name(ni as u32), before)
                        .is_err()
                    {
                        ok = false;
                    }
                }
                if ok {
                    out.drains += 1;
                } else {
                    out.failed += 1;
                }
            }
        }
    }
    out.stats = client.stats();
    out
}

/// Execute one phase and build its report.
fn run_phase(cmd: &RunCmd) -> Result<AgentReport, CtlError> {
    let spec = cmd.spec()?;
    let t0 = Instant::now();
    let mut report = AgentReport::default();
    match cmd.phase {
        Phase::Drain => {
            // One client, evict every workload name wholesale.
            let client = LoadClient::connect(&spec).map_err(CtlError::from)?;
            for ni in 0..spec.names {
                match client.evict_before(&object_name(ni), u64::MAX) {
                    Ok(()) => report.drains += 1,
                    Err(_) => report.failed += 1,
                }
            }
            report.retries_busy = client.stats().retries_busy;
            report.retries_io = client.stats().retries_io;
            report.retries_wire = client.stats().retries_wire;
        }
        Phase::Warmup | Phase::Measure => {
            let ops = match cmd.phase {
                Phase::Warmup => spec.warmup_ops,
                _ => spec.ops_per_conn,
            };
            let rate_per_conn = cmd.rate_bytes_per_sec / u64::from(spec.connections.max(1));
            let outs: Vec<WorkerOut> = std::thread::scope(|s| {
                let spec = &spec;
                let handles: Vec<_> = (0..spec.connections)
                    .map(|conn| {
                        s.spawn(move || {
                            run_worker(
                                spec,
                                cmd.agent_index,
                                conn,
                                ops,
                                cmd.version_base,
                                rate_per_conn,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_default())
                    .collect()
            });
            for w in outs {
                report.puts += w.puts;
                report.gets += w.gets;
                report.drains += w.drains;
                report.put_bytes += w.put_bytes;
                report.get_bytes += w.get_bytes;
                report.rejected_oom += w.rejected_oom;
                report.failed += w.failed;
                report.retries_busy += w.stats.retries_busy;
                report.retries_io += w.stats.retries_io;
                report.retries_wire += w.stats.retries_wire;
                report.put_ns.merge(&w.put_ns);
                report.get_ns.merge(&w.get_ns);
            }
        }
    }
    report.elapsed_ns = elapsed_ns(t0);
    Ok(report)
}

/// A bound xbench agent, ready to serve one controller at a time.
pub struct AgentServer {
    listener: TcpListener,
    addr: SocketAddr,
    name: String,
}

impl AgentServer {
    /// Bind the control listener (port 0 picks an ephemeral port).
    pub fn bind(listen: &str, name: &str) -> std::io::Result<AgentServer> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        Ok(AgentServer {
            listener,
            addr,
            name: name.to_string(),
        })
    }

    /// The bound control address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve controllers until one sends `Stop`. Controller connections
    /// are served one at a time — phases are blocking RPCs, and two
    /// controllers driving one agent would corrupt each other's
    /// measurements anyway.
    pub fn serve(&self) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.serve_controller(stream) {
                return Ok(());
            }
        }
    }

    /// Serve one controller connection; `true` means Stop was received.
    fn serve_controller(&self, mut stream: TcpStream) -> bool {
        let _ = stream.set_nodelay(true);
        loop {
            let mut header_buf = [0u8; HEADER_LEN];
            if stream.read_exact(&mut header_buf).is_err() {
                return false; // controller went away; await the next one
            }
            let header = match decode_ctl_header(&header_buf) {
                Ok(h) => h,
                Err(e) => {
                    // Framing is unrecoverable; answer once and drop.
                    let _ = stream.write_all(
                        &CtlResponse::Error {
                            detail: e.to_string(),
                        }
                        .encode(0),
                    );
                    return false;
                }
            };
            let mut payload = vec![0u8; header.payload_len as usize];
            if stream.read_exact(&mut payload).is_err() {
                return false;
            }
            let request = verify_ctl_payload(&header, &payload)
                .and_then(|()| CtlRequest::decode_body(header.opcode, &payload));
            let (response, stop) = match request {
                Err(e) => (
                    CtlResponse::Error {
                        detail: e.to_string(),
                    },
                    false,
                ),
                Ok(CtlRequest::Hello) => (
                    CtlResponse::HelloOk {
                        agent: self.name.clone(),
                    },
                    false,
                ),
                Ok(CtlRequest::Stop) => (CtlResponse::StopOk, true),
                Ok(CtlRequest::Run(cmd)) => match run_phase(&cmd) {
                    Ok(report) => (CtlResponse::RunOk(Box::new(report)), false),
                    Err(e) => (
                        CtlResponse::Error {
                            detail: e.to_string(),
                        },
                        false,
                    ),
                },
            };
            if stream
                .write_all(&response.encode(header.request_id))
                .is_err()
            {
                return stop;
            }
            if stop {
                return true;
            }
        }
    }
}
