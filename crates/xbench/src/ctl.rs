//! The xbench controller: fan-out, phase sequencing, merging, and the
//! saturation sweep.
//!
//! A controller holds one [`AgentConn`] per agent and drives every phase
//! on all of them concurrently (one driver thread per agent — the control
//! RPC blocks for the whole phase). Phase reports merge by summing
//! counters and folding the log-bucket latency histograms with
//! [`Hist::merge`], so fleet-wide percentiles come from exact bucket
//! counts rather than averaged per-agent quantiles.
//!
//! [`saturation_sweep`] is the closed loop from the paper's evaluation
//! methodology: offered load doubles each step (warmup → measure → drain
//! per step), Busy-frame counts are sampled from every staging shard
//! around the measure window, and the sweep stops once goodput stops
//! improving. The knee — the last offered load that still bought a real
//! goodput increase — is the headline number, alongside saturated
//! goodput and retry amplification (wire ops per completed op).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use xlayer_net::hist::LatencySnapshot;
use xlayer_net::{ClientConfig, Hist, RemoteClient};

use crate::proto::{
    decode_ctl_header, verify_ctl_payload, AgentReport, CtlError, CtlRequest, CtlResponse, Phase,
    RunCmd, HEADER_LEN,
};
use crate::spec::WorkloadSpec;

const MIB: f64 = (1u64 << 20) as f64;

/// One controller-side connection to an agent.
pub struct AgentConn {
    stream: TcpStream,
    next_id: u64,
    name: String,
}

impl AgentConn {
    /// Connect and handshake. `hello_timeout` bounds the handshake only;
    /// the read timeout is lifted afterwards because `Run` responses
    /// arrive only when a whole phase finishes.
    pub fn connect(addr: &str, hello_timeout: Duration) -> Result<AgentConn, CtlError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(hello_timeout))?;
        let mut conn = AgentConn {
            stream,
            next_id: 1,
            name: String::new(),
        };
        match conn.call(&CtlRequest::Hello)? {
            CtlResponse::HelloOk { agent } => conn.name = agent,
            CtlResponse::Error { detail } => return Err(CtlError::Remote { detail }),
            _ => {
                return Err(CtlError::Malformed {
                    detail: "hello answered with a non-hello response".to_string(),
                })
            }
        }
        conn.stream.set_read_timeout(None)?;
        Ok(conn)
    }

    /// The name the agent introduced itself with.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn call(&mut self, req: &CtlRequest) -> Result<CtlResponse, CtlError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&req.encode(id))?;
        let mut header_buf = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut header_buf)?;
        let header = decode_ctl_header(&header_buf)?;
        if header.request_id != id {
            return Err(CtlError::Malformed {
                detail: format!("response id {} for request {id}", header.request_id),
            });
        }
        let mut payload = vec![0u8; header.payload_len as usize];
        self.stream.read_exact(&mut payload)?;
        verify_ctl_payload(&header, &payload)?;
        CtlResponse::decode_body(header.opcode, &payload)
    }

    /// Run one phase to completion on this agent.
    pub fn run(&mut self, cmd: RunCmd) -> Result<AgentReport, CtlError> {
        match self.call(&CtlRequest::Run(cmd))? {
            CtlResponse::RunOk(report) => Ok(*report),
            CtlResponse::Error { detail } => Err(CtlError::Remote { detail }),
            _ => Err(CtlError::Malformed {
                detail: "run answered with a non-run response".to_string(),
            }),
        }
    }

    /// Tell the agent to exit its serve loop.
    pub fn stop(&mut self) -> Result<(), CtlError> {
        match self.call(&CtlRequest::Stop)? {
            CtlResponse::StopOk => Ok(()),
            CtlResponse::Error { detail } => Err(CtlError::Remote { detail }),
            _ => Err(CtlError::Malformed {
                detail: "stop answered with a non-stop response".to_string(),
            }),
        }
    }
}

/// Fleet-wide totals for one phase across all agents.
#[derive(Debug, Default, Clone)]
pub struct MergedReport {
    /// Reports merged.
    pub agents: usize,
    /// Longest per-agent wall time, ns (agents run concurrently).
    pub elapsed_ns: u64,
    /// Whole objects stored.
    pub puts: u64,
    /// Get round-trips completed.
    pub gets: u64,
    /// Drain (version-trim) rounds completed.
    pub drains: u64,
    /// Payload bytes delivered by puts.
    pub put_bytes: u64,
    /// Payload bytes returned by gets.
    pub get_bytes: u64,
    /// Ops refused by the staging memory cap.
    pub rejected_oom: u64,
    /// Ops that failed for any other reason.
    pub failed: u64,
    /// Retries after Busy refusals.
    pub retries_busy: u64,
    /// Retries after transient I/O errors.
    pub retries_io: u64,
    /// Retries after wire decode errors.
    pub retries_wire: u64,
    /// Merged put latency histogram.
    pub put_ns: Hist,
    /// Merged get latency histogram.
    pub get_ns: Hist,
}

impl MergedReport {
    /// Ops that finished successfully.
    pub fn completed(&self) -> u64 {
        self.puts + self.gets + self.drains
    }

    /// All retries, regardless of cause.
    pub fn retries(&self) -> u64 {
        self.retries_busy + self.retries_io + self.retries_wire
    }

    /// Wire attempts per completed op: `1 + retries / completed`. Exactly
    /// 1.0 means no retry ever fired; the floor keeps the metric positive
    /// for the bench-schema gate.
    pub fn retry_amplification(&self) -> f64 {
        let completed = self.completed();
        if completed == 0 {
            return 1.0;
        }
        1.0 + self.retries() as f64 / completed as f64
    }
}

/// Sum counters and fold histograms across per-agent reports.
pub fn merge_reports(reports: &[AgentReport]) -> MergedReport {
    let mut m = MergedReport {
        agents: reports.len(),
        ..MergedReport::default()
    };
    for r in reports {
        m.elapsed_ns = m.elapsed_ns.max(r.elapsed_ns);
        m.puts += r.puts;
        m.gets += r.gets;
        m.drains += r.drains;
        m.put_bytes += r.put_bytes;
        m.get_bytes += r.get_bytes;
        m.rejected_oom += r.rejected_oom;
        m.failed += r.failed;
        m.retries_busy += r.retries_busy;
        m.retries_io += r.retries_io;
        m.retries_wire += r.retries_wire;
        m.put_ns.merge(&r.put_ns);
        m.get_ns.merge(&r.get_ns);
    }
    m
}

/// Knobs for [`saturation_sweep`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Offered put-byte rate per agent at step 0 (doubles each step).
    pub start_rate_bytes_per_sec: u64,
    /// Step ceiling — the sweep usually stops earlier, at the knee.
    pub max_steps: u32,
    /// Minimum fractional goodput improvement that keeps the sweep going.
    pub improve_frac: f64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            start_rate_bytes_per_sec: 8 << 20,
            max_steps: 6,
            improve_frac: 0.05,
        }
    }
}

/// One measured point on the saturation curve.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Offered load across all agents, MiB/s.
    pub offered_mibps: f64,
    /// Delivered put+get payload bytes per second, MiB/s.
    pub goodput_mibps: f64,
    /// Fleet-wide put latency percentiles.
    pub put_lat: LatencySnapshot,
    /// Fleet-wide get latency percentiles.
    pub get_lat: LatencySnapshot,
    /// Busy refusal frames per second across all shards.
    pub busy_per_sec: f64,
    /// Wire attempts per completed op in this step.
    pub retry_amplification: f64,
    /// Ops refused by the staging memory cap.
    pub rejected_oom: u64,
    /// Ops that failed outright.
    pub failed: u64,
}

/// The saturation curve plus its headline numbers.
#[derive(Debug, Clone, Default)]
pub struct SweepResult {
    /// One row per offered-load step, in sweep order.
    pub rows: Vec<SweepRow>,
    /// Offered load at the knee (best-goodput row), MiB/s.
    pub knee_offered_mibps: f64,
    /// Goodput at the knee, MiB/s.
    pub saturation_goodput_mibps: f64,
    /// Wire attempts per completed op across every measure phase.
    pub retry_amplification: f64,
    /// Busy frames counted across all shards over all measure phases.
    pub busy_frames_total: u64,
}

/// Drive `phase` on every agent concurrently and collect the reports.
fn run_phase_on_all(
    agents: &mut [AgentConn],
    phase: Phase,
    spec_text: &str,
    version_base: u64,
    rate_bytes_per_sec: u64,
) -> Result<Vec<AgentReport>, CtlError> {
    let results: Vec<Result<AgentReport, CtlError>> = std::thread::scope(|s| {
        let handles: Vec<_> = agents
            .iter_mut()
            .enumerate()
            .map(|(i, conn)| {
                let cmd = RunCmd {
                    phase,
                    agent_index: i as u32,
                    version_base,
                    rate_bytes_per_sec,
                    spec_text: spec_text.to_string(),
                };
                s.spawn(move || conn.run(cmd))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(CtlError::Io {
                        detail: "agent driver thread panicked".to_string(),
                    })
                })
            })
            .collect()
    });
    results.into_iter().collect()
}

/// Busy-frame total across every staging shard right now.
fn busy_frames(stats_clients: &[RemoteClient]) -> u64 {
    stats_clients
        .iter()
        .filter_map(|c| c.service_stats().ok())
        .map(|s| s.busy_frames)
        .sum()
}

/// Step offered load until goodput stops improving.
///
/// Each step runs warmup → measure → drain on every agent; Busy frames
/// are sampled from the shards around the measure window; the knee is
/// the offered load of the best-goodput row. Version bases advance
/// monotonically across phases so no step ever collides with a previous
/// step's keys, and the drain phase empties the store between steps.
pub fn saturation_sweep(
    agents: &mut [AgentConn],
    spec: &WorkloadSpec,
    opts: &SweepOptions,
) -> Result<SweepResult, CtlError> {
    let spec_text = spec.to_text();
    let mut stats_clients = Vec::with_capacity(spec.targets.len());
    for t in &spec.targets {
        stats_clients.push(RemoteClient::connect(t, ClientConfig::default())?);
    }
    // Upper bound on versions one phase can mint per name: its op count.
    let phase_span = spec.warmup_ops.max(spec.ops_per_conn) + 1;
    let mut version_base = 1u64;
    let mut result = SweepResult::default();
    let mut total_retries = 0u64;
    let mut total_completed = 0u64;
    let mut best_goodput = 0.0f64;
    for step in 0..opts.max_steps {
        let rate = opts
            .start_rate_bytes_per_sec
            .checked_shl(step)
            .unwrap_or(u64::MAX);
        run_phase_on_all(agents, Phase::Warmup, &spec_text, version_base, rate)?;
        version_base += phase_span;
        let busy_before = busy_frames(&stats_clients);
        let reports = run_phase_on_all(agents, Phase::Measure, &spec_text, version_base, rate)?;
        let busy_delta = busy_frames(&stats_clients).saturating_sub(busy_before);
        version_base += phase_span;
        run_phase_on_all(agents, Phase::Drain, &spec_text, version_base, 0)?;
        let merged = merge_reports(&reports);
        let elapsed_s = (merged.elapsed_ns.max(1)) as f64 / 1e9;
        let row = SweepRow {
            offered_mibps: rate as f64 * agents.len() as f64 / MIB,
            goodput_mibps: (merged.put_bytes + merged.get_bytes) as f64 / MIB / elapsed_s,
            put_lat: merged.put_ns.snapshot(),
            get_lat: merged.get_ns.snapshot(),
            busy_per_sec: busy_delta as f64 / elapsed_s,
            retry_amplification: merged.retry_amplification(),
            rejected_oom: merged.rejected_oom,
            failed: merged.failed,
        };
        total_retries += merged.retries();
        total_completed += merged.completed();
        result.busy_frames_total += busy_delta;
        let goodput = row.goodput_mibps;
        result.rows.push(row);
        if goodput > best_goodput {
            let improved = goodput >= best_goodput * (1.0 + opts.improve_frac);
            best_goodput = goodput;
            result.saturation_goodput_mibps = goodput;
            result.knee_offered_mibps = rate as f64 * agents.len() as f64 / MIB;
            if !improved && step > 0 {
                break; // gain under the improvement threshold: knee found
            }
        } else if step > 0 {
            break; // goodput flat or falling: past the knee
        }
    }
    result.retry_amplification = if total_completed == 0 {
        1.0
    } else {
        1.0 + total_retries as f64 / total_completed as f64
    };
    Ok(result)
}

/// A finite, positive-friendly rendering for the JSON writer: non-finite
/// values (impossible in a completed sweep, but the writer never panics)
/// clamp to 0.
fn fin(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn push_lat(out: &mut String, key: &str, lat: &LatencySnapshot) {
    out.push_str(&format!(
        "\"{key}\":{{\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
        lat.count, lat.p50_ns, lat.p95_ns, lat.p99_ns, lat.max_ns
    ));
}

/// Render a sweep as bench_summary-style JSON: a `rows` array for the
/// curve and a `benches` object carrying the three pinned xbench keys.
pub fn summary_json(result: &SweepResult) -> String {
    let mut out = String::from("{\n  \"unit\": \"mibps\",\n  \"rows\": [\n");
    for (i, row) in result.rows.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"offered_mibps\":{:.6},\"goodput_mibps\":{:.6},\"busy_per_sec\":{:.6},\
             \"retry_amplification\":{:.6},\"rejected_oom\":{},\"failed\":{},",
            fin(row.offered_mibps),
            fin(row.goodput_mibps),
            fin(row.busy_per_sec),
            fin(row.retry_amplification),
            row.rejected_oom,
            row.failed
        ));
        push_lat(&mut out, "put_lat", &row.put_lat);
        out.push(',');
        push_lat(&mut out, "get_lat", &row.get_lat);
        out.push('}');
        if i + 1 < result.rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"benches\": {\n");
    out.push_str(&format!(
        "    \"xbench_saturation_goodput_mibps\": {:.6},\n",
        fin(result.saturation_goodput_mibps)
    ));
    out.push_str(&format!(
        "    \"xbench_knee_offered_load\": {:.6},\n",
        fin(result.knee_offered_mibps)
    ));
    out.push_str(&format!(
        "    \"xbench_retry_amplification\": {:.6}\n",
        fin(result.retry_amplification)
    ));
    out.push_str("  }\n}\n");
    out
}

/// A loopback fixture: an in-process staging cluster plus in-process
/// agents, swept end to end. Returns the sweep (for assertions or JSON)
/// after stopping the agents and shutting the cluster down.
///
/// This is what `xbench-ctl --smoke` runs in CI: no external processes,
/// ephemeral ports only, a couple of seconds of wall time.
pub fn run_loopback_sweep(
    shards: usize,
    n_agents: usize,
    spec_base: &WorkloadSpec,
    opts: &SweepOptions,
) -> Result<SweepResult, CtlError> {
    use xlayer_net::service::ServiceConfig;
    use xlayer_net::StagingCluster;

    let cluster = StagingCluster::start(shards, &ServiceConfig::default())?;
    let mut spec = spec_base.clone();
    spec.targets = cluster.addrs();
    let mut servers = Vec::with_capacity(n_agents);
    let mut threads = Vec::with_capacity(n_agents);
    for i in 0..n_agents {
        let server = std::sync::Arc::new(crate::agent::AgentServer::bind(
            "127.0.0.1:0",
            &format!("smoke-{i}"),
        )?);
        let addr = server.local_addr();
        let srv = std::sync::Arc::clone(&server);
        threads.push(std::thread::spawn(move || {
            let _ = srv.serve();
        }));
        servers.push((server, addr));
    }
    let mut agents = Vec::with_capacity(n_agents);
    for (_, addr) in &servers {
        agents.push(AgentConn::connect(
            &addr.to_string(),
            Duration::from_secs(5),
        )?);
    }
    let swept = saturation_sweep(&mut agents, &spec, opts);
    for conn in &mut agents {
        let _ = conn.stop();
    }
    for t in threads {
        let _ = t.join();
    }
    cluster.shutdown();
    swept
}

/// The CI smoke configuration: 2 shards, 2 agents, a small deterministic
/// spec, 2 sweep steps. Checks the invariants the issue pins — rows
/// non-empty, monotone offered load, positive knee and goodput, puts
/// actually landed — and returns the sweep for JSON rendering.
pub fn run_smoke() -> Result<SweepResult, CtlError> {
    let spec = WorkloadSpec {
        seed: 7,
        agents: 2,
        connections: 2,
        ops_per_conn: 30,
        warmup_ops: 5,
        side_min: 4,
        side_max: 8,
        names: 3,
        spread: 2,
        ..WorkloadSpec::default()
    };
    let opts = SweepOptions {
        start_rate_bytes_per_sec: 4 << 20,
        max_steps: 2,
        improve_frac: 0.05,
    };
    let result = run_loopback_sweep(2, 2, &spec, &opts)?;
    let mut checks: Vec<&str> = Vec::new();
    if result.rows.is_empty() {
        checks.push("sweep produced no rows");
    }
    if !result.rows.windows(2).all(|w| {
        w.first().map(|a| a.offered_mibps).unwrap_or(0.0)
            < w.last().map(|b| b.offered_mibps).unwrap_or(0.0)
    }) {
        checks.push("offered load is not monotone across rows");
    }
    // NaN-safe: a non-finite metric must fail these checks too.
    if !result.knee_offered_mibps.is_finite() || result.knee_offered_mibps <= 0.0 {
        checks.push("knee offered load is not positive");
    }
    if !result.saturation_goodput_mibps.is_finite() || result.saturation_goodput_mibps <= 0.0 {
        checks.push("saturation goodput is not positive");
    }
    if !result.retry_amplification.is_finite() || result.retry_amplification < 1.0 {
        checks.push("retry amplification fell below 1.0");
    }
    if !result.rows.iter().any(|r| r.put_lat.count > 0) {
        checks.push("no put latency samples were recorded");
    }
    if let Some(detail) = checks.first() {
        return Err(CtlError::Malformed {
            detail: (*detail).to_string(),
        });
    }
    Ok(result)
}
