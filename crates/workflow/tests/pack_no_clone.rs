//! Regression test: the staging pack path must not allocate tight-fab
//! intermediates.
//!
//! The original in-transit branch copied each grid's valid region into a
//! tight single-component fab before down-sampling it, doubling the pack
//! path's transient fab footprint. `pack_level_objects` now reduces
//! straight from the level fab's component, so with `factor > 1` the only
//! fab storage allocated is exactly one *reduced* fab per grid, and with
//! `factor == 1` (halo staging) no fab storage is allocated at all.
//!
//! This lives in its own integration-test binary on purpose: the
//! allocation counters are process-global, and concurrently running tests
//! in the same binary would perturb the peak.

use xlayer_amr::boxes::IBox;
use xlayer_amr::domain::ProblemDomain;
use xlayer_amr::fab;
use xlayer_amr::layout::BoxLayout;
use xlayer_amr::level_data::LevelData;
use xlayer_workflow::pack_level_objects;

fn multi_grid_level() -> LevelData {
    let domain = ProblemDomain::periodic(IBox::cube(32));
    let layout = BoxLayout::decompose(&domain, 16, 1);
    let mut ld = LevelData::new(layout, domain, 2, 1);
    ld.for_each_mut(|vb, f| {
        for c in 0..f.ncomp() {
            for iv in vb.cells() {
                f.set(iv, c, (iv[0] * 31 + iv[1] * 7 + iv[2]) as f64 + c as f64);
            }
        }
    });
    ld.exchange();
    ld
}

#[test]
fn reduction_pack_allocates_exactly_one_reduced_fab_per_grid() {
    let ld = multi_grid_level();
    assert!(ld.len() > 1, "want a multi-grid level");
    let factor = 2u32;
    // Upper bound on legitimate transient fab storage: every grid's reduced
    // fab alive concurrently (the parallel pack's worst case). The old
    // tight-fab path additionally held a full valid-region fab per grid,
    // which busts this bound even serially.
    let sum_reduced: u64 = (0..ld.len())
        .map(|i| ld.valid_box(i).coarsen(factor as i64).num_cells() * 8)
        .sum();
    let live = fab::allocated_bytes();
    fab::reset_peak_allocated();
    let objects = pack_level_objects(&ld, 1, "field", 3, factor, 1.0);
    let peak = fab::peak_allocated_bytes();
    assert_eq!(objects.len(), ld.len());
    assert!(
        peak - live <= sum_reduced,
        "pack allocated {} fab bytes over baseline; reduced fabs account for \
         at most {sum_reduced} (tight-fab intermediate resurrected?)",
        peak - live
    );
    // The packed objects hold payload bytes, not fab storage.
    assert_eq!(fab::allocated_bytes(), live);
    drop(objects);
}

#[test]
fn full_resolution_pack_allocates_no_fabs() {
    let ld = multi_grid_level();
    let live = fab::allocated_bytes();
    fab::reset_peak_allocated();
    let objects = pack_level_objects(&ld, 0, "field", 4, 1, 1.0);
    assert_eq!(
        fab::peak_allocated_bytes(),
        live,
        "halo pack copied through a fab intermediate"
    );
    assert_eq!(objects.len(), ld.len());
    // Halo payload: valid grown by one (all interior here, periodic 32³
    // split into 16³ grids with nghost = 1).
    for (i, obj) in objects.iter().enumerate() {
        assert_eq!(obj.desc.core, ld.valid_box(i));
        assert_eq!(obj.desc.bbox, ld.valid_box(i).grow(1));
    }
}
