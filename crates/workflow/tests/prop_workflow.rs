//! Property-based tests of the modeled workflow over arbitrary workload
//! traces: accounting identities and strategy invariants that must hold
//! regardless of the data dynamics.

use proptest::prelude::*;
use xlayer_core::{EngineConfig, Placement};
use xlayer_workflow::{
    DrivePoint, ModeledWorkflow, Strategy as WfStrategy, TraceDriver, WorkflowConfig,
    WorkflowReport,
};

fn arb_trace() -> impl Strategy<Value = Vec<DrivePoint>> {
    proptest::collection::vec(
        (
            (1u64 << 24)..(1 << 32), // bytes
            1.0f64..4.0,             // imbalance
            0.005f64..0.2,           // surface fraction
        )
            .prop_map(|(bytes, imbalance, sf)| {
                let cells = bytes / 8;
                DrivePoint {
                    cells,
                    bytes,
                    imbalance,
                    surface_cells: (cells as f64 * sf) as u64,
                }
            }),
        3..30,
    )
}

fn run(points: &[DrivePoint], strategy: WfStrategy) -> WorkflowReport {
    let cfg = WorkflowConfig::titan_advect(2048, strategy);
    let wf = ModeledWorkflow::new(cfg);
    let mut d = TraceDriver::new(points.to_vec());
    wf.run(&mut d, points.len() as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn accounting_identities_hold(points in arb_trace()) {
        for strategy in [
            WfStrategy::StaticInSitu,
            WfStrategy::StaticInTransit,
            WfStrategy::PostProcessing,
            WfStrategy::Adaptive(EngineConfig::middleware_only()),
            WfStrategy::Adaptive(EngineConfig::global()),
        ] {
            let r = run(&points, strategy);
            prop_assert_eq!(r.steps.len(), points.len());
            prop_assert_eq!(r.end_to_end.steps as usize, points.len());
            // total = sim + overhead, both non-negative
            prop_assert!(r.end_to_end.sim_time > 0.0);
            prop_assert!(r.end_to_end.overhead >= 0.0);
            prop_assert!(
                (r.end_to_end.total() - r.end_to_end.sim_time - r.end_to_end.overhead).abs()
                    < 1e-9
            );
            // moved bytes = Σ per-step moved = Σ analysis bytes of staged steps
            let step_sum: u64 = r.steps.iter().map(|s| s.moved_bytes).sum();
            prop_assert_eq!(r.data_moved(), step_sum);
            prop_assert_eq!(r.end_to_end.data_moved, step_sum);
            for s in &r.steps {
                if s.placement == Placement::InSitu || !s.analyzed {
                    prop_assert_eq!(s.moved_bytes, 0);
                } else if s.placement == Placement::InTransit {
                    prop_assert_eq!(s.moved_bytes, s.analysis_bytes);
                }
                // reduction can only shrink
                prop_assert!(s.analysis_bytes <= s.raw_bytes);
                prop_assert!(s.factor >= 1);
            }
            // placement counts partition the steps
            let (a, b) = r.placement_counts();
            prop_assert_eq!(a + b, points.len() as u64);
            // energy strictly positive and finite
            prop_assert!(r.energy.total() > 0.0 && r.energy.total().is_finite());
        }
    }

    #[test]
    fn sim_time_is_strategy_invariant(points in arb_trace()) {
        let a = run(&points, WfStrategy::StaticInSitu).end_to_end.sim_time;
        for strategy in [
            WfStrategy::StaticInTransit,
            WfStrategy::PostProcessing,
            WfStrategy::Adaptive(EngineConfig::global()),
        ] {
            let b = run(&points, strategy).end_to_end.sim_time;
            prop_assert!((a - b).abs() < 1e-9 * a, "{} vs {}", a, b);
        }
    }

    #[test]
    fn insitu_never_moves_data(points in arb_trace()) {
        let r = run(&points, WfStrategy::StaticInSitu);
        prop_assert_eq!(r.data_moved(), 0);
        prop_assert_eq!(r.energy.network_joules, 0.0);
    }

    #[test]
    fn intransit_moves_everything(points in arb_trace()) {
        let r = run(&points, WfStrategy::StaticInTransit);
        let expect: u64 = points.iter().map(|p| {
            // scale = 1.0 in this config; raw bytes pass through unreduced
            p.bytes
        }).sum();
        prop_assert_eq!(r.data_moved(), expect);
    }

    #[test]
    fn global_never_moves_more_than_intransit(points in arb_trace()) {
        let g = run(&points, WfStrategy::Adaptive(EngineConfig::global()));
        let t = run(&points, WfStrategy::StaticInTransit);
        prop_assert!(g.data_moved() <= t.data_moved());
    }

    #[test]
    fn staging_cores_respect_bounds(points in arb_trace()) {
        let r = run(&points, WfStrategy::Adaptive(EngineConfig::global()));
        let max = r.preallocated_staging;
        for s in &r.steps {
            prop_assert!(s.staging_cores >= 1 && s.staging_cores <= max);
        }
    }

    #[test]
    fn deterministic_replay(points in arb_trace()) {
        let a = run(&points, WfStrategy::Adaptive(EngineConfig::global()));
        let b = run(&points, WfStrategy::Adaptive(EngineConfig::global()));
        prop_assert_eq!(a.end_to_end.total().to_bits(), b.end_to_end.total().to_bits());
        prop_assert_eq!(a.data_moved(), b.data_moved());
        prop_assert_eq!(a.steps.len(), b.steps.len());
        for (x, y) in a.steps.iter().zip(&b.steps) {
            prop_assert_eq!(x, y);
        }
    }
}
