//! Ignored-by-default timing probe for the sync-vs-overlapped staging
//! pipeline. Run with `--ignored --nocapture` to see where a step spends
//! its time; CI never runs it (timing asserts on shared machines lie).

use xlayer_amr::hierarchy::HierarchyConfig;
use xlayer_amr::{IBox, ProblemDomain};
use xlayer_core::Placement;
use xlayer_solvers::{
    AdvectDiffuseSolver, AmrSimulation, DriverConfig, ScalarProblem, VelocityField,
};
use xlayer_workflow::native::{NativeConfig, NativeWorkflow};

fn blob_sim(n: i64) -> AmrSimulation<AdvectDiffuseSolver> {
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, n);
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            ..Default::default()
        },
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 3,
            ..Default::default()
        },
    );
    ScalarProblem::Gaussian {
        center: [n as f64 / 2.0; 3],
        sigma: 2.5,
    }
    .init_hierarchy(&mut sim.hierarchy);
    sim.regrid_now();
    sim
}

fn run_pipeline(overlap: bool, steps: usize, remote: Option<String>) -> std::time::Duration {
    let mut wf = NativeWorkflow::new(
        blob_sim(16),
        NativeConfig {
            iso_value: 0.4,
            overlap_staging: overlap,
            placement_override: Some(Placement::InTransit),
            staging_servers: 1,
            workers: 1,
            remote,
            ..Default::default()
        },
    );
    // Time the pipeline itself — steps plus drain — not the construction
    // (hierarchy init, thread spawns, socket connects), which differs
    // between the modes for reasons unrelated to staging overlap.
    let t0 = std::time::Instant::now();
    for _ in 0..steps {
        wf.step();
    }
    let stepped = t0.elapsed();
    let (_, outcomes, _) = wf.finish();
    assert_eq!(outcomes.len(), steps);
    let total = t0.elapsed();
    if std::env::var("XLAYER_STEP_TIMING").is_ok() {
        eprintln!(
            "{}: steps {:.3} ms  drain {:.3} ms",
            if overlap { "overlap" } else { "sync" },
            stepped.as_secs_f64() * 1e3,
            (total - stepped).as_secs_f64() * 1e3
        );
    }
    if std::env::var("XLAYER_STEPS_ONLY").is_ok() {
        stepped
    } else {
        total
    }
}

#[test]
#[ignore = "timing probe, run by hand with --nocapture"]
fn component_costs() {
    use xlayer_workflow::native::pack_level_objects;
    // Solve-only loop: the floor the pipeline cannot beat.
    let mut sim = blob_sim(16);
    let t0 = std::time::Instant::now();
    for _ in 0..4 {
        sim.advance();
        sim.hierarchy.fill_ghosts();
    }
    let solve = t0.elapsed();
    // Pack cost per step, on the state after those solves.
    let t0 = std::time::Instant::now();
    let mut n_objects = 0;
    for l in 0..sim.hierarchy.num_levels() {
        let objs = pack_level_objects(sim.hierarchy.level(l), 0, "field", 0, 1, 1.0);
        n_objects += objs.len();
    }
    let pack = t0.elapsed();
    // Analysis cost: fetch-shaped extract over the packed objects.
    let mut objects = Vec::new();
    for l in 0..sim.hierarchy.num_levels() {
        objects.extend(pack_level_objects(
            sim.hierarchy.level(l),
            0,
            "field",
            0,
            1,
            1.0,
        ));
    }
    let t0 = std::time::Instant::now();
    let parts: Vec<xlayer_viz::TriMesh> = objects
        .iter()
        .map(|obj| {
            let fab = obj.to_fab();
            xlayer_viz::extract_block(&fab, 0, &obj.desc.core, 0.4, obj.desc.dx, [0.0; 3])
        })
        .collect();
    let refs: Vec<&xlayer_viz::TriMesh> = parts.iter().collect();
    let mesh = xlayer_viz::TriMesh::concat(&refs);
    let analysis = t0.elapsed();
    println!(
        "4 solves: {:.3} ms | pack x1 ({} objects): {:.3} ms | analysis x1: {:.3} ms ({} tris)",
        solve.as_secs_f64() * 1e3,
        n_objects,
        pack.as_secs_f64() * 1e3,
        analysis.as_secs_f64() * 1e3,
        mesh.num_triangles(),
    );
}

#[test]
#[ignore = "timing probe, run by hand with --nocapture"]
fn sync_vs_overlap_wall_time() {
    let mut sync_best = f64::INFINITY;
    let mut over_best = f64::INFINITY;
    for _ in 0..7 {
        sync_best = sync_best.min(run_pipeline(false, 4, None).as_secs_f64());
        over_best = over_best.min(run_pipeline(true, 4, None).as_secs_f64());
    }
    println!(
        "sync: {:.3} ms  overlapped: {:.3} ms  ratio: {:.3}",
        sync_best * 1e3,
        over_best * 1e3,
        sync_best / over_best
    );
}

#[test]
#[ignore = "timing probe, run by hand with --nocapture"]
fn sync_vs_overlap_wall_time_remote() {
    let service = xlayer_net::service::StagingService::start(xlayer_net::service::ServiceConfig {
        servers: 1,
        memory_per_server: 1 << 30,
        ..Default::default()
    })
    .expect("bind loopback staging service");
    let addr = service.local_addr().to_string();
    let mut sync_best = f64::INFINITY;
    let mut over_best = f64::INFINITY;
    for _ in 0..7 {
        sync_best = sync_best.min(run_pipeline(false, 4, Some(addr.clone())).as_secs_f64());
        over_best = over_best.min(run_pipeline(true, 4, Some(addr.clone())).as_secs_f64());
    }
    println!(
        "sync: {:.3} ms  overlapped: {:.3} ms  ratio: {:.3}",
        sync_best * 1e3,
        over_best * 1e3,
        sync_best / over_best
    );
    service.shutdown();
}
