//! Placement-independence of analysis geometry.
//!
//! The in-transit workers used to extract isosurfaces at `dx = 1.0`
//! regardless of AMR level, so moving analysis off-node silently rescaled
//! every fine-level vertex by `ref_ratio^l`. Staged objects now carry the
//! producer's physical spacing (`ObjectDesc::dx`) and region of interest
//! (`ObjectDesc::core`), so the staged path — pack, put, get, unpack,
//! extract — must reproduce the in-situ mesh *exactly*: same triangle
//! count and bit-identical vertex coordinates, on every level.

use xlayer_amr::hierarchy::HierarchyConfig;
use xlayer_amr::{IBox, ProblemDomain};
use xlayer_solvers::{
    AdvectDiffuseSolver, AmrSimulation, DriverConfig, ScalarProblem, VelocityField,
};
use xlayer_staging::{DataSpace, Sharding};
use xlayer_viz::{extract_block, extract_level, merge_surfaces, TriMesh};
use xlayer_workflow::pack_level_objects;

fn blob_sim(n: i64) -> AmrSimulation<AdvectDiffuseSolver> {
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.5, 0.0]), 0.0, n);
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            ..Default::default()
        },
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 3,
            ..Default::default()
        },
    );
    ScalarProblem::Gaussian {
        center: [n as f64 / 2.0; 3],
        sigma: 2.5,
    }
    .init_hierarchy(&mut sim.hierarchy);
    sim.regrid_now();
    sim
}

fn sorted_vertex_bits(mesh: &TriMesh) -> Vec<(u64, u64, u64)> {
    let mut v: Vec<(u64, u64, u64)> = mesh
        .vertices
        .iter()
        .map(|p| (p[0].to_bits(), p[1].to_bits(), p[2].to_bits()))
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn staged_extraction_is_bitwise_identical_to_insitu() {
    let mut sim = blob_sim(16);
    for _ in 0..3 {
        sim.advance();
    }
    sim.hierarchy.fill_ghosts();
    let iso = 0.4;
    assert!(sim.hierarchy.num_levels() > 1, "want a refined level");

    // In-situ: extract directly from the hierarchy at each level's spacing.
    let mut insitu = TriMesh::new();
    for l in 0..sim.hierarchy.num_levels() {
        let dx = 1.0 / sim.hierarchy.ref_ratio().pow(l as u32) as f64;
        let surfaces = extract_level(sim.hierarchy.level(l), 0, iso, dx);
        insitu.append(&merge_surfaces(&surfaces));
    }
    assert!(insitu.num_triangles() > 0, "blob must cross iso={iso}");

    // In-transit: round-trip every grid through the staging space, then
    // extract from the unpacked halo objects using only the metadata the
    // object itself carries (core + dx) — exactly what the workers do.
    let space = DataSpace::new(2, 256 << 20, Sharding::BboxHash);
    let version = 7;
    for l in 0..sim.hierarchy.num_levels() {
        let dx = 1.0 / sim.hierarchy.ref_ratio().pow(l as u32) as f64;
        for obj in pack_level_objects(sim.hierarchy.level(l), 0, "field", version, 1, dx) {
            space.put(obj).expect("staging put");
        }
    }
    let objects = space.get("field", version, None);
    // Fine-level objects must carry the fine spacing, not the 1.0 the old
    // worker job hard-coded.
    let fine_dx = 1.0 / sim.hierarchy.ref_ratio() as f64;
    assert!(
        objects.iter().any(|o| o.desc.dx == fine_dx),
        "no staged object carries the fine-level spacing"
    );
    let parts: Vec<TriMesh> = objects
        .iter()
        .map(|obj| {
            let fab = obj.to_fab();
            extract_block(&fab, 0, &obj.desc.core, iso, obj.desc.dx, [0.0; 3])
        })
        .collect();
    let refs: Vec<&TriMesh> = parts.iter().collect();
    let staged = TriMesh::concat(&refs);

    assert_eq!(staged.num_triangles(), insitu.num_triangles());
    // Object order out of the sharded space is arbitrary; compare the
    // vertex multisets bitwise.
    assert_eq!(
        sorted_vertex_bits(&staged),
        sorted_vertex_bits(&insitu),
        "staged mesh geometry differs from in-situ"
    );
}
