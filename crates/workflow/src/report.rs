//! Per-step logs and end-of-run reports: the raw series behind every
//! figure and table of the evaluation.

use xlayer_core::{Placement, PlacementReason};
use xlayer_platform::{EndToEnd, EnergyReport, SimTime, StagingUtilization, UtilizationBuckets};

/// One row of the per-step log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepLog {
    /// Step index.
    pub step: u64,
    /// Virtual duration of the simulation compute this step.
    pub t_sim: SimTime,
    /// Raw output size this step (`S_data`, bytes, virtual scale).
    pub raw_bytes: u64,
    /// Bytes handed to the analysis after reduction.
    pub analysis_bytes: u64,
    /// Down-sampling factor chosen (1 = none).
    pub factor: u32,
    /// Where the analysis ran.
    pub placement: Placement,
    /// Why (None for static strategies).
    pub reason: Option<PlacementReason>,
    /// Staging cores allocated this step.
    pub staging_cores: usize,
    /// Bytes moved simulation→staging this step (0 for in-situ).
    pub moved_bytes: u64,
    /// Free in-situ memory on the worst rank at decision time (bytes).
    pub mem_available: u64,
    /// Memory the chosen resolution consumes for the reduction + analysis
    /// input on the worst rank (bytes) — the Fig. 5 "adaptive" curve.
    pub mem_used: u64,
    /// Whether this step's output was analyzed at all (false when the
    /// temporal-resolution mechanism skipped it).
    pub analyzed: bool,
    /// Wall/virtual seconds the analysis took when it ran synchronously
    /// with the step (in-situ, or the in-situ share of a hybrid split).
    /// 0 when the analysis runs asynchronously in-transit — its duration
    /// is reported on the `AnalysisOutcome` instead.
    pub analysis_secs: f64,
}

/// Everything a finished run reports.
#[derive(Clone, Debug, Default)]
pub struct WorkflowReport {
    /// Per-step log rows.
    pub steps: Vec<StepLog>,
    /// End-to-end accounting (Figs. 7, 10).
    pub end_to_end: EndToEnd,
    /// Staging utilization accounting (Eq. 12, Fig. 9, Table 2).
    pub utilization: StagingUtilization,
    /// Initial (preallocated) staging cores — Table 2's reference.
    pub preallocated_staging: usize,
    /// Energy accounting (power-management extension; DESIGN.md).
    pub energy: EnergyReport,
}

impl WorkflowReport {
    /// Total bytes moved simulation→staging (Figs. 8, 11).
    pub fn data_moved(&self) -> u64 {
        self.steps.iter().map(|s| s.moved_bytes).sum()
    }

    /// Eq. 12 CPU utilization efficiency of the staging area.
    pub fn staging_efficiency(&self) -> f64 {
        self.utilization.efficiency()
    }

    /// Table 2 buckets relative to the preallocated staging size.
    pub fn utilization_buckets(&self) -> UtilizationBuckets {
        self.utilization.buckets(self.preallocated_staging)
    }

    /// Steps placed in-situ / in-transit (hybrid steps count toward
    /// in-transit: they use the staging area).
    pub fn placement_counts(&self) -> (u64, u64) {
        let insitu = self
            .steps
            .iter()
            .filter(|s| s.placement == Placement::InSitu)
            .count() as u64;
        (insitu, self.steps.len() as u64 - insitu)
    }

    /// Steps that used the hybrid split.
    pub fn hybrid_steps(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| s.placement == Placement::Hybrid)
            .count() as u64
    }

    /// The Fig. 9 series: staging cores per step.
    pub fn staging_core_series(&self) -> Vec<(u64, usize)> {
        self.steps
            .iter()
            .map(|s| (s.step, s.staging_cores))
            .collect()
    }

    /// The Fig. 5 series: (step, available, used) memory in bytes.
    pub fn memory_series(&self) -> Vec<(u64, u64, u64)> {
        self.steps
            .iter()
            .map(|s| (s.step, s.mem_available, s.mem_used))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(step: u64, placement: Placement, moved: u64, cores: usize) -> StepLog {
        StepLog {
            step,
            t_sim: 1.0,
            raw_bytes: 100,
            analysis_bytes: 100,
            factor: 1,
            placement,
            reason: None,
            staging_cores: cores,
            moved_bytes: moved,
            mem_available: 1000,
            mem_used: 100,
            analyzed: true,
            analysis_secs: 0.0,
        }
    }

    #[test]
    fn aggregations() {
        let mut r = WorkflowReport {
            preallocated_staging: 256,
            ..Default::default()
        };
        r.steps.push(row(1, Placement::InTransit, 100, 256));
        r.steps.push(row(2, Placement::InSitu, 0, 256));
        r.steps.push(row(3, Placement::InTransit, 50, 128));
        assert_eq!(r.data_moved(), 150);
        assert_eq!(r.placement_counts(), (1, 2));
        assert_eq!(r.staging_core_series()[2], (3, 128));
        assert_eq!(r.memory_series().len(), 3);
    }
}
