//! # xlayer-workflow — the coupled simulation–analysis workflow runtime
//!
//! Couples the AMR simulation (`xlayer-solvers`), the visualization service
//! (`xlayer-viz`), the staging substrate (`xlayer-staging`) and the
//! cross-layer adaptation runtime (`xlayer-core`) into the paper's
//! end-to-end workflow, in two execution modes:
//!
//! * [`native::NativeWorkflow`] — everything real and in-process: solver
//!   steps, staging puts, asynchronous in-transit marching cubes on worker
//!   threads (examples and integration tests),
//! * [`modeled::ModeledWorkflow`] — the same decision code driven by a real
//!   small-scale AMR run, with compute/transfer durations from the
//!   calibrated platform models: how the 2K–16K-core evaluation figures are
//!   regenerated on one node (DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod drive;
pub mod modeled;
pub mod native;
pub mod report;

pub use config::{Strategy, WorkflowConfig};
pub use drive::AmrDriver;
pub use modeled::{DrivePoint, ModeledWorkflow, TraceDriver, WorkloadDriver};
pub use native::{pack_level_objects, AnalysisOutcome, NativeConfig, NativeWorkflow};
pub use report::{StepLog, WorkflowReport};
