//! Driving the modeled workflow with a *real* AMR simulation: every step's
//! data volume, cell count and memory imbalance comes from an actual
//! `xlayer-solvers` run, so the virtual experiments inherit the genuine
//! dynamics (erratic growth, imbalance — Fig. 1) of the workload.

use crate::modeled::{DrivePoint, WorkloadDriver};
use xlayer_solvers::{AmrSimulation, LevelSolver};

/// Adapts an [`AmrSimulation`] into a [`WorkloadDriver`].
pub struct AmrDriver<S: LevelSolver> {
    sim: AmrSimulation<S>,
}

impl<S: LevelSolver> AmrDriver<S> {
    /// Wrap a simulation (initial conditions and initial regrid should be
    /// done already).
    pub fn new(sim: AmrSimulation<S>) -> Self {
        AmrDriver { sim }
    }

    /// Access the underlying simulation.
    pub fn sim(&self) -> &AmrSimulation<S> {
        &self.sim
    }

    /// Consume the driver, returning the simulation.
    pub fn into_sim(self) -> AmrSimulation<S> {
        self.sim
    }
}

impl<S: LevelSolver> WorkloadDriver for AmrDriver<S> {
    fn next_point(&mut self) -> DrivePoint {
        let stats = self.sim.advance();
        let profile = self.sim.memory_profile();
        // The refined region tracks the steep-gradient (surface) features,
        // so the finest level's footprint estimates the surface size. A
        // 2-D surface crosses ~n^(2/3) of an n-cell refined region; the /8
        // coefficient matches the measured crossing fraction of our blast
        // and blob workloads (tag-buffered shells a few cells thick).
        let h = &self.sim.hierarchy;
        let finest_cells = h.level(h.num_levels() - 1).layout().total_cells();
        let surface_cells = if h.num_levels() > 1 {
            finest_cells / 8
        } else {
            stats.cells_advanced / 12
        };
        DrivePoint {
            cells: stats.cells_advanced,
            bytes: stats.data_bytes,
            imbalance: profile.imbalance(),
            surface_cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::hierarchy::HierarchyConfig;
    use xlayer_amr::{IBox, ProblemDomain};
    use xlayer_solvers::{AdvectDiffuseSolver, DriverConfig, ScalarProblem, VelocityField};

    #[test]
    fn real_simulation_produces_drive_points() {
        let n = 16;
        let domain = ProblemDomain::periodic(IBox::cube(n));
        let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, n);
        let mut sim = AmrSimulation::new(
            domain,
            HierarchyConfig {
                max_levels: 2,
                base_max_box: 8,
                nranks: 4,
                ..Default::default()
            },
            solver,
            DriverConfig {
                tag_threshold: 0.02,
                ..Default::default()
            },
        );
        ScalarProblem::Gaussian {
            center: [8.0; 3],
            sigma: 2.0,
        }
        .init_hierarchy(&mut sim.hierarchy);
        sim.regrid_now();

        let mut driver = AmrDriver::new(sim);
        let p1 = driver.next_point();
        let p2 = driver.next_point();
        assert!(p1.cells > 0);
        assert!(p1.bytes > 0);
        assert!(p1.imbalance >= 1.0);
        assert!(p2.cells > 0);
        assert_eq!(driver.sim().step_count(), 2);
    }
}
