//! Workflow configuration: strategy, scale mapping and machine binding.

use xlayer_core::{EngineConfig, Objective, UserHints};
use xlayer_platform::{MachineSpec, Partition, SolverKind};

/// How the analysis placement is chosen — the three bars of Fig. 7.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Every step analyzed in-situ (static baseline).
    StaticInSitu,
    /// Every step analyzed in-transit (static baseline).
    StaticInTransit,
    /// Traditional post-processing: every step's output written to the
    /// parallel filesystem, read back and analyzed after the run — the
    /// disk-bound baseline the paper's introduction argues against.
    PostProcessing,
    /// Adaptive placement driven by the Adaptation Engine, with the given
    /// mechanism enable-flags ("local" = middleware only, "global" = all).
    Adaptive(EngineConfig),
}

impl Strategy {
    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::StaticInSitu => "InSitu",
            Strategy::StaticInTransit => "InTransit",
            Strategy::PostProcessing => "PostProc",
            Strategy::Adaptive(c) if *c == EngineConfig::global() => "Global",
            Strategy::Adaptive(c) if *c == EngineConfig::middleware_only() => "Local",
            Strategy::Adaptive(_) => "Adapt",
        }
    }
}

/// Complete configuration of a modeled-scale workflow run.
#[derive(Clone, Debug)]
pub struct WorkflowConfig {
    /// Placement strategy.
    pub strategy: Strategy,
    /// Target machine model.
    pub machine: MachineSpec,
    /// Allocation split: `N` simulation cores, `M` initial staging cores.
    pub partition: Partition,
    /// Which solver's cost profile the virtual simulation uses.
    pub solver: SolverKind,
    /// Scale factor mapping the driving (real, small) AMR run's data
    /// volumes/cells onto the virtual machine: virtual bytes = real × scale.
    pub scale: f64,
    /// User objective for the adaptive strategies.
    pub objective: Objective,
    /// User hints (factor schedule, monitor interval).
    pub hints: UserHints,
    /// Fixed per-adaptation engine overhead charged to the critical path
    /// (monitor sampling + policy evaluation), seconds.
    pub adaptation_overhead: f64,
    /// Upper bound on adaptive staging cores (defaults to the partition's
    /// preallocation — the paper never grows beyond the initial staging
    /// allocation in §5.2.4, but §5.2.3 allows growth up to the static pool).
    pub staging_cores_max: usize,
}

impl WorkflowConfig {
    /// A Titan configuration matching §5.2.2: `sim_cores` with a 16:1
    /// staging ratio, advection–diffusion workload.
    pub fn titan_advect(sim_cores: usize, strategy: Strategy) -> Self {
        let partition = Partition::with_ratio(sim_cores, 16);
        let staging_cores_max = partition.staging_cores;
        WorkflowConfig {
            strategy,
            machine: MachineSpec::titan(),
            partition,
            solver: SolverKind::AdvectDiffuse,
            scale: 1.0,
            objective: Objective::MinimizeTimeToSolution,
            hints: UserHints::default(),
            adaptation_overhead: 2e-3,
            staging_cores_max,
        }
    }

    /// An Intrepid configuration matching §5.2.1/§5.2.3: Polytropic Gas on
    /// 4K cores with 256 staging cores.
    pub fn intrepid_gas(strategy: Strategy) -> Self {
        WorkflowConfig {
            strategy,
            machine: MachineSpec::intrepid(),
            partition: Partition {
                sim_cores: 4096,
                staging_cores: 256,
            },
            solver: SolverKind::Euler,
            scale: 1.0,
            objective: Objective::MinimizeTimeToSolution,
            hints: UserHints::default(),
            adaptation_overhead: 2e-3,
            staging_cores_max: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Strategy::StaticInSitu.label(), "InSitu");
        assert_eq!(Strategy::StaticInTransit.label(), "InTransit");
        assert_eq!(Strategy::Adaptive(EngineConfig::global()).label(), "Global");
        assert_eq!(
            Strategy::Adaptive(EngineConfig::middleware_only()).label(),
            "Local"
        );
    }

    #[test]
    fn titan_partition_ratio() {
        let c = WorkflowConfig::titan_advect(4096, Strategy::StaticInSitu);
        assert_eq!(c.partition.staging_cores, 256);
        assert_eq!(c.machine.cores_per_node, 16);
    }

    #[test]
    fn intrepid_matches_paper_setup() {
        let c = WorkflowConfig::intrepid_gas(Strategy::Adaptive(EngineConfig::resource_only()));
        assert_eq!(c.partition.sim_cores, 4096);
        assert_eq!(c.partition.staging_cores, 256);
        assert_eq!(c.machine.memory_per_core(), 512 << 20);
    }
}
