//! The native workflow: everything runs for real, in-process — AMR solve,
//! marching cubes, staging puts/gets, asynchronous in-transit analysis on
//! worker threads. This is the execution mode behind the examples and the
//! end-to-end integration tests.
//!
//! ## The analysis data path
//!
//! In-transit steps pack one [`DataObject`] per grid per level — in
//! parallel across grids, reading straight from the level fab's component
//! (the application-layer reduction down-samples from the source fab with
//! no tight intermediate copy). With `overlap_staging` on (the default),
//! the puts go through [`AsyncStager`]'s bounded queue, so serialization
//! and server ingest of step *i* overlap the solve of step *i+1*; an
//! analysis worker picking up step *i* first blocks on
//! [`TransportStats::wait_processed`] until all of that version's objects
//! have landed (per-version counts — later versions finishing early cannot
//! satisfy the wait). `finish()` stays deterministic: it drains the
//! transport queue, then closes the job channel and joins the workers, so
//! every step's analysis outcome is present and sorted by version.

use crate::report::StepLog;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use xlayer_amr::level_data::LevelData;
use xlayer_core::{
    AdaptationEngine, Calibrator, EngineConfig, Estimator, OperationalState, Placement,
    PressureAction, UserHints, UserPreferences,
};
use xlayer_net::client::{ClientConfig, RemoteClient, RemoteError, RemoteStager};
use xlayer_net::cluster::{ShardedClient, ShardedError, ShardedStager};
use xlayer_net::wire::ErrorFrame;
use xlayer_platform::{CostModel, MachineSpec};
use xlayer_solvers::{AmrSimulation, LevelSolver};
use xlayer_staging::{
    AsyncStager, BatchClosed, BufferPool, DataObject, DataSpace, Sharding, SpillAction, StageTask,
    StagingError, TierConfig, TransportStats,
};
use xlayer_viz::{extract_level, merge_surfaces, TriMesh};

/// Configuration of a native run.
#[derive(Clone, Debug)]
pub struct NativeConfig {
    /// Isovalue the visualization service extracts.
    pub iso_value: f64,
    /// Which solution component to visualize.
    pub comp: usize,
    /// Staging servers (shards).
    pub staging_servers: usize,
    /// Memory cap per staging server, bytes.
    pub staging_memory: u64,
    /// In-transit analysis worker threads.
    pub workers: usize,
    /// Route staging puts through the asynchronous back-pressured
    /// transport so ingest overlaps the next step's solve. When false,
    /// every put completes synchronously inside `step()` (the
    /// pre-overlap baseline, kept for benchmarking).
    pub overlap_staging: bool,
    /// Force every step's placement, bypassing the engine's decision.
    /// Used by tests and benches that need a deterministic placement.
    pub placement_override: Option<Placement>,
    /// Address of a remote staging service (e.g. `"127.0.0.1:7001"`), or a
    /// comma-separated shard list (e.g. `"127.0.0.1:7001,127.0.0.1:7002"`)
    /// naming a sharded staging cluster. When set, staging puts/gets go
    /// over the wire — through [`RemoteClient`]/[`RemoteStager`] for one
    /// address, or region-routed through
    /// [`ShardedClient`]/[`ShardedStager`] for several — instead of an
    /// in-process [`DataSpace`]: the paper's dedicated-staging-nodes
    /// deployment. When the service (any shard of it) is unreachable at
    /// construction the workflow degrades to the in-process space rather
    /// than dying.
    pub remote: Option<String>,
    /// Placement-bucket side, in cells, for the sharded remote backend
    /// (see [`xlayer_staging::ShardMap`]). Every client of a cluster must
    /// use the same value.
    pub shard_span: i64,
    /// Directory for the local backend's disk spill tier. When set, puts
    /// beyond the staging memory cap demote cold versions to per-server
    /// object logs there instead of being rejected, and hot gets promote
    /// them back — the working set can exceed `staging_memory` without
    /// dropping data. `None` (the default) keeps the memory-only
    /// behaviour. Ignored by the remote backends (the service attaches
    /// its own tier via its `--disk-dir`).
    pub disk_dir: Option<std::path::PathBuf>,
    /// Cap on live spilled bytes per staging server (only meaningful with
    /// `disk_dir` set; unbounded by default).
    pub disk_budget: u64,
    /// Adaptation mechanisms enabled.
    pub engine: EngineConfig,
    /// User hints.
    pub hints: UserHints,
}

impl Default for NativeConfig {
    fn default() -> Self {
        NativeConfig {
            iso_value: 0.5,
            comp: 0,
            staging_servers: 2,
            staging_memory: 256 << 20,
            workers: 2,
            overlap_staging: true,
            placement_override: None,
            remote: None,
            shard_span: xlayer_staging::shard::DEFAULT_SPAN,
            disk_dir: None,
            disk_budget: u64::MAX,
            engine: EngineConfig::middleware_only(),
            hints: UserHints::default(),
        }
    }
}

/// The outcome of one step's analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisOutcome {
    /// Simulation step (staging version) analyzed.
    pub version: u64,
    /// Where it ran.
    pub placement: Placement,
    /// Triangles extracted.
    pub triangles: usize,
    /// Wall seconds the analysis took.
    pub seconds: f64,
    /// Bytes of mesh produced.
    pub mesh_bytes: u64,
}

struct Job {
    version: u64,
    iso: f64,
    /// Objects the producer enqueued for this version; the worker waits
    /// until the transport has processed that many before reading. 0 when
    /// the puts were synchronous (nothing to wait for).
    expected: u64,
}

/// Pack one level's grids into staged objects, in parallel across grids.
///
/// Each object carries the level's physical spacing `dx` and, at
/// `factor == 1`, a one-cell halo around the valid region as payload with
/// the valid region as `core` — so a consumer extracting isosurfaces from
/// the object anchors exactly the cells the in-situ path anchors, with the
/// same ghost corners. At `factor > 1` the grid is down-sampled straight
/// from the level fab's `comp` (no tight single-component intermediate)
/// and the object covers the coarsened valid region at spacing
/// `dx * factor`.
pub fn pack_level_objects(
    level: &LevelData,
    comp: usize,
    name: &str,
    version: u64,
    factor: u32,
    dx: f64,
) -> Vec<DataObject> {
    use rayon::prelude::*;
    (0..level.len())
        .into_par_iter()
        .map(|i| {
            let valid = level.valid_box(i);
            let rank = level.layout().rank(i);
            if factor > 1 {
                let reduced = xlayer_viz::downsample_region(level.fab(i), comp, &valid, factor);
                DataObject::from_fab(name, version, &reduced, 0, &reduced.ibox(), rank)
                    .with_dx(dx * factor as f64)
            } else {
                let halo = valid.grow(1).intersect(&level.fab(i).ibox());
                DataObject::from_fab(name, version, level.fab(i), comp, &halo, rank)
                    .with_dx(dx)
                    .with_core(&valid)
            }
        })
        .collect()
}

/// Where staged data lives: the in-process space, or a staging service
/// across a socket. Both carry an optional asynchronous stager with the
/// same put/drain/stats surface, so `step()` and `finish()` treat the two
/// uniformly.
enum Backend {
    Local {
        space: Arc<DataSpace>,
        stager: Option<AsyncStager>,
    },
    Remote {
        client: RemoteClient,
        stager: Option<RemoteStager>,
        /// Cached service headroom: `(calls_since_probe, bytes)`. The
        /// stats round-trip is a policy input, not a correctness input,
        /// and staging occupancy moves slowly — so the probe runs every
        /// [`HEADROOM_STRIDE`]-th step instead of serializing an extra
        /// RTT into every step of both the sync and overlapped paths.
        headroom: std::cell::Cell<(u32, u64)>,
    },
    Sharded {
        client: ShardedClient,
        stager: Option<ShardedStager>,
        /// Cached cluster headroom, same stride policy as `Remote` (the
        /// probe here is one stats RTT *per shard*, so caching matters
        /// more). Summed across reachable shards: the Eq. 9–10 policy
        /// sizes against aggregate cluster capacity in servers.
        headroom: std::cell::Cell<(u32, u64)>,
    },
}

/// Steps between remote headroom probes (see [`Backend::mem_available`]).
const HEADROOM_STRIDE: u32 = 8;

impl Backend {
    /// Synchronous put, used by the non-overlapped baseline and as the
    /// fallback when the asynchronous transport has shut down. Rejections
    /// (memory cap, unreachable service) drop the object — same policy on
    /// both sides of the wire.
    fn put_sync(&self, obj: DataObject) {
        // A `NeedsReduction` answer is the tier's downsample verdict: the
        // producer is on the line here (unlike the async transport), so
        // coarsen by the requested factor and retry once.
        match self {
            Backend::Local { space, .. } => {
                if let Err(StagingError::NeedsReduction { factor }) = space.put(obj.clone()) {
                    if let Some(reduced) = reduce_object(&obj, factor) {
                        let _ = space.put(reduced);
                    }
                }
            }
            Backend::Remote { client, .. } => {
                if let Err(RemoteError::Refused(ErrorFrame::NeedsReduction { factor })) =
                    client.put(&obj)
                {
                    if let Some(reduced) = reduce_object(&obj, factor) {
                        let _ = client.put(&reduced);
                    }
                }
            }
            Backend::Sharded { client, .. } => {
                // Per-object fallback is inside the client: a full home
                // shard spills to siblings, and only a cluster-wide
                // rejection drops the object.
                if let Err(ShardedError {
                    source: RemoteError::Refused(ErrorFrame::NeedsReduction { factor }),
                    ..
                }) = client.put(&obj)
                {
                    if let Some(reduced) = reduce_object(&obj, factor) {
                        let _ = client.put(&reduced);
                    }
                }
            }
        }
    }

    /// Whether an asynchronous transport is running.
    fn overlapped(&self) -> bool {
        match self {
            Backend::Local { stager, .. } => stager.is_some(),
            Backend::Remote { stager, .. } => stager.is_some(),
            Backend::Sharded { stager, .. } => stager.is_some(),
        }
    }

    /// Hand a step's batch to the asynchronous transport. Returns how many
    /// tasks entered the queue plus any refused remainder, which the
    /// caller materializes and stores synchronously — the step degrades,
    /// it does not die.
    fn send_batch(&self, tasks: Vec<StageTask>) -> (u64, Vec<StageTask>) {
        let total = tasks.len() as u64;
        let result = match self {
            Backend::Local {
                stager: Some(stager),
                ..
            } => stager.put_batch(tasks),
            Backend::Remote {
                stager: Some(stager),
                ..
            } => stager.put_batch(tasks),
            Backend::Sharded {
                stager: Some(stager),
                ..
            } => stager.put_batch(tasks),
            Backend::Local { stager: None, .. }
            | Backend::Remote { stager: None, .. }
            | Backend::Sharded { stager: None, .. } => Err(BatchClosed {
                enqueued: 0,
                rest: tasks,
            }),
        };
        match result {
            Ok(()) => (total, Vec::new()),
            Err(BatchClosed { enqueued, rest }) => (enqueued, rest),
        }
    }

    /// Bytes the staging side can still accept, for the engine's
    /// memory-pressure input. The remote probe costs one RTT; if the
    /// service cannot answer, report zero headroom so the policy treats an
    /// unreachable service as full rather than infinite.
    fn mem_available(&self) -> u64 {
        match self {
            Backend::Local { space, .. } => space.capacity().saturating_sub(space.used()),
            Backend::Remote {
                client, headroom, ..
            } => {
                let (calls, cached) = headroom.get();
                if calls == 0 {
                    let fresh = client
                        .service_stats()
                        .map(|s| s.capacity.saturating_sub(s.used))
                        .unwrap_or(0);
                    headroom.set((HEADROOM_STRIDE - 1, fresh));
                    fresh
                } else {
                    headroom.set((calls - 1, cached));
                    cached
                }
            }
            Backend::Sharded {
                client, headroom, ..
            } => {
                let (calls, cached) = headroom.get();
                if calls == 0 {
                    let fresh = client.total_headroom();
                    headroom.set((HEADROOM_STRIDE - 1, fresh));
                    fresh
                } else {
                    headroom.set((calls - 1, cached));
                    cached
                }
            }
        }
    }

    /// Free bytes under the disk tier's budget, for the pressure policy.
    /// The remote backends report zero: the wire snapshot carries the
    /// tier's usage counters but not its budget, and the service applies
    /// its own spill policy autonomously anyway.
    fn disk_available(&self) -> u64 {
        match self {
            Backend::Local { space, .. } => space.disk_headroom(),
            Backend::Remote { .. } | Backend::Sharded { .. } => 0,
        }
    }
}

/// Producer-side response to a `NeedsReduction` verdict: the same object
/// down-sampled by the requested volumetric factor (per-dimension stride),
/// at coarsened spacing. `None` when the factor cannot reduce (< 2).
fn reduce_object(obj: &DataObject, factor: u32) -> Option<DataObject> {
    if factor < 2 {
        return None;
    }
    let fab = obj.to_fab();
    let reduced = xlayer_viz::downsample_region(&fab, 0, &obj.desc.core, factor);
    Some(
        DataObject::from_fab(
            &obj.desc.key.name,
            obj.desc.key.version,
            &reduced,
            0,
            &reduced.ibox(),
            obj.desc.origin_rank,
        )
        .with_dx(obj.desc.dx * factor as f64),
    )
}

/// The analysis workers' read handle onto staged data — the consumer-side
/// mirror of [`Backend`].
enum Reader {
    Local(Arc<DataSpace>),
    Remote(RemoteClient),
    Sharded(ShardedClient),
}

impl Reader {
    /// All objects under `(name, version)`. A remote fetch that fails
    /// (service gone mid-run) yields an empty read: the analysis reports a
    /// zero-triangle outcome instead of crashing the worker.
    fn fetch(&self, name: &str, version: u64) -> Vec<Arc<DataObject>> {
        match self {
            Reader::Local(space) => space.get(name, version, None),
            Reader::Remote(client) => client
                .get(name, version, None)
                .map(|objs| objs.into_iter().map(Arc::new).collect())
                .unwrap_or_default(),
            // Scatter/gather across the shards; the merge order is the
            // cluster's canonical one, so analysis over the fetched list
            // is deterministic regardless of placement.
            Reader::Sharded(client) => client
                .get(name, version, None)
                .map(|objs| objs.into_iter().map(Arc::new).collect())
                .unwrap_or_default(),
        }
    }

    fn evict_before(&self, name: &str, min_version: u64) {
        match self {
            Reader::Local(space) => {
                space.evict_before(name, min_version);
            }
            Reader::Remote(client) => {
                let _ = client.evict_before(name, min_version);
            }
            Reader::Sharded(client) => {
                let _ = client.evict_before(name, min_version);
            }
        }
    }
}

/// A fully-native coupled workflow: simulation + visualization + staging.
pub struct NativeWorkflow<S: LevelSolver> {
    sim: AmrSimulation<S>,
    cfg: NativeConfig,
    backend: Backend,
    engine: AdaptationEngine,
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<AnalysisOutcome>,
    workers: Vec<std::thread::JoinHandle<()>>,
    outcomes: Vec<AnalysisOutcome>,
    steps: Vec<StepLog>,
    moved_bytes: u64,
    pending_jobs: usize,
    last_intransit_secs: f64,
    calibrator: Calibrator,
    // BTreeMap: calibration replays (and debug dumps) walk predictions in
    // step order, independent of hasher state.
    predictions: BTreeMap<u64, f64>,
}

impl<S: LevelSolver> NativeWorkflow<S> {
    /// Build the workflow around an initialized simulation.
    pub fn new(sim: AmrSimulation<S>, cfg: NativeConfig) -> Self {
        // The asynchronous transport into the staging side: puts from
        // step() are enqueued and ingested by transfer threads while the
        // next solve runs. Queue depth sized to hold a full step's objects
        // (every grid of every level) so an in-transit step never blocks on
        // back-pressure unless the transport is a full step behind.
        // With cfg.remote set, the transfer threads speak the wire protocol
        // to a staging service — or, for a comma-separated shard list, to a
        // sharded cluster with region routing. A remote address that fails
        // to resolve (any shard of it) degrades to the in-process space
        // instead of failing construction.
        enum Target {
            InProcess,
            Single(RemoteClient),
            Cluster(ShardedClient),
        }
        let target = {
            let addrs: Vec<&str> = cfg
                .remote
                .as_deref()
                .map(|s| {
                    s.split(',')
                        .map(str::trim)
                        .filter(|a| !a.is_empty())
                        .collect()
                })
                .unwrap_or_default();
            if addrs.len() > 1 {
                ShardedClient::connect(&addrs, cfg.shard_span, ClientConfig::default())
                    .map(Target::Cluster)
                    .unwrap_or(Target::InProcess)
            } else if let Some(addr) = addrs.first() {
                RemoteClient::connect(addr, ClientConfig::default())
                    .map(Target::Single)
                    .unwrap_or(Target::InProcess)
            } else {
                Target::InProcess
            }
        };
        let (backend, reader, transport): (Backend, Reader, Arc<TransportStats>) = match target {
            Target::Single(client) => {
                let stager = RemoteStager::new(client.clone(), cfg.staging_servers.max(1), 256);
                let transport = stager.stats();
                (
                    Backend::Remote {
                        client: client.clone(),
                        stager: Some(stager),
                        headroom: std::cell::Cell::new((0, 0)),
                    },
                    Reader::Remote(client),
                    transport,
                )
            }
            Target::Cluster(client) => {
                let stager = ShardedStager::new(client.clone(), cfg.staging_servers.max(1), 256);
                let transport = stager.stats();
                (
                    Backend::Sharded {
                        client: client.clone(),
                        stager: Some(stager),
                        headroom: std::cell::Cell::new((0, 0)),
                    },
                    Reader::Sharded(client),
                    transport,
                )
            }
            Target::InProcess => {
                // With a disk_dir the space gets a spill tier; a tier that
                // fails to open (unwritable directory, corrupt log beyond
                // recovery) degrades to the memory-only space, mirroring
                // the unreachable-remote fallback above.
                let space = Arc::new(
                    match &cfg.disk_dir {
                        Some(dir) => {
                            let tier = TierConfig::new(dir.clone()).with_budget(cfg.disk_budget);
                            DataSpace::new_tiered(
                                cfg.staging_servers,
                                cfg.staging_memory,
                                Sharding::BboxHash,
                                &tier,
                                Arc::new(BufferPool::new()),
                            )
                            .ok()
                        }
                        None => None,
                    }
                    .unwrap_or_else(|| {
                        DataSpace::new(cfg.staging_servers, cfg.staging_memory, Sharding::BboxHash)
                    }),
                );
                let stager = AsyncStager::new(Arc::clone(&space), cfg.staging_servers.max(1), 256);
                let transport = stager.stats();
                (
                    Backend::Local {
                        space: Arc::clone(&space),
                        stager: Some(stager),
                    },
                    Reader::Local(space),
                    transport,
                )
            }
        };
        let reader = Arc::new(reader);
        // A rough local-machine model so the middleware policy has cost
        // estimates; decisions also use live measurements via the state.
        let machine = MachineSpec {
            name: "local".into(),
            cores_per_node: std::thread::available_parallelism().map_or(4, |n| n.get()),
            memory_per_node: 8 << 30,
            core_flops: 2.0e9,
            injection_bandwidth: 8.0e9,
            message_latency: 1e-6,
        };
        let engine = AdaptationEngine::new(
            UserPreferences::default(),
            cfg.hints.clone(),
            cfg.engine,
            Estimator::new(CostModel::new(machine)),
        );
        let (job_tx, job_rx) = unbounded::<Job>();
        let (result_tx, result_rx) = unbounded::<AnalysisOutcome>();
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let job_rx = job_rx.clone();
                let result_tx = result_tx.clone();
                let reader = Arc::clone(&reader);
                let transport = Arc::clone(&transport);
                std::thread::spawn(move || {
                    while let Ok(job) = job_rx.recv() {
                        let t0 = Instant::now();
                        // Rendezvous with the transport: all of this
                        // version's objects must have been ingested (or
                        // rejected) before the read.
                        transport.wait_processed("field", job.version, job.expected);
                        let objects = reader.fetch("field", job.version);
                        let parts: Vec<TriMesh> = objects
                            .iter()
                            .map(|obj| {
                                // Staged objects are single-component; the
                                // descriptor carries the level's dx and the
                                // anchor (core) region.
                                let fab = obj.to_fab();
                                xlayer_viz::extract_block(
                                    &fab,
                                    0,
                                    &obj.desc.core,
                                    job.iso,
                                    obj.desc.dx,
                                    [0.0; 3],
                                )
                            })
                            .collect();
                        let refs: Vec<&TriMesh> = parts.iter().collect();
                        let mesh = TriMesh::concat(&refs);
                        reader.evict_before("field", job.version + 1);
                        let secs = t0.elapsed().as_secs_f64();
                        let _ = result_tx.send(AnalysisOutcome {
                            version: job.version,
                            placement: Placement::InTransit,
                            triangles: mesh.num_triangles(),
                            seconds: secs,
                            mesh_bytes: mesh.bytes(),
                        });
                    }
                })
            })
            .collect();
        NativeWorkflow {
            sim,
            cfg,
            backend,
            engine,
            job_tx: Some(job_tx),
            result_rx,
            workers,
            outcomes: Vec::new(),
            steps: Vec::new(),
            moved_bytes: 0,
            pending_jobs: 0,
            last_intransit_secs: 0.0,
            calibrator: Calibrator::default(),
            predictions: BTreeMap::new(),
        }
    }

    /// The in-process staging space, when there is one (None when staging
    /// goes to a remote service).
    pub fn space(&self) -> Option<&Arc<DataSpace>> {
        match &self.backend {
            Backend::Local { space, .. } => Some(space),
            Backend::Remote { .. } | Backend::Sharded { .. } => None,
        }
    }

    /// The remote staging client, when staging goes over the wire to a
    /// single service.
    pub fn remote_client(&self) -> Option<&RemoteClient> {
        match &self.backend {
            Backend::Local { .. } | Backend::Sharded { .. } => None,
            Backend::Remote { client, .. } => Some(client),
        }
    }

    /// The sharded cluster client, when staging goes over the wire to a
    /// shard list.
    pub fn sharded_client(&self) -> Option<&ShardedClient> {
        match &self.backend {
            Backend::Local { .. } | Backend::Remote { .. } => None,
            Backend::Sharded { client, .. } => Some(client),
        }
    }

    /// The asynchronous transport's statistics (delivered/rejected/failed
    /// accounting plus the per-version rendezvous), identical in shape for
    /// the local and the remote transport. None once the workflow has
    /// finished, or when `overlap_staging` never started a transport.
    pub fn transport_stats(&self) -> Option<Arc<TransportStats>> {
        match &self.backend {
            Backend::Local { stager, .. } => stager.as_ref().map(AsyncStager::stats),
            Backend::Remote { stager, .. } => stager.as_ref().map(RemoteStager::stats),
            Backend::Sharded { stager, .. } => stager.as_ref().map(ShardedStager::stats),
        }
    }

    /// The underlying simulation.
    pub fn sim(&self) -> &AmrSimulation<S> {
        &self.sim
    }

    /// Record one worker result: close the autonomic loop by correcting
    /// the estimator with the observed in-transit analysis time.
    fn absorb_result(&mut self, r: AnalysisOutcome) {
        self.last_intransit_secs = r.seconds;
        self.pending_jobs = self.pending_jobs.saturating_sub(1);
        if let Some(predicted) = self.predictions.remove(&r.version) {
            self.calibrator
                .observe_intransit(self.engine.estimator_mut(), predicted, r.seconds);
        }
        self.outcomes.push(r);
    }

    fn drain_results(&mut self) {
        while let Ok(r) = self.result_rx.try_recv() {
            self.absorb_result(r);
        }
    }

    /// Block until every dispatched in-transit analysis has reported back,
    /// absorbing each result as it lands. The blocking `recv` parks on the
    /// result channel's condvar and is woken by worker sends — no polling
    /// sleeps, no timing assumptions.
    pub fn wait_for_analyses(&mut self) {
        while self.pending_jobs > 0 {
            match self.result_rx.recv() {
                Ok(r) => self.absorb_result(r),
                // Workers gone (channel closed): nothing more will arrive.
                Err(_) => break,
            }
        }
    }

    /// The current online calibration scales (in-situ, in-transit).
    pub fn calibration_scales(&self) -> (f64, f64) {
        let e = self.engine.estimator();
        (e.insitu_scale, e.intransit_scale)
    }

    /// Advance the simulation one step and run the coupled analysis.
    pub fn step(&mut self) -> StepLog {
        let stats = self.sim.advance();
        self.sim.hierarchy.fill_ghosts();
        self.drain_results();

        // Observe.
        let state = OperationalState {
            step: stats.step,
            now: 0.0,
            data_bytes: stats.data_bytes,
            cells: stats.cells_advanced,
            surface_cells: stats.cells_advanced / 12,
            last_sim_time: stats.dt.max(1e-9),
            last_analysis_time: (self.last_intransit_secs > 0.0)
                .then_some(self.last_intransit_secs),
            intransit_busy_until: self.pending_jobs as f64 * self.last_intransit_secs.max(1e-6),
            sim_cores: 1,
            staging_cores: self.cfg.workers,
            staging_cores_max: self.cfg.workers,
            mem_available_insitu: u64::MAX / 2,
            mem_available_intransit: self.backend.mem_available(),
            disk_available_intransit: self.backend.disk_available(),
        };
        let adaptations = self.engine.adapt(&state);
        // Forward the pressure verdict to the local tier: the engine's
        // cross-layer choice overrides the servers' hint-driven default
        // until the next sampling point (None restores it).
        if self.cfg.engine.enable_pressure {
            if let Backend::Local { space, .. } = &self.backend {
                space.set_pressure_action(adaptations.pressure.map(|p| match p.action {
                    PressureAction::Spill => SpillAction::Spill,
                    PressureAction::Downsample { factor } => SpillAction::Downsample { factor },
                    PressureAction::Reject => SpillAction::Reject,
                }));
            }
        }
        let placement = self.cfg.placement_override.unwrap_or_else(|| {
            adaptations
                .placement
                .map(|p| p.placement)
                .unwrap_or(Placement::InTransit)
        });
        // In native mode the hinted factors are applied as per-dimension
        // strides to the staged grids (the policy's volumetric arithmetic
        // is then a conservative estimate of the actual X³ reduction).
        let factor = adaptations.app.map(|a| a.factor).unwrap_or(1);

        let mut moved = 0;
        let mut analysis_secs = 0.0;
        let mut analysis_bytes = stats.data_bytes;
        match placement {
            Placement::InSitu => {
                let t0 = Instant::now();
                let mut total = TriMesh::new();
                for l in 0..self.sim.hierarchy.num_levels() {
                    let dx = 1.0 / self.sim.hierarchy.ref_ratio().pow(l as u32) as f64;
                    let surfaces = extract_level(
                        self.sim.hierarchy.level(l),
                        self.cfg.comp,
                        self.cfg.iso_value,
                        dx,
                    );
                    total.append(&merge_surfaces(&surfaces));
                }
                analysis_secs = t0.elapsed().as_secs_f64();
                let predicted = self.engine.estimator().t_insitu(
                    adaptations.analysis_cells,
                    adaptations.analysis_surface,
                    1,
                );
                self.calibrator.observe_insitu(
                    self.engine.estimator_mut(),
                    predicted,
                    analysis_secs,
                );
                self.outcomes.push(AnalysisOutcome {
                    version: stats.step,
                    placement: Placement::InSitu,
                    triangles: total.num_triangles(),
                    seconds: analysis_secs,
                    mesh_bytes: total.bytes(),
                });
            }
            Placement::InTransit | Placement::Hybrid => {
                // Stage every grid of every level as objects, then queue the
                // analysis job. (Native mode treats hybrid like in-transit:
                // the split is a modeled-scale mechanism.)
                let mut staged = 0u64;
                let overlap = self.cfg.overlap_staging && self.backend.overlapped();
                let mut tasks: Vec<StageTask> = Vec::new();
                for l in 0..self.sim.hierarchy.num_levels() {
                    let dx = 1.0 / self.sim.hierarchy.ref_ratio().pow(l as u32) as f64;
                    let level = self.sim.hierarchy.level(l);
                    let objects =
                        pack_level_objects(level, self.cfg.comp, "field", stats.step, factor, dx);
                    for obj in objects {
                        moved += obj.desc.bytes;
                        if overlap {
                            tasks.push(StageTask::Ready(obj));
                        } else {
                            self.backend.put_sync(obj);
                        }
                    }
                }
                // One hand-off for the whole step: a single channel send
                // and a single rendezvous notification per key, instead of
                // a lock ping-pong per object between the transfer thread
                // and the waiting analysis worker. Only tasks the transport
                // accepted count toward the worker's rendezvous; a refused
                // remainder is stored synchronously.
                if overlap {
                    let (enqueued, rest) = self.backend.send_batch(tasks);
                    staged = enqueued;
                    for task in rest {
                        self.backend.put_sync(task.materialize());
                    }
                }
                self.moved_bytes += moved;
                analysis_bytes = moved;
                let predicted = self.engine.estimator().t_intransit(
                    adaptations.analysis_cells,
                    adaptations.analysis_surface,
                    self.cfg.workers,
                );
                // Book the job only if it actually reached a worker: a
                // closed channel (finished workflow, or every worker dead)
                // means the step's analysis is skipped, not a crash, and
                // pending_jobs / predictions stay consistent with what the
                // workers will report back.
                let sent = self
                    .job_tx
                    .as_ref()
                    .map(|tx| {
                        tx.send(Job {
                            version: stats.step,
                            iso: self.cfg.iso_value,
                            expected: staged,
                        })
                        .is_ok()
                    })
                    .unwrap_or(false);
                if sent {
                    self.pending_jobs += 1;
                    self.predictions.insert(stats.step, predicted);
                }
            }
        }

        let log = StepLog {
            step: stats.step,
            t_sim: stats.dt,
            raw_bytes: stats.data_bytes,
            analysis_bytes,
            factor,
            placement,
            reason: adaptations.placement.map(|p| p.reason),
            staging_cores: self.cfg.workers,
            moved_bytes: moved,
            mem_available: state.mem_available_insitu,
            mem_used: stats.data_bytes,
            analyzed: true,
            analysis_secs,
        };
        self.steps.push(log);
        log
    }

    /// Stop the workers, wait for in-flight analyses, and return
    /// (per-step logs, analysis outcomes, total bytes staged).
    ///
    /// Deterministic drain order: first the transport queue is drained (so
    /// every staged object is in the space and every `wait_processed`
    /// rendezvous can complete), then the job channel closes and the
    /// workers run down the remaining analyses before joining.
    pub fn finish(mut self) -> (Vec<StepLog>, Vec<AnalysisOutcome>, u64) {
        // A DrainError only means a transfer thread panicked; the
        // surviving counts are already in the shared stats, so the
        // run-down continues either way.
        match &mut self.backend {
            Backend::Local { stager, .. } => {
                if let Some(stager) = stager.take() {
                    let _ = stager.drain();
                }
            }
            Backend::Remote { stager, .. } => {
                if let Some(stager) = stager.take() {
                    let _ = stager.drain();
                }
            }
            Backend::Sharded { stager, .. } => {
                if let Some(stager) = stager.take() {
                    let _ = stager.drain();
                }
            }
        }
        drop(self.job_tx.take());
        for w in self.workers.drain(..) {
            // A panicked analysis worker forfeits its outcomes; the other
            // workers' results (already in result_rx) still get collected.
            let _ = w.join();
        }
        while let Ok(r) = self.result_rx.try_recv() {
            self.outcomes.push(r);
        }
        self.outcomes.sort_by_key(|o| o.version);
        (self.steps, self.outcomes, self.moved_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::hierarchy::HierarchyConfig;
    use xlayer_amr::{IBox, ProblemDomain};
    use xlayer_solvers::{AdvectDiffuseSolver, DriverConfig, ScalarProblem, VelocityField};

    fn blob_sim(n: i64) -> AmrSimulation<AdvectDiffuseSolver> {
        let domain = ProblemDomain::periodic(IBox::cube(n));
        let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, n);
        let mut sim = AmrSimulation::new(
            domain,
            HierarchyConfig {
                max_levels: 2,
                base_max_box: 8,
                ..Default::default()
            },
            solver,
            DriverConfig {
                tag_threshold: 0.02,
                regrid_interval: 3,
                ..Default::default()
            },
        );
        ScalarProblem::Gaussian {
            center: [n as f64 / 2.0; 3],
            sigma: 2.5,
        }
        .init_hierarchy(&mut sim.hierarchy);
        sim.regrid_now();
        sim
    }

    #[test]
    fn end_to_end_native_run_extracts_surfaces() {
        let sim = blob_sim(16);
        let mut wf = NativeWorkflow::new(
            sim,
            NativeConfig {
                iso_value: 0.4,
                ..Default::default()
            },
        );
        for _ in 0..4 {
            wf.step();
        }
        let (steps, outcomes, moved) = wf.finish();
        assert_eq!(steps.len(), 4);
        assert_eq!(outcomes.len(), 4, "every step analyzed exactly once");
        // The Gaussian blob crosses iso=0.4 somewhere every step.
        for o in &outcomes {
            assert!(o.triangles > 0, "no surface at version {}", o.version);
        }
        // At least one step went through staging (the default engine places
        // in-transit when workers are idle).
        assert!(moved > 0 || steps.iter().any(|s| s.placement == Placement::InSitu));
    }

    #[test]
    fn sync_staging_matches_overlapped() {
        // The overlap is a scheduling change, not a results change.
        let run = |overlap: bool| {
            let sim = blob_sim(16);
            let cfg = NativeConfig {
                iso_value: 0.4,
                overlap_staging: overlap,
                placement_override: Some(Placement::InTransit),
                ..Default::default()
            };
            let mut wf = NativeWorkflow::new(sim, cfg);
            for _ in 0..3 {
                wf.step();
            }
            let (steps, outcomes, moved) = wf.finish();
            let tris: Vec<usize> = outcomes.iter().map(|o| o.triangles).collect();
            let bytes: Vec<u64> = steps.iter().map(|s| s.moved_bytes).collect();
            (tris, bytes, moved)
        };
        let (tris_sync, bytes_sync, moved_sync) = run(false);
        let (tris_ovl, bytes_ovl, moved_ovl) = run(true);
        assert_eq!(tris_sync, tris_ovl);
        assert_eq!(bytes_sync, bytes_ovl);
        assert_eq!(moved_sync, moved_ovl);
    }

    #[test]
    fn staged_versions_are_evicted_after_analysis() {
        let sim = blob_sim(16);
        let mut wf = NativeWorkflow::new(sim, NativeConfig::default());
        for _ in 0..3 {
            wf.step();
        }
        let space = Arc::clone(wf.space().expect("local backend has a space"));
        let (_, outcomes, _) = wf.finish();
        // After finish, every analyzed version's objects were evicted.
        for o in outcomes {
            if o.placement == Placement::InTransit {
                assert!(
                    space.get("field", o.version, None).is_empty(),
                    "version {} not evicted",
                    o.version
                );
            }
        }
    }

    #[test]
    fn app_layer_reduction_shrinks_staged_objects() {
        use xlayer_core::FactorPhase;
        let run = |factors: Vec<u32>| {
            let sim = blob_sim(16);
            let hints = UserHints {
                factor_schedule: vec![FactorPhase {
                    from_step: 0,
                    factors,
                }],
                ..Default::default()
            };
            let cfg = NativeConfig {
                iso_value: 0.4,
                engine: EngineConfig {
                    enable_app: true,
                    enable_middleware: false,
                    enable_resource: false,
                    enable_hybrid: false,
                    enable_pressure: false,
                },
                hints,
                ..Default::default()
            };
            let mut wf = NativeWorkflow::new(sim, cfg);
            for _ in 0..3 {
                wf.step();
            }
            let (steps, outcomes, moved) = wf.finish();
            (steps, outcomes, moved)
        };
        let (full_steps, _, full_moved) = run(vec![1]);
        let (red_steps, red_outcomes, red_moved) = run(vec![2]);
        assert!(full_steps.iter().all(|s| s.factor == 1));
        assert!(red_steps.iter().all(|s| s.factor == 2));
        // A per-dimension stride of 2 shrinks every staged object by ~8x
        // (the full-resolution object additionally carries a 1-cell halo).
        assert!(
            red_moved * 6 < full_moved,
            "reduction ineffective: {red_moved} vs {full_moved}"
        );
        // The reduced data still produces a surface.
        assert!(red_outcomes.iter().any(|o| o.triangles > 0));
        // In-transit steps report the staged (reduced) bytes as the
        // analysis input, not the raw hierarchy size.
        for s in red_steps
            .iter()
            .filter(|s| s.placement != Placement::InSitu)
        {
            assert_eq!(s.analysis_bytes, s.moved_bytes);
            assert!(s.analysis_bytes < s.raw_bytes);
        }
    }

    /// A fresh per-test scratch directory under the system temp dir.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "xlayer-native-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// Run `steps` forced-in-transit steps and report per-version
    /// (triangles, mesh_bytes), rejected-put count, and max staged bytes
    /// in any one step.
    fn tiered_run(
        steps: usize,
        staging_memory: u64,
        disk_dir: Option<std::path::PathBuf>,
        remote: Option<String>,
    ) -> (Vec<(u64, usize, u64)>, u64, u64) {
        let sim = blob_sim(16);
        let cfg = NativeConfig {
            iso_value: 0.4,
            staging_servers: 1,
            staging_memory,
            placement_override: Some(Placement::InTransit),
            disk_dir,
            remote,
            ..Default::default()
        };
        let mut wf = NativeWorkflow::new(sim, cfg);
        for _ in 0..steps {
            wf.step();
        }
        let transport = wf.transport_stats().expect("transport running");
        let (step_logs, outcomes, _) = wf.finish();
        let rejected = transport
            .rejected
            .load(std::sync::atomic::Ordering::Relaxed);
        let max_step_bytes = step_logs.iter().map(|s| s.moved_bytes).max().unwrap_or(0);
        let per_version = outcomes
            .iter()
            .map(|o| (o.version, o.triangles, o.mesh_bytes))
            .collect();
        (per_version, rejected, max_step_bytes)
    }

    #[test]
    fn tiered_backend_survives_4x_working_set_bit_identically() {
        // Reference: memory-only staging with room to spare.
        let (reference, ref_rejected, step_bytes) = tiered_run(4, 1 << 30, None, None);
        assert_eq!(ref_rejected, 0);
        assert!(step_bytes > 0);
        // Squeeze the cap to a quarter of one step's staged bytes: the
        // working set is now 4x staging memory, impossible without the
        // tier. With it, every put lands (spilled, not rejected) and the
        // analysis reads back bit-identical data.
        let dir = scratch_dir("4x");
        let (tiered, rejected, _) = tiered_run(4, (step_bytes / 4).max(1), Some(dir.clone()), None);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(rejected, 0, "tiered staging must not reject");
        assert_eq!(
            tiered, reference,
            "spilled+promoted analysis output must be bit-identical"
        );
    }

    #[test]
    fn remote_tiered_service_survives_4x_working_set() {
        use xlayer_net::service::{ServiceConfig, StagingService};
        let (reference, _, step_bytes) = tiered_run(4, 1 << 30, None, None);
        let dir = scratch_dir("remote-4x");
        let svc = StagingService::start(ServiceConfig {
            servers: 1,
            memory_per_server: (step_bytes / 4).max(1),
            disk_dir: Some(dir.clone()),
            ..Default::default()
        })
        .expect("tiered service starts");
        let addr = svc.local_addr().to_string();
        let (tiered, rejected, _) = tiered_run(4, 1 << 30, None, Some(addr));
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(rejected, 0, "tiered remote staging must not reject");
        assert_eq!(tiered, reference, "remote tier must be bit-identical");
    }

    #[test]
    fn needs_reduction_coarsens_and_retries_in_sync_mode() {
        use xlayer_staging::{ObjectHints, Persistence};
        // Reducible hints force the tier's downsample verdict; the sync
        // producer must coarsen and land the retry instead of dropping.
        let sim = blob_sim(16);
        let dir = scratch_dir("reduce");
        let cfg = NativeConfig {
            iso_value: 0.4,
            staging_servers: 1,
            staging_memory: 4 << 10, // far below one step's objects
            overlap_staging: false,
            placement_override: Some(Placement::InTransit),
            disk_dir: Some(dir.clone()),
            ..Default::default()
        };
        let mut wf = NativeWorkflow::new(sim, cfg);
        let space = Arc::clone(wf.space().expect("local backend"));
        space.set_hints(
            "field",
            ObjectHints {
                persistence: Persistence::Reducible { factor: 2 },
                deadline: None,
            },
        );
        wf.step();
        let (_, outcomes, _) = wf.finish();
        let _ = std::fs::remove_dir_all(&dir);
        // The coarsened retries still produce an analyzable surface.
        assert!(outcomes.iter().any(|o| o.triangles > 0));
    }

    #[test]
    fn online_calibration_updates_scales() {
        // The static local-machine model is far off for tiny test grids;
        // after a few analyzed steps the observed times must have pulled
        // the in-transit scale away from 1.0.
        let sim = blob_sim(16);
        let mut wf = NativeWorkflow::new(sim, NativeConfig::default());
        for _ in 0..5 {
            wf.step();
            // rendezvous with the workers so observations arrive
            wf.wait_for_analyses();
        }
        wf.step();
        let (_, intransit_scale) = wf.calibration_scales();
        let (_, outcomes, _) = wf.finish();
        if outcomes
            .iter()
            .filter(|o| o.placement == Placement::InTransit)
            .count()
            >= 2
        {
            assert!(
                (intransit_scale - 1.0).abs() > 1e-6,
                "calibration never updated (scale {intransit_scale})"
            );
        }
    }

    #[test]
    fn insitu_steps_record_analysis_time() {
        let sim = blob_sim(16);
        let cfg = NativeConfig {
            iso_value: 0.4,
            placement_override: Some(Placement::InSitu),
            ..Default::default()
        };
        let mut wf = NativeWorkflow::new(sim, cfg);
        for _ in 0..2 {
            wf.step();
        }
        let (steps, outcomes, moved) = wf.finish();
        assert_eq!(moved, 0);
        for s in &steps {
            assert_eq!(s.placement, Placement::InSitu);
            assert!(s.analysis_secs > 0.0, "in-situ analysis time not recorded");
            assert_eq!(s.analysis_bytes, s.raw_bytes);
        }
        assert!(outcomes.iter().all(|o| o.placement == Placement::InSitu));
    }

    #[test]
    fn insitu_and_intransit_meshes_are_identical() {
        // Run the same simulation with both forced placements: the surfaces
        // must agree in triangle count AND vertex coordinates (the staged
        // objects carry per-level dx and a ghost halo, so the workers see
        // exactly what the in-situ extraction sees).
        let run = |placement: Placement| {
            let sim = blob_sim(16);
            let cfg = NativeConfig {
                iso_value: 0.4,
                placement_override: Some(placement),
                ..Default::default()
            };
            let mut wf = NativeWorkflow::new(sim, cfg);
            for _ in 0..3 {
                wf.step();
            }
            let (_, outcomes, _) = wf.finish();
            outcomes
        };
        let a = run(Placement::InSitu);
        let b = run(Placement::InTransit);
        assert_eq!(a.len(), b.len());
        for (oa, ob) in a.iter().zip(&b) {
            assert_eq!(oa.version, ob.version);
            assert_eq!(
                oa.triangles, ob.triangles,
                "triangle count differs at version {}",
                oa.version
            );
        }
    }
}
