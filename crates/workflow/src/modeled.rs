//! The modeled-scale workflow: replays a real (small) AMR run's dynamic
//! data volumes onto a virtual machine partition, executing the paper's
//! placement strategies and adaptation policies on a virtual timeline.
//!
//! This is how the 2K–16K-core experiments (Figs. 7–11, Table 2) are
//! regenerated on one node: the *decisions* are made by the real policy
//! code on real observables; only compute/transfer durations come from the
//! calibrated cost models (see DESIGN.md, substitution table).

use crate::config::{Strategy, WorkflowConfig};
use crate::report::{StepLog, WorkflowReport};
use xlayer_core::policy::app::reduction_memory;
use xlayer_core::{
    AdaptationEngine, EngineConfig, Estimator, Monitor, OperationalState, Placement,
    UserPreferences,
};
use xlayer_platform::{
    CostModel, DiskModel, PowerModel, SimTime, StagingIngress, StagingStepRecord,
    StagingUtilization,
};

/// One step of the driving workload: the real observables the virtual run
/// scales up.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DrivePoint {
    /// Composite-grid cells advanced this step.
    pub cells: u64,
    /// Grid data bytes after the step.
    pub bytes: u64,
    /// Max-over-mean memory imbalance across ranks.
    pub imbalance: f64,
    /// Estimated isosurface-crossing cells (the refined region tracks the
    /// surface of interest in the paper's workloads).
    pub surface_cells: u64,
}

/// A source of driving workload steps.
pub trait WorkloadDriver {
    /// Produce the next step's observables.
    fn next_point(&mut self) -> DrivePoint;
}

/// A scripted driver for tests and synthetic sweeps.
#[derive(Clone, Debug)]
pub struct TraceDriver {
    points: Vec<DrivePoint>,
    at: usize,
}

impl TraceDriver {
    /// Drive from a fixed list (repeats the last point when exhausted).
    pub fn new(points: Vec<DrivePoint>) -> Self {
        assert!(!points.is_empty());
        TraceDriver { points, at: 0 }
    }
}

impl WorkloadDriver for TraceDriver {
    fn next_point(&mut self) -> DrivePoint {
        let p = self.points[self.at.min(self.points.len() - 1)];
        self.at += 1;
        p
    }
}

/// Fraction of a simulation core's memory usable by the application (the
/// rest is OS + runtime, per BG/P practice).
const SIM_MEM_FRACTION: f64 = 0.9;

/// The modeled-scale workflow engine.
pub struct ModeledWorkflow {
    cfg: WorkflowConfig,
    engine: AdaptationEngine,
    monitor: Monitor,
    cost: CostModel,
    ingress: StagingIngress,
    sim_clock: SimTime,
    staging_busy_until: SimTime,
    staging_cores: usize,
    backlog: Vec<(SimTime, u64)>,
    sum_sim: SimTime,
    step: u64,
    report: WorkflowReport,
    utilization: StagingUtilization,
    power: PowerModel,
    analysis_interval: u64,
    standing: Option<(u32, Placement, u16)>,
    disk: DiskModel,
    written: (u64, u64, u64), // bytes, cells, surface written for post-processing
}

impl ModeledWorkflow {
    /// Build a workflow from its configuration.
    pub fn new(cfg: WorkflowConfig) -> Self {
        let cost = CostModel::new(cfg.machine.clone());
        let est = Estimator::new(cost.clone());
        let engine_cfg = match cfg.strategy {
            Strategy::Adaptive(c) => c,
            _ => EngineConfig::none(),
        };
        let engine = AdaptationEngine::new(
            UserPreferences {
                objective: cfg.objective,
            },
            cfg.hints.clone(),
            engine_cfg,
            est,
        );
        let ingress = StagingIngress::for_partition(&cfg.machine, cfg.partition.staging_cores);
        let monitor = Monitor::new(cfg.hints.monitor_interval);
        let staging_cores = cfg.partition.staging_cores;
        let cfg2_machine = cfg.machine.clone();
        ModeledWorkflow {
            report: WorkflowReport {
                preallocated_staging: staging_cores,
                ..Default::default()
            },
            cfg,
            engine,
            monitor,
            cost,
            ingress,
            sim_clock: 0.0,
            staging_busy_until: 0.0,
            staging_cores,
            backlog: Vec::new(),
            sum_sim: 0.0,
            step: 0,
            utilization: StagingUtilization::new(),
            power: PowerModel::for_machine(&cfg2_machine),
            analysis_interval: 1,
            standing: None,
            disk: if cfg2_machine.name.contains("BlueGene") {
                DiskModel::intrepid()
            } else {
                DiskModel::titan()
            },
            written: (0, 0, 0),
        }
    }

    /// The current virtual time on the simulation side.
    pub fn sim_clock(&self) -> SimTime {
        self.sim_clock
    }

    /// Current staging core allocation.
    pub fn staging_cores(&self) -> usize {
        self.staging_cores
    }

    fn est(&self) -> &Estimator {
        self.engine.estimator()
    }

    /// Free memory on the most loaded simulation rank, given the step's
    /// virtual output and imbalance.
    fn insitu_mem_available(&self, v_bytes: u64, imbalance: f64) -> u64 {
        let per_core_budget = (self.cfg.machine.memory_per_core() as f64 * SIM_MEM_FRACTION) as u64;
        let worst_share =
            (v_bytes as f64 / self.cfg.partition.sim_cores as f64 * imbalance.max(1.0)) as u64;
        per_core_budget.saturating_sub(worst_share)
    }

    /// Staging memory still free: current capacity minus unconsumed backlog.
    fn intransit_mem_available(&self) -> u64 {
        let backlog_bytes: u64 = self
            .backlog
            .iter()
            .filter(|(done, _)| *done > self.sim_clock)
            .map(|(_, b)| b)
            .sum();
        self.est()
            .staging_capacity(self.staging_cores)
            .saturating_sub(backlog_bytes)
    }

    /// Advance the workflow by one step driven by `point`.
    pub fn step(&mut self, point: DrivePoint) -> StepLog {
        self.step += 1;
        let scale = self.cfg.scale;
        let v_cells = (point.cells as f64 * scale) as u64;
        let v_bytes = (point.bytes as f64 * scale) as u64;
        let v_surface = (point.surface_cells as f64 * scale) as u64;
        let n = self.cfg.partition.sim_cores;

        // --- simulation compute ---
        let t_sim = self.cost.sim_time(self.cfg.solver, v_cells, n);
        self.sim_clock += t_sim;
        self.sum_sim += t_sim;

        // prune completed backlog
        let now = self.sim_clock;
        self.backlog.retain(|(done, _)| *done > now);

        // --- observe ---
        let mem_available = self.insitu_mem_available(v_bytes, point.imbalance);
        let state = OperationalState {
            step: self.step,
            now: self.sim_clock,
            data_bytes: v_bytes,
            cells: v_cells,
            surface_cells: v_surface,
            last_sim_time: t_sim,
            last_analysis_time: None,
            intransit_busy_until: self.staging_busy_until,
            sim_cores: n,
            staging_cores: self.staging_cores,
            staging_cores_max: self.cfg.staging_cores_max,
            mem_available_insitu: mem_available,
            mem_available_intransit: self.intransit_mem_available(),
            // The modeled scale has no disk tier; pressure beyond staging
            // memory is handled by the paper's three mechanisms alone.
            disk_available_intransit: 0,
        };

        // --- adapt ---
        let (factor, analysis_bytes, analysis_cells, analysis_surface, placement, reason, split) =
            match self.cfg.strategy {
                Strategy::StaticInSitu => (
                    1,
                    v_bytes,
                    v_cells,
                    v_surface,
                    Placement::InSitu,
                    None,
                    0u16,
                ),
                Strategy::StaticInTransit => (
                    1,
                    v_bytes,
                    v_cells,
                    v_surface,
                    Placement::InTransit,
                    None,
                    0,
                ),
                Strategy::PostProcessing => {
                    (1, v_bytes, v_cells, v_surface, Placement::InSitu, None, 0)
                }
                Strategy::Adaptive(cfg) => {
                    let sample = self.monitor.should_sample(self.step);
                    if sample {
                        self.monitor.record(state.clone());
                        self.sim_clock += self.cfg.adaptation_overhead;
                        let a = self.engine.adapt(&state);
                        if let Some(r) = a.resource {
                            self.staging_cores =
                                r.staging_cores.clamp(1, self.cfg.staging_cores_max);
                        }
                        self.analysis_interval = a.analysis_interval.max(1);
                        let placement = match a.placement {
                            Some(p) => p.placement,
                            // Without the middleware mechanism the workflow keeps
                            // the paper's §5.2.1/§5.2.3 shape: reduce in-situ,
                            // analyze in-transit.
                            None if cfg.enable_resource || cfg.enable_app => Placement::InTransit,
                            None => Placement::InSitu,
                        };
                        let factor = a.app.map(|d| d.factor).unwrap_or(1);
                        let split = a.placement.map(|p| p.insitu_permille).unwrap_or(0);
                        self.standing = Some((factor, placement, split));
                        (
                            factor,
                            a.analysis_bytes,
                            a.analysis_cells,
                            a.analysis_surface,
                            placement,
                            a.placement.map(|p| p.reason),
                            a.placement.map(|p| p.insitu_permille).unwrap_or(0),
                        )
                    } else {
                        // Between monitor samples the standing configuration
                        // applies (§3: adaptations trigger at sampling points);
                        // the ROI hint and the standing factor both persist.
                        let (factor, placement, split) = self.standing.unwrap_or((
                            1,
                            if cfg.enable_middleware {
                                Placement::InTransit
                            } else {
                                Placement::InSitu
                            },
                            0,
                        ));
                        let roi = self.cfg.hints.roi_fraction.clamp(0.0, 1.0);
                        let bytes = (v_bytes as f64 * roi) as u64;
                        let cells = (v_cells as f64 * roi) as u64;
                        let surface = (v_surface as f64 * roi) as u64;
                        (
                            factor,
                            xlayer_core::policy::app::reduced_bytes(bytes, factor),
                            xlayer_core::policy::app::reduced_cells(cells, factor),
                            xlayer_core::policy::app::reduced_surface(surface, factor),
                            placement,
                            None,
                            split,
                        )
                    }
                }
            };

        // --- post-processing baseline: dump to disk, analyze after the run ---
        if matches!(self.cfg.strategy, Strategy::PostProcessing) {
            // Blocking defensive I/O: the simulation stalls for the write.
            self.sim_clock += self.disk.write_time(v_bytes);
            self.written.0 += v_bytes;
            self.written.1 += v_cells;
            self.written.2 += v_surface;
            let worst_share = (v_bytes as f64 / n as f64 * point.imbalance.max(1.0)) as u64;
            let log = StepLog {
                step: self.step,
                t_sim,
                raw_bytes: v_bytes,
                analysis_bytes: v_bytes,
                factor: 1,
                placement: Placement::InSitu,
                reason: None,
                staging_cores: 0,
                moved_bytes: 0,
                mem_available,
                mem_used: worst_share,
                analyzed: false,
                analysis_secs: 0.0,
            };
            self.report.steps.push(log);
            return log;
        }

        // --- temporal resolution: skip this step's analysis entirely? ---
        let analyzed =
            self.analysis_interval <= 1 || self.step.is_multiple_of(self.analysis_interval);

        // --- reduce in-situ (application layer) ---
        if analyzed && factor > 1 {
            let t_red = self.cost.reduce_time(v_cells, n);
            self.sim_clock += t_red;
        }

        // --- execute analysis ---
        let mut moved_bytes = 0;
        let mut analysis_secs = 0.0;
        let production_period = t_sim.max(1e-12);
        match placement {
            _ if !analyzed => {
                // The staging cores (if allocated) idle through skipped steps.
                if matches!(self.cfg.strategy, Strategy::Adaptive(_)) {
                    self.utilization.record(StagingStepRecord {
                        step: self.step,
                        allocated: self.staging_cores,
                        used: 0,
                        analysis_time: 0.0,
                        span: production_period,
                    });
                }
            }
            Placement::InSitu => {
                let t_an = self.est().t_insitu(analysis_cells, analysis_surface, n);
                self.sim_clock += t_an;
                analysis_secs = t_an;
                // staging cores (if any are allocated) idle this step
                if matches!(self.cfg.strategy, Strategy::Adaptive(_)) {
                    self.utilization.record(StagingStepRecord {
                        step: self.step,
                        allocated: self.staging_cores,
                        used: 0,
                        analysis_time: 0.0,
                        span: production_period,
                    });
                }
            }
            Placement::Hybrid => {
                // §3's third option: the in-situ share blocks the
                // simulation while the remainder ships to staging.
                let f = (split as f64 / 1000.0).clamp(0.0, 1.0);
                let is_cells = (analysis_cells as f64 * f) as u64;
                let is_surf = (analysis_surface as f64 * f) as u64;
                let t_is = self.est().t_insitu(is_cells, is_surf, n);
                self.sim_clock += t_is;
                analysis_secs = t_is;
                let it_bytes = (analysis_bytes as f64 * (1.0 - f)) as u64;
                let it_cells = analysis_cells - is_cells;
                let it_surf = analysis_surface - is_surf;
                let t_send = self.est().t_send(it_bytes, n);
                self.sim_clock += t_send;
                let (_, arrived) = self.ingress.transfer(self.sim_clock, it_bytes);
                let t_an = self
                    .est()
                    .t_intransit(it_cells, it_surf, self.staging_cores);
                let start = self.staging_busy_until.max(arrived);
                self.staging_busy_until = start + t_an;
                self.backlog.push((self.staging_busy_until, it_bytes));
                moved_bytes = it_bytes;
                self.utilization.record(StagingStepRecord {
                    step: self.step,
                    allocated: self.staging_cores,
                    used: self.staging_cores,
                    analysis_time: t_an * self.staging_cores as f64,
                    span: production_period.max(t_an),
                });
            }
            Placement::InTransit => {
                // asynchronous send: the simulation pays only the injection
                let t_send = self.est().t_send(analysis_bytes, n);
                self.sim_clock += t_send;
                let (_, arrived) = self.ingress.transfer(self.sim_clock, analysis_bytes);
                let t_an =
                    self.est()
                        .t_intransit(analysis_cells, analysis_surface, self.staging_cores);
                let start = self.staging_busy_until.max(arrived);
                self.staging_busy_until = start + t_an;
                self.backlog.push((self.staging_busy_until, analysis_bytes));
                moved_bytes = analysis_bytes;
                self.utilization.record(StagingStepRecord {
                    step: self.step,
                    allocated: self.staging_cores,
                    used: self.staging_cores,
                    analysis_time: t_an * self.staging_cores as f64,
                    span: production_period.max(t_an),
                });
            }
        }

        let worst_share = (v_bytes as f64 / n as f64 * point.imbalance.max(1.0)) as u64;
        let log = StepLog {
            step: self.step,
            t_sim,
            raw_bytes: v_bytes,
            analysis_bytes,
            factor,
            placement,
            reason,
            staging_cores: self.staging_cores,
            moved_bytes,
            mem_available,
            mem_used: reduction_memory(worst_share, factor),
            analyzed,
            analysis_secs,
        };
        self.report.steps.push(log);
        log
    }

    /// Run `steps` steps from `driver` and produce the final report.
    pub fn run(mut self, driver: &mut dyn WorkloadDriver, steps: u64) -> WorkflowReport {
        for _ in 0..steps {
            let p = driver.next_point();
            self.step(p);
        }
        self.finish()
    }

    /// Close the timeline (wait for in-flight staging work) and report.
    pub fn finish(mut self) -> WorkflowReport {
        // Post-processing epilogue: read everything back and analyze it on
        // the (now otherwise idle) simulation partition.
        if matches!(self.cfg.strategy, Strategy::PostProcessing) {
            let (bytes, cells, surface) = self.written;
            self.sim_clock += self.disk.read_time(bytes);
            self.sim_clock += self
                .est()
                .t_insitu(cells, surface, self.cfg.partition.sim_cores);
        }
        let total = self
            .sim_clock
            .max(self.staging_busy_until)
            .max(self.ingress.drained_at());
        let (insitu, intransit) = {
            let mut a = 0;
            let mut b = 0;
            for s in &self.report.steps {
                match s.placement {
                    Placement::InSitu => a += 1,
                    Placement::InTransit | Placement::Hybrid => b += 1,
                }
            }
            (a, b)
        };
        self.report.end_to_end = xlayer_platform::EndToEnd {
            sim_time: self.sum_sim,
            overhead: (total - self.sum_sim).max(0.0),
            data_moved: self.report.steps.iter().map(|s| s.moved_bytes).sum(),
            steps: self.step,
            insitu_steps: insitu,
            intransit_steps: intransit,
        };
        // Energy (power-management extension): the simulation partition is
        // busy for its whole timeline (compute, reduction, in-situ analysis,
        // sends) and idles only while draining the staging tail; the
        // staging partition's busy core-seconds come from the utilization
        // records; every moved byte pays the interconnect cost.
        let n = self.cfg.partition.sim_cores;
        let sim_busy = self.sim_clock.min(total);
        let mut energy = xlayer_platform::EnergyReport {
            sim_joules: self.power.core_energy(n, sim_busy, total),
            staging_joules: 0.0,
            network_joules: self
                .power
                .transfer_energy(self.report.end_to_end.data_moved),
        };
        for r in self.utilization.records() {
            let span_alloc = r.span * r.allocated as f64;
            energy.staging_joules += self.power.active_w_per_core * r.analysis_time
                + self.power.idle_w_per_core * (span_alloc - r.analysis_time).max(0.0);
        }
        self.report.energy = energy;
        self.report.utilization = self.utilization;
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_core::UserHints;

    fn flat_trace(bytes: u64, n: usize) -> TraceDriver {
        TraceDriver::new(vec![
            DrivePoint {
                cells: bytes / 8,
                bytes,
                imbalance: 1.2,
                surface_cells: bytes / 80,
            };
            n
        ])
    }

    fn growing_trace(start: u64, growth: f64, n: usize) -> TraceDriver {
        let mut pts = Vec::new();
        let mut b = start as f64;
        for i in 0..n {
            // The surface of interest grows faster than the volume, as in
            // the paper's expanding-blast workload: early steps are
            // scan-dominated (in-transit keeps up easily), late steps are
            // triangulation-dominated (in-transit lags).
            let surface_frac = 0.02 + 0.13 * i as f64 / n.max(1) as f64;
            let cells = b / 8.0;
            pts.push(DrivePoint {
                cells: cells as u64,
                bytes: b as u64,
                imbalance: 1.5,
                surface_cells: (cells * surface_frac) as u64,
            });
            b *= growth;
        }
        TraceDriver::new(pts)
    }

    #[test]
    fn adaptive_beats_both_static_baselines() {
        // The Fig. 7 claim: adaptive placement's end-to-end overhead is
        // below both static extremes for a workload that alternates between
        // favoring in-situ and in-transit.
        let mut results = Vec::new();
        for strategy in [
            Strategy::StaticInSitu,
            Strategy::StaticInTransit,
            Strategy::Adaptive(EngineConfig::middleware_only()),
        ] {
            let cfg = WorkflowConfig::titan_advect(4096, strategy);
            let wf = ModeledWorkflow::new(cfg);
            // Paper-scale horizon (40–50 steps): long enough that the
            // overlap savings amortize the final staging-drain tail.
            let mut d = growing_trace(1 << 30, 1.03, 50);
            let r = wf.run(&mut d, 50);
            results.push((strategy.label(), r.end_to_end.total()));
        }
        let adapt = results[2].1;
        // Tolerance: adaptation itself costs a little per step.
        assert!(
            adapt <= results[0].1 * 1.01,
            "adaptive {adapt} worse than in-situ {}",
            results[0].1
        );
        assert!(
            adapt <= results[1].1 * 1.01,
            "adaptive {adapt} worse than in-transit {}",
            results[1].1
        );
    }

    #[test]
    fn adaptive_moves_less_data_than_intransit() {
        // Fig. 8: some steps run in-situ, so less data crosses the network.
        let cfg_a =
            WorkflowConfig::titan_advect(2048, Strategy::Adaptive(EngineConfig::middleware_only()));
        let cfg_t = WorkflowConfig::titan_advect(2048, Strategy::StaticInTransit);
        let ra = ModeledWorkflow::new(cfg_a).run(&mut growing_trace(1 << 30, 1.12, 30), 30);
        let rt = ModeledWorkflow::new(cfg_t).run(&mut growing_trace(1 << 30, 1.12, 30), 30);
        let (insitu, _) = ra.placement_counts();
        if insitu > 0 {
            assert!(ra.data_moved() < rt.data_moved());
        }
        assert_eq!(rt.placement_counts().0, 0);
    }

    #[test]
    fn static_insitu_moves_nothing() {
        let cfg = WorkflowConfig::titan_advect(2048, Strategy::StaticInSitu);
        let r = ModeledWorkflow::new(cfg).run(&mut flat_trace(1 << 30, 10), 10);
        assert_eq!(r.data_moved(), 0);
        assert_eq!(r.placement_counts().1, 0);
    }

    #[test]
    fn resource_adaptation_tracks_data_growth() {
        // Fig. 9: staging cores grow as refinement grows the data.
        let mut cfg =
            WorkflowConfig::intrepid_gas(Strategy::Adaptive(EngineConfig::resource_only()));
        cfg.scale = 1.0;
        let wf = ModeledWorkflow::new(cfg);
        let r = wf.run(&mut growing_trace(16 << 30, 1.15, 20), 20);
        let series = r.staging_core_series();
        let early = series[1].1;
        let late = series[19].1;
        assert!(
            late > early,
            "staging cores did not grow: early {early}, late {late}"
        );
    }

    #[test]
    fn resource_adaptation_improves_efficiency() {
        // §5.2.3: 87% adaptive vs 55% static utilization efficiency.
        let trace = || growing_trace(16 << 30, 1.05, 30);
        let adaptive = ModeledWorkflow::new(WorkflowConfig::intrepid_gas(Strategy::Adaptive(
            EngineConfig::resource_only(),
        )))
        .run(&mut trace(), 30);
        let static_ = ModeledWorkflow::new(WorkflowConfig::intrepid_gas(Strategy::StaticInTransit))
            .run(&mut trace(), 30);
        assert!(
            adaptive.staging_efficiency() > static_.staging_efficiency(),
            "adaptive {} <= static {}",
            adaptive.staging_efficiency(),
            static_.staging_efficiency()
        );
    }

    #[test]
    fn global_reduces_data_movement_vs_local() {
        // Fig. 11: application-layer reduction dominates the data volume.
        let hints = UserHints::paper_fig5_schedule(15);
        let mut cfg_g =
            WorkflowConfig::titan_advect(4096, Strategy::Adaptive(EngineConfig::global()));
        cfg_g.hints = hints.clone();
        let cfg_l =
            WorkflowConfig::titan_advect(4096, Strategy::Adaptive(EngineConfig::middleware_only()));
        let rg = ModeledWorkflow::new(cfg_g).run(&mut growing_trace(1 << 30, 1.1, 30), 30);
        let rl = ModeledWorkflow::new(cfg_l).run(&mut growing_trace(1 << 30, 1.1, 30), 30);
        assert!(
            rg.data_moved() < rl.data_moved(),
            "global {} >= local {}",
            rg.data_moved(),
            rl.data_moved()
        );
    }

    #[test]
    fn overhead_is_small_fraction_for_adaptive() {
        // The paper: adaptive end-to-end overhead < 6% of simulation time.
        let cfg =
            WorkflowConfig::titan_advect(4096, Strategy::Adaptive(EngineConfig::middleware_only()));
        let r = ModeledWorkflow::new(cfg).run(&mut growing_trace(1 << 30, 1.05, 40), 40);
        assert!(
            r.end_to_end.overhead_fraction() < 0.25,
            "overhead fraction {}",
            r.end_to_end.overhead_fraction()
        );
    }

    #[test]
    fn temporal_mechanism_skips_steps_under_pressure() {
        // Allow analyzing as rarely as every 4th step with a tight budget:
        // a fast simulation with expensive analysis must skip some steps.
        let mut cfg =
            WorkflowConfig::titan_advect(4096, Strategy::Adaptive(EngineConfig::global()));
        cfg.hints.max_analysis_interval = 4;
        cfg.hints.analysis_budget_frac = 0.01;
        let r = ModeledWorkflow::new(cfg).run(&mut growing_trace(1 << 30, 1.02, 24), 24);
        let skipped = r.steps.iter().filter(|s| !s.analyzed).count();
        assert!(skipped > 0, "no steps skipped despite 1% budget");
        // skipped steps move no data
        assert!(r
            .steps
            .iter()
            .filter(|s| !s.analyzed)
            .all(|s| s.moved_bytes == 0));
        // default hints never skip
        let cfg = WorkflowConfig::titan_advect(4096, Strategy::Adaptive(EngineConfig::global()));
        let r = ModeledWorkflow::new(cfg).run(&mut growing_trace(1 << 30, 1.02, 24), 24);
        assert!(r.steps.iter().all(|s| s.analyzed));
    }

    #[test]
    fn energy_accounting_is_positive_and_ordered() {
        // Reduction (global) must save network energy vs local adaptation.
        let points = growing_trace(1 << 30, 1.03, 30);
        let run = |strategy| {
            let mut cfg = WorkflowConfig::titan_advect(4096, strategy);
            if matches!(strategy, Strategy::Adaptive(c) if c == EngineConfig::global()) {
                cfg.hints = UserHints::paper_fig5_schedule(15);
            }
            let wf = ModeledWorkflow::new(cfg);
            let mut d = points.clone();
            wf.run(&mut d, 30)
        };
        let local = run(Strategy::Adaptive(EngineConfig::middleware_only()));
        let global = run(Strategy::Adaptive(EngineConfig::global()));
        assert!(local.energy.total() > 0.0);
        assert!(global.energy.network_joules < local.energy.network_joules);
        // total virtual energy should also drop: less data, faster analysis
        assert!(global.energy.total() < local.energy.total());
    }

    #[test]
    fn standing_decisions_persist_between_monitor_samples() {
        // §3: the Monitor samples every k steps; between samples the last
        // configuration (factor, placement) stays in force.
        let mut cfg =
            WorkflowConfig::titan_advect(4096, Strategy::Adaptive(EngineConfig::global()));
        cfg.hints = UserHints::paper_fig5_schedule(15);
        cfg.hints.monitor_interval = 3;
        let r = ModeledWorkflow::new(cfg).run(&mut growing_trace(1 << 30, 1.03, 18), 18);
        // From the first sample (step 3) on, every step carries the factor
        // from its preceding sample (never the unreduced default), and the
        // reduction still applies on non-sampled steps.
        for s in r.steps.iter().filter(|s| s.step >= 3) {
            assert!(s.factor >= 2, "step {} lost the standing factor", s.step);
            assert!(s.analysis_bytes <= s.raw_bytes.div_ceil(2));
        }
        // Sampled steps: 3, 6, 9, … (step % 3 == 0) plus the engine's
        // reasons only on those steps.
        for s in &r.steps {
            if s.step % 3 != 0 {
                assert!(
                    s.reason.is_none(),
                    "non-sample step {} has a reason",
                    s.step
                );
            }
        }
    }

    #[test]
    fn report_has_one_row_per_step() {
        let cfg = WorkflowConfig::titan_advect(2048, Strategy::StaticInSitu);
        let r = ModeledWorkflow::new(cfg).run(&mut flat_trace(1 << 28, 7), 7);
        assert_eq!(r.steps.len(), 7);
        assert_eq!(r.end_to_end.steps, 7);
        assert!(r.end_to_end.sim_time > 0.0);
    }
}
